"""The cache simulator: LRU invariants, conflict patterns, simulated pricing.

Three seeded property families over random access streams (the LRU
invariants the simulated hardware backend's soundness story leans on),
one directed test pinning a classic conflict-miss pattern exactly, the
hierarchy's level semantics, and the :class:`~repro.hw.SimulatedModel`
pricing rules (observed levels, shortfall at DRAM, warm-state reset).
"""

import random
from fractions import Fraction

import pytest

from repro.hw import (
    CacheGeometry,
    CacheHierarchy,
    HwSpec,
    RealisticModel,
    SetAssociativeCache,
    SimulatedModel,
    geometry_to_json,
)
from repro.nfil.tracer import ExecutionTrace
from repro.structures import LpmTrie

SEEDS = (7, 99, 2019)


# --------------------------------------------------------------------------- #
# LRU invariants over seeded random streams
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_reaccess_within_associativity_window_always_hits(seed):
    """If fewer than ``ways`` distinct conflicting lines were touched since
    an address was last accessed, true LRU cannot have evicted it."""
    geometry = CacheGeometry(sets=8, ways=2, line_size=64)
    cache = SetAssociativeCache(geometry)
    rng = random.Random(seed)
    history = []  # (set index, tag) per access, in order
    last_seen = {}  # (set index, tag) -> position in history
    checked = 0
    for _ in range(800):
        addr = rng.randrange(1 << 13)
        tag = addr // geometry.line_size
        index = tag % geometry.sets
        hit = cache.access(addr)
        previous = last_seen.get((index, tag))
        if previous is not None:
            conflicting = {
                t for s, t in history[previous + 1 :] if s == index and t != tag
            }
            if len(conflicting) < geometry.ways:
                assert hit, (addr, sorted(conflicting))
                checked += 1
        last_seen[(index, tag)] = len(history)
        history.append((index, tag))
    assert checked > 50  # the stream actually exercised the invariant


@pytest.mark.parametrize("seed", SEEDS)
def test_working_set_within_capacity_converges_to_all_hits(seed):
    """A working set that fits (≤ ways distinct lines per set) only ever
    takes cold misses, in any access order: pass k of n hits (n−1)/n."""
    geometry = CacheGeometry(sets=8, ways=2, line_size=64)
    cache = SetAssociativeCache(geometry)
    rng = random.Random(seed)
    lines = [i * geometry.line_size for i in range(geometry.sets * geometry.ways)]
    passes = 5
    for _ in range(passes):
        order = lines[:]
        rng.shuffle(order)
        for addr in order:
            cache.access(addr)
    assert cache.misses == len(lines)  # one cold miss per line, nothing else
    assert cache.hit_rate == Fraction(passes - 1, passes)
    for addr in lines:  # steady state: 100% hits
        assert cache.access(addr)


@pytest.mark.parametrize("seed", SEEDS)
def test_hit_count_is_monotone_in_associativity(seed):
    """LRU is a stack algorithm per set: at fixed set count, more ways can
    never turn a hit into a miss (the inclusion property)."""
    rng = random.Random(seed)
    stream = [rng.randrange(1 << 14) for _ in range(3000)]
    hits = []
    for ways in (1, 2, 4, 8):
        cache = SetAssociativeCache(CacheGeometry(sets=16, ways=ways, line_size=64))
        for addr in stream:
            cache.access(addr)
        assert cache.accesses == len(stream)
        hits.append(cache.hits)
    assert hits == sorted(hits)
    assert hits[0] < hits[-1]  # the stream actually conflicts somewhere


# --------------------------------------------------------------------------- #
# Directed conflict-miss pattern
# --------------------------------------------------------------------------- #
def test_directed_conflict_thrash_pattern_is_reproduced_exactly():
    """Three lines in one 2-way set, accessed in rotation: the classic LRU
    thrash where *every* access misses — then dropping one line from the
    rotation restores hits, in exactly the expected positions."""
    geometry = CacheGeometry(sets=2, ways=2, line_size=64)
    cache = SetAssociativeCache(geometry)
    a, b, c = 0, 128, 256  # tags 0, 2, 4 -> all set 0
    assert [cache.access(addr) for addr in [a, b, c] * 4] == [False] * 12
    # The set holds {b, c} now; retiring c makes {a, b} fit.
    assert [cache.access(addr) for addr in (a, b, a, b)] == [False, False, True, True]
    assert cache.hits == 2 and cache.misses == 14


def test_hierarchy_levels_and_inclusive_fill():
    """L1 hit, LLC hit (with L1 refill) and DRAM are told apart correctly."""
    hierarchy = CacheHierarchy(
        CacheGeometry(sets=1, ways=1), CacheGeometry(sets=1, ways=2)
    )
    a, b = 0, 64
    assert hierarchy.access(a) == "dram"  # cold machine
    assert hierarchy.access(a) == "l1"  # resident
    assert hierarchy.access(b) == "dram"  # evicts a from the 1-line L1
    assert hierarchy.access(a) == "llc"  # still held by the 2-way LLC...
    assert hierarchy.access(a) == "l1"  # ...and the LLC hit refilled L1
    hierarchy.reset()
    assert hierarchy.access(a) == "dram"
    assert hierarchy.l1.accesses == 1 and hierarchy.llc.accesses == 1


# --------------------------------------------------------------------------- #
# SimulatedModel pricing
# --------------------------------------------------------------------------- #
def test_simulated_measure_prices_observed_levels():
    spec = HwSpec()
    model = SimulatedModel(
        spec, l1=CacheGeometry(sets=1, ways=1), llc=CacheGeometry(sets=1, ways=2)
    )
    trace = ExecutionTrace(record_accesses=True)
    trace.record_instruction("alu")
    trace.record_instruction("alu")
    for addr in (0, 0, 64, 0):
        trace.record_access(addr, 8, "load")
    # Levels served: dram, l1, dram, llc (see the hierarchy test above).
    expected = (
        Fraction(2, spec.issue_width)
        + spec.dram_latency
        + spec.l1_latency
        + spec.dram_latency
        + spec.llc_latency
    )
    assert model.measure(trace) == expected


def test_simulated_compile_measure_matches_measure_and_prices_shortfall():
    """Counted-but-unrecorded accesses pay DRAM (the over-pricing side of
    the soundness argument), identically in both measure implementations."""
    spec = HwSpec()
    trace = ExecutionTrace(record_accesses=True)
    trace.record_access(0, 8, "load")
    trace.record_extern(
        "m_get", (1,), 2, instructions=5, memory_accesses=3, accesses=(64, 128)
    )
    # 4 accesses counted (1 stateless + 3 extern), 3 recorded: shortfall 1.
    # All three recorded lines are distinct and cold -> DRAM each.
    expected = Fraction(5, spec.issue_width) + 3 * spec.dram_latency + spec.dram_latency
    assert SimulatedModel(spec).measure(trace) == expected
    compiled = SimulatedModel(spec).compile_measure(scale=2)
    assert Fraction(compiled(trace), 2) == expected
    with pytest.raises(ValueError, match="does not clear"):
        SimulatedModel(spec).compile_measure(scale=1)  # 1/2-cycle instructions


def test_simulated_model_reset_restores_cold_measurement():
    model = SimulatedModel()
    trace = ExecutionTrace(record_accesses=True)
    for addr in (0, 64, 128):
        trace.record_access(addr, 8, "load")
    cold = model.measure(trace)
    warm = model.measure(trace)
    assert warm < cold  # the second replay found the lines resident
    model.reset()
    assert model.measure(trace) == cold


@pytest.mark.parametrize("seed", SEEDS)
def test_simulated_measurement_never_exceeds_dram_prediction(seed):
    """The per-packet soundness inequality: every simulated access costs at
    most DRAM, so measured ≤ the prediction-side all-DRAM price — whatever
    the (warm, shared) cache state happens to be."""
    rng = random.Random(seed)
    model = SimulatedModel()
    for _ in range(20):
        trace = ExecutionTrace(record_accesses=True)
        count = rng.randrange(1, 40)
        for _ in range(count):
            trace.record_access(rng.randrange(1 << 12), 8, "load")
        assert model.measure(trace) <= Fraction(count * model.spec.dram_latency)


# --------------------------------------------------------------------------- #
# Configuration validation and the realistic model's hit-rate guard
# --------------------------------------------------------------------------- #
def test_geometry_validation_and_json():
    with pytest.raises(ValueError, match="at least one set"):
        CacheGeometry(sets=0, ways=1)
    with pytest.raises(ValueError, match="at least one way"):
        CacheGeometry(sets=1, ways=0)
    with pytest.raises(ValueError, match="power of two"):
        CacheGeometry(sets=1, ways=1, line_size=48)
    assert geometry_to_json(CacheGeometry(sets=32, ways=2, line_size=64)) == {
        "sets": 32,
        "ways": 2,
        "line_size": 64,
        "capacity_bytes": 4096,
    }


def test_hwspec_rejects_misordered_latencies():
    with pytest.raises(ValueError, match="l1_latency <= llc_latency"):
        HwSpec(l1_latency=40, llc_latency=30)
    with pytest.raises(ValueError, match="llc_latency <= dram_latency"):
        HwSpec(llc_latency=200)


def test_realistic_model_rejects_undeclared_structure_kinds():
    """An unknown kind must fail loudly, not be silently priced at DRAM."""

    class NovelStructure(LpmTrie):
        kind = "novel_structure"

    structure = NovelStructure("novel", value_bound=4)
    model = RealisticModel()
    with pytest.raises(KeyError, match="novel_structure"):
        model.structure_access_cycles(structure)
    # None still means "unknown producer, price all-miss" — that path is
    # a deliberate worst case, not a modelling gap.
    assert model.structure_access_cycles(None) == Fraction(model.spec.dram_latency)
    # Declaring a rate — per kind or per instance — resolves the guard.
    by_kind = RealisticModel(hit_rates={"novel_structure": Fraction(1, 2)})
    assert by_kind.hit_rate(structure) == Fraction(1, 2)
    by_name = RealisticModel(hit_rates={"novel": Fraction(1, 4)})
    assert by_name.hit_rate(structure) == Fraction(1, 4)
