"""The throughput pipeline: solver memoisation and compiled evaluators.

The performance layers must be invisible in the results: the memoising
solver has to produce contracts identical to from-scratch solving, the
compiled evaluators have to agree bit-for-bit with the interpreting
``evaluate``, and the scaled-integer pricing has to agree exactly with
the ``Fraction`` arithmetic it replaced.
"""

import random
from fractions import Fraction

import pytest

from repro.core import Metric, PerfExpr
from repro.hw import ConservativeModel, RealisticModel
from repro.nf.bridge import generate_bridge_contract
from repro.nf.lb import generate_lb_contract
from repro.nf.nat import generate_nat_contract
from repro.nf.router import generate_router_contract
from repro.nf.workloads import bridge_workloads
from repro.sym import expr as E
from repro.sym.expr import (
    Const,
    Sym,
    compile_conjunction,
    compile_evaluator,
    evaluate,
    render,
)
from repro.sym.solver import CheckResult, Solver


# --------------------------------------------------------------------------- #
# solver memoisation
# --------------------------------------------------------------------------- #
def test_exact_verdict_cache_answers_repeat_queries():
    x = Sym("x", 16)
    constraints = [E.ult(x, Const(10, 16))]
    solver = Solver()
    assert solver.check(constraints) is CheckResult.SAT
    assert solver.check(constraints) is CheckResult.SAT
    assert solver.stats.checks == 2
    assert solver.stats.cache_hits == 1
    assert solver.stats.cache_misses == 1


def test_refuted_prefix_prunes_every_superset():
    x, y = Sym("x", 16), Sym("y", 16)
    contradiction = [E.eq(x, Const(1, 16)), E.eq(x, Const(2, 16))]
    solver = Solver()
    assert solver.check(contradiction) is CheckResult.UNSAT
    # Extending a refuted conjunction must never reach the solving
    # pipeline again: the prefix alone proves UNSAT.
    extended = contradiction + [E.ult(y, Const(50, 16))]
    assert solver.check(extended) is CheckResult.UNSAT
    assert solver.stats.prefix_pruned == 1
    assert solver.stats.cache_misses == 1


def test_duplicate_conjuncts_are_dropped_before_solving():
    x = Sym("x", 16)
    shared = E.ult(x, Const(10, 16))
    solver = Solver()
    # One duplicate by node identity, one by canonical equality.
    assert solver.check([shared, shared, E.ult(x, Const(10, 16))]) is CheckResult.SAT
    assert solver.stats.dedup_dropped == 2


def test_normal_forms_are_reused_by_node_identity():
    x = Sym("x", 16)
    shared = E.ult(E.add(x, Const(1, 16)), Const(10, 16))
    solver = Solver()
    solver.check([shared])
    reused = solver.stats.simplify_reused
    solver.check([shared])
    assert solver.stats.simplify_reused > reused


def test_cached_sat_models_are_reused():
    x = Sym("x", 16)
    constraints = [E.eq(x, Const(7, 16))]
    solver = Solver()
    assert solver.model(constraints) == {"x": 7}
    assert solver.model(constraints) == {"x": 7}
    assert solver.stats.cache_hits == 1


def test_disabled_cache_keeps_counters_at_zero_and_verdicts_equal():
    x = Sym("x", 16)
    queries = [
        [E.ult(x, Const(10, 16))],
        [E.eq(x, Const(3, 16)), E.eq(x, Const(4, 16))],
        [E.ult(x, Const(10, 16))],
    ]
    cached, uncached = Solver(), Solver(cache=False)
    for query in queries:
        assert cached.check(query) is uncached.check(query)
    assert uncached.stats.cache_hits == 0
    assert uncached.stats.cache_misses == 0
    assert cached.stats.cache_hits == 1


def _contract_signature(contract):
    """Everything observable about a contract, in a comparable form."""
    signature = []
    for entry in contract:
        paths = tuple(
            (
                path.pid,
                path.feasibility,
                tuple(render(constraint) for constraint in path.constraints),
                None if path.model is None else tuple(sorted(path.model.items())),
                path.instructions,
                path.memory_accesses,
            )
            for path in entry.paths
        )
        exprs = tuple(sorted((str(metric), expr) for metric, expr in entry.exprs.items()))
        signature.append((entry.input_class.name, exprs, paths))
    return signature


@pytest.mark.parametrize(
    "generate",
    [
        generate_bridge_contract,
        generate_router_contract,
        generate_nat_contract,
        generate_lb_contract,
    ],
)
def test_contracts_identical_with_and_without_solver_cache(generate, monkeypatch):
    monkeypatch.setattr(Solver, "CACHE_DEFAULT", True)
    with_cache = _contract_signature(generate())
    monkeypatch.setattr(Solver, "CACHE_DEFAULT", False)
    without_cache = _contract_signature(generate())
    assert with_cache == without_cache


# --------------------------------------------------------------------------- #
# compiled evaluators
# --------------------------------------------------------------------------- #
_WIDTHS = (1, 8, 16, 32, 64)


def _random_value(rng, width):
    return rng.randrange(1 << width)


def _random_arith(rng, width, symbols, depth):
    if depth <= 0 or rng.random() < 0.3:
        if symbols and rng.random() < 0.6:
            return Sym(rng.choice(symbols), width)
        return Const(_random_value(rng, width), width)
    choice = rng.random()
    if choice < 0.1:
        inner_width = rng.choice([w for w in _WIDTHS if w > width] or [width])
        inner = _random_arith(rng, inner_width, symbols, depth - 1)
        lo = rng.randrange(inner_width - width + 1)
        return E.extract(inner, lo, width)
    if choice < 0.2 and width > 1:
        lo = rng.randrange(1, width)
        return E.concat(
            [
                _random_arith(rng, width - lo, symbols, depth - 1),
                _random_arith(rng, lo, symbols, depth - 1),
            ]
        )
    if choice < 0.3 and width > 1:
        narrower = rng.choice([w for w in _WIDTHS if w < width] or [width])
        return E.zext(_random_arith(rng, narrower, symbols, depth - 1), width)
    if choice < 0.4:
        cond = _random_predicate(rng, symbols, depth - 1)
        return E.ite(
            cond,
            _random_arith(rng, width, symbols, depth - 1),
            _random_arith(rng, width, symbols, depth - 1),
        )
    op = rng.choice(
        [E.add, E.sub, E.mul, E.udiv, E.urem, E.sdiv, E.band, E.bor, E.bxor, E.shl, E.lshr]
    )
    return op(
        _random_arith(rng, width, symbols, depth - 1),
        _random_arith(rng, width, symbols, depth - 1),
    )


def _random_predicate(rng, symbols, depth):
    if depth <= 0 or rng.random() < 0.4:
        width = rng.choice(_WIDTHS)
        op = rng.choice([E.eq, E.ne, E.ult, E.ule, E.ugt, E.uge, E.slt, E.sle, E.sgt, E.sge])
        return op(
            _random_arith(rng, width, symbols, depth - 1),
            _random_arith(rng, width, symbols, depth - 1),
        )
    choice = rng.random()
    if choice < 0.3:
        return E.bnot(_random_predicate(rng, symbols, depth - 1))
    combine = E.bool_and if choice < 0.65 else E.bool_or
    return combine(
        _random_predicate(rng, symbols, depth - 1),
        _random_predicate(rng, symbols, depth - 1),
    )


def test_compiled_evaluators_match_evaluate_on_random_trees():
    rng = random.Random(1905)
    symbols = ["a", "b", "c", "pkt[0]"]
    for _ in range(300):
        width = rng.choice(_WIDTHS)
        tree = (
            _random_predicate(rng, symbols, 3)
            if rng.random() < 0.5
            else _random_arith(rng, width, symbols, 3)
        )
        compiled = compile_evaluator(tree)
        for _ in range(4):
            env = {name: rng.randrange(1 << 64) for name in symbols if rng.random() < 0.8}
            assert compiled(env) == evaluate(tree, env), render(tree)


def test_compiled_conjunction_matches_constraintwise_evaluate():
    rng = random.Random(512)
    symbols = ["a", "b", "c"]
    for _ in range(100):
        constraints = [_random_predicate(rng, symbols, 2) for _ in range(rng.randrange(1, 5))]
        compiled = compile_conjunction(constraints)
        for _ in range(4):
            env = {name: rng.randrange(1 << 32) for name in symbols}
            expected = all(evaluate(constraint, env) == 1 for constraint in constraints)
            assert compiled(env) is expected


def test_compiled_conjunction_accepts_empty_and_missing_symbols():
    always_true = compile_conjunction([])
    assert always_true({}) is True
    x = Sym("x", 8)
    # Missing symbols default to 0, exactly like ``evaluate``.
    assert compile_conjunction([E.eq(x, Const(0, 8))])({}) is True


# --------------------------------------------------------------------------- #
# scaled-integer pricing
# --------------------------------------------------------------------------- #
def test_perfexpr_compile_scaled_matches_fraction_evaluation():
    expr = (
        PerfExpr.constant(Fraction(7, 3))
        + PerfExpr.var("t") * Fraction(5, 6)
        + PerfExpr.var("t") * PerfExpr.var("w") * 2
    )
    scale = 12  # a multiple of denominator_lcm() == 6
    assert expr.denominator_lcm() == 6
    compiled = expr.compile_scaled(scale)
    for bindings in ({"t": 0, "w": 0}, {"t": 3, "w": 1}, {"t": 16, "w": 51}):
        assert compiled(bindings) == expr.evaluate(bindings) * scale


def test_perfexpr_compile_scaled_rejects_insufficient_scale():
    expr = PerfExpr.var("t") * Fraction(1, 3)
    with pytest.raises(ValueError):
        expr.compile_scaled(2)


@pytest.mark.parametrize("model_factory", [ConservativeModel, RealisticModel])
def test_compiled_measure_matches_fraction_measure_on_real_traces(model_factory):
    model = model_factory()
    workload = bridge_workloads(seed=7, capacity=8, timeout=20, packets=30)[0]
    structures = workload.harness.structures
    scale = model.price_denominator(structures)
    compiled = model.compile_measure(structures, scale=scale)
    for stimulus in workload.stimuli:
        _, trace = workload.harness.run(stimulus)
        expected = model.measure(trace, structures=structures)
        assert Fraction(compiled(trace), scale) == expected
