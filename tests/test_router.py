"""End-to-end tests: BOLT on the static LPM router, cross-checked against
the concrete interpreter + tracer — the proof that the structure library
composes with the Algorithm-2 generator and the classifier machinery."""

import random

import pytest

from repro.core import Metric
from repro.nf.router import (
    DROP_NO_ROUTE,
    DROP_NON_IP,
    DROP_SHORT,
    DROP_TTL,
    PKT_BASE,
    ROUTER_FUNCTION,
    build_router_module,
    generate_router_contract,
    ipv4_packet,
    make_routing_table,
    router_replay_env,
)
from repro.nfil import Interpreter, Memory
from repro.structures.lpm import MAX_DEPTH

ALL_CLASSES = ["no_route", "non_ip", "routed", "short", "ttl_expired"]

#: Every PCV of the router contract, zeroed (traces fill in observations).
ZERO_PCVS = {"rt.d": 0}


@pytest.fixture(scope="module")
def contract():
    return generate_router_contract()


def _ip(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


def _fib():
    table = make_routing_table()
    table.add_route(_ip(10, 0, 0, 0), 8, 1)
    table.add_route(_ip(10, 1, 0, 0), 16, 2)
    table.add_route(_ip(10, 1, 2, 0), 24, 3)
    table.add_route(_ip(192, 168, 0, 0), 16, 4)
    table.add_route(_ip(192, 168, 7, 9), 32, 5)
    return table


def _run(interp, packet, length=None):
    memory = Memory()
    memory.write_bytes(PKT_BASE, packet)
    length = len(packet) if length is None else length
    return interp.run(ROUTER_FUNCTION, [PKT_BASE, length], memory=memory)


def test_contract_has_the_five_router_classes(contract):
    assert sorted(contract.class_names()) == ALL_CLASSES
    for entry in contract:
        assert entry.paths, "every router entry must carry its symbolic path"
        assert all(path.feasibility == "sat" for path in entry.paths)


def test_contract_expressions_use_the_trie_pcv(contract):
    assert contract.variables() <= {"rt.d"}
    # Parse-failure paths never reach the trie: constant cost.
    for name in ("short", "non_ip", "ttl_expired"):
        assert contract.entry_for(name).expr(Metric.INSTRUCTIONS).is_constant()
    routed = contract.entry_for("routed")
    assert routed.expr(Metric.INSTRUCTIONS).coefficient("rt.d") == 5
    assert routed.expr(Metric.MEMORY_ACCESSES).coefficient("rt.d") == 2


def test_router_concrete_behaviour():
    interp = Interpreter(build_router_module(), handler=_fib())
    # Longest prefix wins.
    result, _ = _run(interp, ipv4_packet(_ip(10, 1, 2, 9)))
    assert result == 3
    result, _ = _run(interp, ipv4_packet(_ip(10, 1, 9, 9)))
    assert result == 2
    result, _ = _run(interp, ipv4_packet(_ip(10, 200, 0, 1)))
    assert result == 1
    result, _ = _run(interp, ipv4_packet(_ip(192, 168, 7, 9)))
    assert result == 5
    # Drop reasons.
    result, trace = _run(interp, ipv4_packet(_ip(8, 8, 8, 8)))
    assert result == DROP_NO_ROUTE
    assert trace.extern_calls  # the trie was consulted
    result, trace = _run(interp, b"\x00" * 10)
    assert result == DROP_SHORT
    assert not trace.extern_calls
    result, _ = _run(interp, ipv4_packet(_ip(10, 0, 0, 1), ethertype=(0x86, 0xDD)))
    assert result == DROP_NON_IP
    result, _ = _run(interp, ipv4_packet(_ip(10, 0, 0, 1), ttl=1))
    assert result == DROP_TTL


def test_contract_bounds_100_replayed_packets(contract):
    """For >=100 replayed packets, the contract entry the execution falls
    into upper-bounds the traced counts, and the matched symbolic path
    predicts the stateless counts exactly."""
    interp = Interpreter(build_router_module(), handler=_fib())
    rng = random.Random(99)
    destinations = (
        [_ip(10, 1, 2, rng.randrange(256)) for _ in range(6)]
        + [_ip(10, 1, rng.randrange(256), 1) for _ in range(6)]
        + [_ip(10, rng.randrange(256), 0, 1) for _ in range(6)]
        + [_ip(192, 168, 7, 9), _ip(192, 168, 44, 1)]
        + [rng.randrange(1 << 32) for _ in range(8)]
    )

    replayed = 0
    classes_seen = set()
    for n in range(160):
        dst = rng.choice(destinations)
        roll = rng.random()
        if roll < 0.08:
            packet = ipv4_packet(dst)[: rng.randrange(0, 34)]
        elif roll < 0.16:
            packet = ipv4_packet(dst, ethertype=(0x86, 0xDD))
        elif roll < 0.24:
            packet = ipv4_packet(dst, ttl=rng.choice((0, 1)))
        else:
            packet = ipv4_packet(dst)
        _, trace = _run(interp, packet)

        env = router_replay_env(packet, len(packet), trace)
        entry = contract.classify(env)
        assert entry is not None, f"replay {n} not covered by any contract entry"
        classes_seen.add(entry.input_class.name)

        bindings = dict(ZERO_PCVS)
        bindings.update(trace.pcv_bindings())
        assert entry.evaluate(Metric.INSTRUCTIONS, bindings) >= trace.total_instructions()
        assert entry.evaluate(Metric.MEMORY_ACCESSES, bindings) >= trace.total_memory_accesses()

        path = entry.matching_path(env)
        assert path is not None
        assert path.instructions == trace.instructions
        assert path.memory_accesses == trace.memory_accesses
        replayed += 1

    assert replayed >= 100
    assert classes_seen == set(ALL_CLASSES)


def test_contract_worst_case_bounds_everything(contract):
    """Evaluating at the trie's depth bound dominates any concrete run."""
    interp = Interpreter(build_router_module(), handler=_fib())
    rng = random.Random(3)
    worst_instr = contract.upper_bound(Metric.INSTRUCTIONS)
    worst_mem = contract.upper_bound(Metric.MEMORY_ACCESSES)
    assert worst_instr == 31 + 5 * MAX_DEPTH
    for _ in range(150):
        _, trace = _run(interp, ipv4_packet(rng.randrange(1 << 32)))
        assert worst_instr >= trace.total_instructions()
        assert worst_mem >= trace.total_memory_accesses()


def test_parse_failure_predictions_are_exact(contract):
    """Stateless drop paths have constant, exact predictions."""
    interp = Interpreter(build_router_module(), handler=_fib())
    cases = [
        ("short", b"\x01\x02\x03"),
        ("non_ip", ipv4_packet(_ip(10, 0, 0, 1), ethertype=(0x08, 0x06))),
        ("ttl_expired", ipv4_packet(_ip(10, 0, 0, 1), ttl=1)),
    ]
    for name, packet in cases:
        _, trace = _run(interp, packet)
        entry = contract.entry_for(name)
        assert entry.evaluate(Metric.INSTRUCTIONS, ZERO_PCVS) == trace.total_instructions()
        assert entry.evaluate(Metric.MEMORY_ACCESSES, ZERO_PCVS) == trace.total_memory_accesses()


def test_routed_entry_depth_tracks_prefix_length(contract):
    """Deeper matches consult more trie nodes, and the contract prices it."""
    interp = Interpreter(build_router_module(), handler=_fib())
    routed = contract.entry_for("routed")
    previous_depth = -1
    previous_cost = -1
    for dst in (_ip(10, 200, 0, 1), _ip(10, 1, 9, 9), _ip(10, 1, 2, 9)):
        _, trace = _run(interp, ipv4_packet(dst))
        depth = trace.pcv_bindings()["rt.d"]
        cost = routed.evaluate(Metric.INSTRUCTIONS, {"rt.d": depth})
        assert depth > previous_depth
        assert cost > previous_cost
        previous_depth, previous_cost = depth, cost
