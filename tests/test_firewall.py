"""End-to-end tests for the connection-tracking firewall.

The firewall closes the matrix's enforcement column: a stateless egress
rule plus an ``ExpiringMap`` connection table fronted by a slot pool, so
table exhaustion is an observable contract class.  The tests cover the
concrete default-deny semantics, per-packet replay bounded by the
contract, the adversarial stream pinning every ``fw_conn`` bound, and
the scan sweep draining the slot pool into ``conn_full``.
"""

import random

import pytest

from repro.core import Metric
from repro.nf.firewall import (
    DENY_PORT,
    DROP_CONN_FULL,
    DROP_DENIED,
    DROP_NON_IP,
    DROP_SHORT,
    DROP_UNSOLICITED,
    FIREWALL_FUNCTION,
    LAN_PORT,
    MIN_FW_FRAME,
    PKT_BASE,
    build_firewall_module,
    firewall_replay_env,
    generate_firewall_contract,
    make_firewall_state,
)
from repro.nf.workloads import (
    WAN_CLIENT,
    WAN_SERVER,
    firewall_adversarial,
    firewall_harness,
    firewall_header_flood,
    firewall_scan_sweep,
    firewall_workloads,
)
from repro.nfil import ExternHandler, Interpreter, Memory
from repro.traffic import Replayer, Stimulus, nat_frame

CAPACITY = 16
TIMEOUT = 50

FW_CLASSES = {
    "short",
    "non_ip",
    "denied",
    "outbound_established",
    "outbound_new",
    "conn_full",
    "inbound_established",
    "unsolicited",
}

#: Every namespaced PCV of the firewall contract, zeroed.  The slot
#: allocator is constant-time and contributes none.
ZERO_PCVS = {"fw_conn.t": 0, "fw_conn.e": 0, "fw_conn.w": 0}

LAN_HOST = 0x0A000001  # 10.0.0.1


@pytest.fixture(scope="module")
def contract():
    return generate_firewall_contract(CAPACITY, TIMEOUT)


def _interp(capacity=CAPACITY, timeout=TIMEOUT, slots=None):
    conn, pool = make_firewall_state(capacity, timeout, slots=slots)
    handler = ExternHandler().merge(conn).merge(pool)
    return Interpreter(build_firewall_module(), handler=handler), (conn, pool)


def _run(interp, packet, in_port=LAN_PORT, time=0):
    memory = Memory()
    memory.write_bytes(PKT_BASE, packet)
    return interp.run(
        FIREWALL_FUNCTION, [PKT_BASE, len(packet), in_port, time], memory=memory
    )


def test_contract_has_the_eight_firewall_classes(contract):
    assert set(contract.class_names()) == FW_CLASSES
    for entry in contract:
        assert entry.paths, "every firewall entry must carry its symbolic path"
        assert all(path.feasibility == "sat" for path in entry.paths)


def test_contract_charges_tracking_only_on_tracking_paths(contract):
    """Policy drops never touch the connection chain; the established
    fast path walks it twice (get + refreshing put); and the two inbound
    classes price identically — the constant-time default-deny."""
    assert contract.variables() == set(ZERO_PCVS)
    denied = contract.entry_for("denied")
    assert denied.expr(Metric.INSTRUCTIONS).coefficient("fw_conn.t") == 0
    established = contract.entry_for("outbound_established")
    assert established.expr(Metric.INSTRUCTIONS).coefficient("fw_conn.t") == 12
    inbound = contract.entry_for("inbound_established")
    assert inbound.expr(Metric.INSTRUCTIONS).coefficient("fw_conn.t") == 6
    unsolicited = contract.entry_for("unsolicited")
    for metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
        assert inbound.expr(metric) == unsolicited.expr(metric)
    # Bounds come from the connection table's registry.
    assert contract.registry.get("fw_conn.t").max_value == CAPACITY
    assert contract.registry.get("fw_conn.e").max_value == CAPACITY
    assert contract.registry.get("fw_conn.w").max_value == TIMEOUT + 1


def test_firewall_concrete_behaviour():
    interp, (conn, pool) = _interp()

    # An admitted outbound flow leases a slot and is remembered.
    flow = nat_frame(LAN_HOST, 40000, WAN_SERVER, 80)
    result, _ = _run(interp, flow, time=0)
    slot = result
    assert slot not in (DROP_CONN_FULL, DROP_UNSOLICITED)
    assert conn.occupancy() == 1

    # Repeats ride the established fast path and return the same state.
    for time in (1, 2):
        result, _ = _run(interp, flow, time=time)
        assert result == slot
    assert conn.occupancy() == 1  # refreshed, not re-admitted

    # A WAN frame to the tracked endpoint is forwarded read-only...
    probe = nat_frame(WAN_CLIENT, 443, LAN_HOST, 40000)
    result, _ = _run(interp, probe, in_port=1, time=3)
    assert result == slot
    # ...and to an untracked endpoint is default-denied.
    stray = nat_frame(WAN_CLIENT, 443, LAN_HOST, 40001)
    result, _ = _run(interp, stray, in_port=1, time=3)
    assert result == DROP_UNSOLICITED

    # The egress rule fires before any table work.
    smtp = nat_frame(LAN_HOST, 40002, WAN_SERVER, DENY_PORT)
    result, trace = _run(interp, smtp, time=4)
    assert result == DROP_DENIED
    assert len(trace.extern_calls) == 1  # only the expiry sweep ran

    # Truncated and non-IP frames are dropped before parsing endpoints.
    result, _ = _run(interp, flow[: MIN_FW_FRAME - 1], time=5)
    assert result == DROP_SHORT
    v6 = nat_frame(LAN_HOST, 40000, WAN_SERVER, 80, ethertype=(0x86, 0xDD))
    result, _ = _run(interp, v6, time=5)
    assert result == DROP_NON_IP

    # Draining the slot pool makes admission fail observably.
    for n in range(1, CAPACITY):
        result, _ = _run(interp, nat_frame(LAN_HOST + n, 40000, WAN_SERVER, 80), time=6)
        assert result not in (DROP_CONN_FULL,)
    result, _ = _run(interp, nat_frame(LAN_HOST + CAPACITY, 40000, WAN_SERVER, 80), time=6)
    assert result == DROP_CONN_FULL


def test_contract_bounds_150_replayed_packets(contract):
    """The acceptance check: for 150 replayed mixed packets the matched
    entry upper-bounds the traced counts, and the matched symbolic path
    predicts the stateless counts exactly."""
    interp, _ = _interp(slots=range(1, 200))
    rng = random.Random(2019)
    flows = [(rng.randrange(1 << 32), rng.randrange(1024, 1 << 16)) for _ in range(10)]

    replayed = 0
    classes_seen = set()
    for n in range(150):
        src_ip, src_port = flows[rng.randrange(len(flows))]
        in_port = LAN_PORT
        if n % 17 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)[: rng.randrange(0, 37)]
        elif n % 11 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80, ethertype=(0x86, 0xDD))
        elif n % 23 == 6:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, DENY_PORT)
        elif n % 5 == 0:
            packet = nat_frame(WAN_CLIENT, 443, src_ip, src_port)
            in_port = 1 + rng.randrange(3)
        else:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)
        time = n * 3
        _, trace = _run(interp, packet, in_port=in_port, time=time)

        env = firewall_replay_env(packet, len(packet), in_port, time, trace)
        entry = contract.classify(env)
        assert entry is not None, f"replay {n} not covered by any contract entry"
        classes_seen.add(entry.input_class.name)

        bindings = dict(ZERO_PCVS)
        bindings.update(trace.pcv_bindings())
        for metric, measured in (
            (Metric.INSTRUCTIONS, trace.total_instructions()),
            (Metric.MEMORY_ACCESSES, trace.total_memory_accesses()),
        ):
            predicted = entry.evaluate(metric, bindings)
            assert predicted >= measured, (
                f"replay {n} ({entry.input_class.name}): {predicted} < {measured}"
            )

        path = entry.matching_path(env)
        assert path is not None
        assert path.instructions == trace.instructions
        assert path.memory_accesses == trace.memory_accesses
        replayed += 1

    assert replayed == 150
    assert {
        "short",
        "non_ip",
        "denied",
        "outbound_new",
        "outbound_established",
        "unsolicited",
    } <= classes_seen


def test_adversarial_pins_every_conn_table_bound(contract):
    """The acceptance criterion: the adversarial stream pins ``fw_conn.t``,
    ``fw_conn.e`` and ``fw_conn.w`` exactly at their registry bounds."""
    workload = firewall_adversarial(capacity=CAPACITY, timeout=TIMEOUT)
    result = Replayer(workload.harness, contract).replay(workload.stimuli)
    assert result.ok, result.violations[:3]
    registry = contract.registry
    assert set(workload.expected_worst) == set(ZERO_PCVS)
    for pcv, bound in workload.expected_worst.items():
        assert registry.get(pcv).max_value == bound
        assert result.max_pcvs[pcv] == bound, pcv
    # The chain bound is hit by the established-flow fast path itself.
    worst = next(o for o in result.outcomes if o.note == "worst_t")
    assert worst.class_name == "outbound_established"
    assert worst.pcvs["fw_conn.t"] == CAPACITY
    # Admission with the pool drained is the observable exhaustion class.
    full = next(o for o in result.outcomes if o.note == "conn_full")
    assert full.class_name == "conn_full"
    # One doom-jump sweep advances the full wheel and expires everything.
    doom = next(o for o in result.outcomes if o.note == "worst_e")
    assert doom.pcvs["fw_conn.e"] == CAPACITY
    assert doom.pcvs["fw_conn.w"] == TIMEOUT + 1


def test_scan_sweep_exhausts_the_connection_table(contract):
    """A ZMap-style source sweep drains the slot pool front to back: the
    first ``capacity`` admissions succeed, everything after is
    ``conn_full`` — exhaustion under realistic scanner traffic."""
    workload = firewall_scan_sweep(capacity=CAPACITY, timeout=TIMEOUT, packets=150)
    result = Replayer(workload.harness, contract).replay(workload.stimuli)
    assert result.ok, result.violations[:3]
    assert set(result.classes_seen()) == {"outbound_new", "conn_full"}
    assert result.summaries["outbound_new"].packets == CAPACITY
    assert result.summaries["conn_full"].packets == 150 - CAPACITY
    # Slots lease for the stream's lifetime: once drained, always full.
    tail = [o.class_name for o in result.outcomes[CAPACITY:]]
    assert set(tail) == {"conn_full"}


def test_header_flood_hammers_the_default_deny(contract):
    workload = firewall_header_flood(capacity=CAPACITY, timeout=TIMEOUT, packets=150)
    result = Replayer(workload.harness, contract).replay(workload.stimuli)
    assert result.ok, result.violations[:3]
    assert set(result.classes_seen()) == {"short", "denied", "unsolicited"}
    # The blast is dominated by unsolicited WAN probes, none of which
    # install state: the table stays empty throughout.
    assert result.summaries["unsolicited"].packets > 100
    conn = workload.harness.structures[0]
    assert conn.occupancy() == 0


def test_workload_streams_cover_every_contract_class(contract):
    classes = set()
    for workload in firewall_workloads(packets=150):
        result = Replayer(workload.harness, contract).replay(workload.stimuli)
        assert result.ok, result.violations[:3]
        classes.update(result.classes_seen())
    assert classes == FW_CLASSES


def test_harness_scalar_order_and_defaults():
    harness = firewall_harness(CAPACITY, TIMEOUT)
    assert harness.scalar_order == ("len", "in_port", "time")
    stimulus = Stimulus(
        packet=nat_frame(LAN_HOST, 40000, WAN_SERVER, 80),
        scalars={"in_port": LAN_PORT, "time": 0},
    )
    scalars = harness.scalars_for(stimulus)
    assert scalars["len"] == MIN_FW_FRAME + 12
