"""Tests for the bit-vector expression language (repro.sym.expr)."""

import pytest

from repro.sym import expr as E
from repro.sym.expr import Const, Sym, evaluate, free_symbols


def test_constant_folding_arithmetic():
    a, b = Const(7, 32), Const(5, 32)
    assert E.add(a, b) == Const(12, 32)
    assert E.sub(b, a) == Const((5 - 7) & 0xFFFFFFFF, 32)
    assert E.mul(a, b) == Const(35, 32)
    assert E.udiv(a, b) == Const(1, 32)
    assert E.urem(a, b) == Const(2, 32)


def test_division_by_zero_conventions():
    a, zero = Const(7, 16), Const(0, 16)
    assert E.udiv(a, zero) == Const(0xFFFF, 16)  # all-ones
    assert E.urem(a, zero) == Const(7, 16)  # dividend


def test_sdiv_is_exact_for_wide_values():
    # Truncating division toward zero, exact even at 64 bits (a float-based
    # implementation would lose low bits here).
    big = (1 << 62) + 3
    a, b = Const(big, 64), Const(2, 64)
    assert E.sdiv(a, b) == Const(big // 2, 64)
    neg = Const((-big) & ((1 << 64) - 1), 64)
    assert E.sdiv(neg, b) == Const((-(big // 2)) & ((1 << 64) - 1), 64)


def test_identity_simplifications():
    x = Sym("x", 32)
    assert E.add(x, Const(0, 32)) is x
    assert E.mul(x, Const(1, 32)) is x
    assert E.mul(x, Const(0, 32)) == Const(0, 32)
    assert E.band(x, Const(0xFFFFFFFF, 32)) is x
    assert E.band(x, Const(0, 32)) == Const(0, 32)
    assert E.bxor(x, x) == Const(0, 32)
    assert E.sub(x, x) == Const(0, 32)


def test_commutative_constant_canonicalisation():
    x = Sym("x", 8)
    left = E.add(Const(3, 8), x)
    right = E.add(x, Const(3, 8))
    assert left == right


def test_comparison_folding_and_same_operand():
    x = Sym("x", 16)
    assert E.eq(Const(3, 16), Const(3, 16)) == Const(1, 1)
    assert E.ult(Const(2, 16), Const(1, 16)) == Const(0, 1)
    assert E.eq(x, x) == Const(1, 1)
    assert E.ne(x, x) == Const(0, 1)
    assert E.ule(x, x) == Const(1, 1)


def test_width_mismatch_raises():
    with pytest.raises(ValueError):
        E.add(Sym("x", 8), Sym("y", 16))


def test_extract_concat_round_trip():
    x = Sym("x", 32)
    lo = E.extract(x, 0, 16)
    hi = E.extract(x, 16, 16)
    # Adjacent extracts of the same value merge back into the value.
    assert E.concat([lo, hi]) is x


def test_extract_of_constant_and_zext():
    c = Const(0xABCD, 16)
    assert E.extract(c, 8, 8) == Const(0xAB, 8)
    z = E.zext(Sym("x", 8), 32)
    assert E.extract(z, 8, 8) == Const(0, 8)
    assert E.extract(z, 0, 8) == Sym("x", 8)


def test_concat_folds_adjacent_constants():
    merged = E.concat([Const(0xCD, 8), Const(0xAB, 8)])
    assert merged == Const(0xABCD, 16)


def test_ite_folding():
    x, y = Sym("x", 8), Sym("y", 8)
    cond = Sym("c", 1)
    assert E.ite(Const(1, 1), x, y) is x
    assert E.ite(Const(0, 1), x, y) is y
    assert E.ite(cond, x, x) is x


def test_bnot_negates_comparisons():
    x, y = Sym("x", 8), Sym("y", 8)
    assert E.bnot(E.ult(x, y)) == E.uge(x, y)
    assert E.bnot(E.bnot(E.eq(x, y))) == E.eq(x, y)
    assert E.bnot(Const(1, 1)) == Const(0, 1)


def test_boolop_flattening_and_identities():
    a, b, c = Sym("a", 1), Sym("b", 1), Sym("c", 1)
    assert E.bool_and(a, Const(1, 1), b) == E.bool_and(a, b)
    assert E.bool_and(a, Const(0, 1), b) == Const(0, 1)
    assert E.bool_or(a, Const(1, 1)) == Const(1, 1)
    nested = E.bool_and(E.bool_and(a, b), c)
    assert nested == E.bool_and(a, b, c)


def test_evaluate_with_env_and_defaults():
    x, y = Sym("x", 8), Sym("y", 8)
    e = E.add(E.mul(x, Const(3, 8)), y)
    assert evaluate(e, {"x": 5, "y": 2}) == 17
    assert evaluate(e, {"x": 100}) == (300 & 0xFF)  # y defaults to 0, truncation
    assert evaluate(E.shl(Const(1, 8), Const(9, 8))) == 0  # over-shift


def test_free_symbols():
    x, y = Sym("x", 8), Sym("y", 16)
    e = E.eq(E.zext(x, 16), y)
    assert free_symbols(e) == {"x": 8, "y": 16}
