"""End-to-end tests for the heavy-hitter monitor.

The monitor is the NF whose contract is interesting for what it lacks:
the count-min sketch contributes no PCVs, so every class costs a
constant, and the hot/cold verdict pair prices *identically* — the
property the constant-time audit proves as a zero polynomial.  The tests
cover the concrete flagging semantics, replay bounded by the contract,
and the flood workloads saturating the sketch's counters.
"""

import random

import pytest

from repro.core import Metric
from repro.nf.monitor import (
    DROP_NON_IP,
    DROP_SHORT,
    FLAG_COLD,
    FLAG_HOT,
    MIN_MON_FRAME,
    MON_COUNTER_MAX,
    MON_THRESHOLD,
    MONITOR_FUNCTION,
    PKT_BASE,
    build_monitor_module,
    generate_monitor_contract,
    make_sketch,
    monitor_replay_env,
)
from repro.nf.workloads import (
    WAN_SERVER,
    monitor_adversarial,
    monitor_harness,
    monitor_header_flood,
    monitor_scan_sweep,
    monitor_workloads,
)
from repro.nfil import Interpreter, Memory
from repro.traffic import Replayer, Stimulus, nat_frame

MON_CLASSES = {"short", "non_ip", "cold_flow", "hot_flow"}


def _flow_key(src_ip, src_port):
    return (src_ip << 16) | src_port


@pytest.fixture(scope="module")
def contract():
    return generate_monitor_contract()


def _interp():
    sketch = make_sketch()
    return Interpreter(build_monitor_module(), handler=sketch), sketch


def _run(interp, packet):
    memory = Memory()
    memory.write_bytes(PKT_BASE, packet)
    return interp.run(MONITOR_FUNCTION, [PKT_BASE, len(packet)], memory=memory)


def test_contract_has_the_four_monitor_classes_and_no_pcvs(contract):
    assert set(contract.class_names()) == MON_CLASSES
    assert contract.variables() == set()  # the whole point of the sketch
    for entry in contract:
        assert entry.paths
        assert all(path.feasibility == "sat" for path in entry.paths)


def test_hot_and_cold_entries_price_identically(contract):
    """The verdict must be timing-invisible: both data classes carry the
    same constant polynomials, which is what the ct-audit proves."""
    hot = contract.entry_for("hot_flow")
    cold = contract.entry_for("cold_flow")
    for metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
        assert hot.expr(metric) == cold.expr(metric)
        assert not hot.expr(metric).variables()  # constant, not coincidence


def test_monitor_concrete_behaviour():
    interp, sketch = _interp()

    # A single flow is cold until its estimate reaches the threshold.
    frame = nat_frame(0xC0A80001, 40001, WAN_SERVER, 80)
    for _ in range(MON_THRESHOLD - 1):
        result, _ = _run(interp, frame)
        assert result == FLAG_COLD
    result, _ = _run(interp, frame)
    assert result == FLAG_HOT
    assert sketch.estimate(_flow_key(0xC0A80001, 40001)) == MON_THRESHOLD

    # Another flow's estimate is untouched (modulo row collisions).
    other = nat_frame(0x0A000001, 12001, WAN_SERVER, 80)
    result, _ = _run(interp, other)
    assert result == FLAG_COLD

    # Malformed frames never reach the sketch.
    result, trace = _run(interp, frame[: MIN_MON_FRAME - 1])
    assert result == DROP_SHORT
    assert trace.extern_calls == []
    v6 = nat_frame(0xC0A80001, 40001, WAN_SERVER, 80, ethertype=(0x86, 0xDD))
    result, trace = _run(interp, v6)
    assert result == DROP_NON_IP
    assert trace.extern_calls == []


def test_contract_bounds_150_replayed_packets(contract):
    interp, _ = _interp()
    rng = random.Random(2019)
    flows = [(rng.randrange(1 << 32), rng.randrange(1024, 1 << 16)) for _ in range(10)]

    replayed = 0
    classes_seen = set()
    for n in range(150):
        src_ip, src_port = flows[rng.randrange(len(flows))]
        if n % 17 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)[: rng.randrange(0, 37)]
        elif n % 11 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80, ethertype=(0x86, 0xDD))
        elif n % 3 == 0:
            # One elephant flow recurs often enough to cross the threshold.
            packet = nat_frame(*flows[0], WAN_SERVER, 80)
        else:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)
        _, trace = _run(interp, packet)

        env = monitor_replay_env(packet, len(packet), trace)
        entry = contract.classify(env)
        assert entry is not None, f"replay {n} not covered by any contract entry"
        classes_seen.add(entry.input_class.name)

        for metric, measured in (
            (Metric.INSTRUCTIONS, trace.total_instructions()),
            (Metric.MEMORY_ACCESSES, trace.total_memory_accesses()),
        ):
            predicted = entry.evaluate(metric, {})
            assert predicted >= measured, (
                f"replay {n} ({entry.input_class.name}): {predicted} < {measured}"
            )

        path = entry.matching_path(env)
        assert path is not None
        assert path.instructions == trace.instructions
        assert path.memory_accesses == trace.memory_accesses
        replayed += 1

    assert replayed == 150
    assert {"short", "non_ip", "cold_flow", "hot_flow"} <= classes_seen


def test_adversarial_saturates_the_hot_flow_and_covers_every_class(contract):
    """No bound to pin (no PCVs) — instead the stream forces every
    verdict and the saturated-update fast path."""
    workload = monitor_adversarial()
    assert workload.expected_worst == {}
    result = Replayer(workload.harness, contract).replay(workload.stimuli)
    assert result.ok, result.violations[:3]
    assert set(result.classes_seen()) == MON_CLASSES
    # The blasted flow crossed the threshold and hit the counter ceiling.
    sketch = workload.harness.structures[0]
    assert sketch.saturated(_flow_key(0xC0A80001, 40001))
    flood = [o for o in result.outcomes if o.note == "flood"]
    assert flood[0].class_name == "cold_flow"
    assert flood[-1].class_name == "hot_flow"
    # The fresh flow stays cold even with the sketch this hot.
    cold = next(o for o in result.outcomes if o.note == "cold")
    assert cold.class_name == "cold_flow"


def test_header_flood_pins_every_counter_to_the_ceiling(contract):
    """The satellite's saturation assertion: enough flood frames pin the
    flow's estimate at ``counter_max`` exactly — never past it."""
    workload = monitor_header_flood(packets=300)
    result = Replayer(workload.harness, contract).replay(workload.stimuli)
    assert result.ok, result.violations[:3]
    assert "hot_flow" in result.classes_seen()
    sketch = workload.harness.structures[0]
    key = _flow_key(0xC6336417, 6667)
    assert sketch.saturated(key)
    assert sketch.estimate(key) == MON_COUNTER_MAX


def test_scan_sweep_of_distinct_sources_stays_cold(contract):
    workload = monitor_scan_sweep(packets=150)
    result = Replayer(workload.harness, contract).replay(workload.stimuli)
    assert result.ok, result.violations[:3]
    # No flow repeats, so no estimate approaches the threshold.
    assert set(result.classes_seen()) == {"cold_flow"}


def test_workload_streams_cover_every_contract_class(contract):
    classes = set()
    for workload in monitor_workloads(packets=150):
        result = Replayer(workload.harness, contract).replay(workload.stimuli)
        assert result.ok, result.violations[:3]
        classes.update(result.classes_seen())
    assert classes == MON_CLASSES


def test_harness_scalar_order_and_defaults():
    harness = monitor_harness()
    assert harness.scalar_order == ("len",)
    stimulus = Stimulus(packet=nat_frame(0xC0A80001, 40001, WAN_SERVER, 80))
    assert harness.scalars_for(stimulus) == {"len": MIN_MON_FRAME + 12}
