"""The minimal libpcap reader/writer and its replay adapters."""

import importlib.util
import io
import struct
from importlib import resources
from pathlib import Path

import pytest

from repro.traffic.pcap import (
    Capture,
    CapturedPacket,
    LINKTYPE_ETHERNET,
    PCAP_MAGIC,
    PcapFormatError,
    capture_stimuli,
    capture_ticks,
    read_pcap,
    sample_capture,
    write_pcap,
)


def _capture():
    return Capture(
        packets=tuple(
            CapturedPacket(
                data=bytes([index]) * (38 + index),
                ts_sec=index // 2,
                ts_usec=(index % 2) * 500_000,
            )
            for index in range(5)
        )
    )


def _pcap_bytes(capture):
    buffer = io.BytesIO()
    write_pcap(buffer, capture)
    return buffer.getvalue()


# --------------------------------------------------------------------------- #
# Round trip and format
# --------------------------------------------------------------------------- #
def test_write_read_round_trip_is_byte_identical():
    blob = _pcap_bytes(_capture())
    parsed = read_pcap(blob)
    assert _pcap_bytes(parsed) == blob
    assert [p.data for p in parsed.packets] == [p.data for p in _capture().packets]
    assert [p.timestamp_us for p in parsed.packets] == [
        p.timestamp_us for p in _capture().packets
    ]
    assert parsed.snaplen == 65535
    assert parsed.network == LINKTYPE_ETHERNET


def test_read_accepts_the_opposite_byte_order():
    capture = _capture()
    blob = struct.pack(">IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535, LINKTYPE_ETHERNET)
    for packet in capture.packets:
        blob += struct.pack(
            ">IIII", packet.ts_sec, packet.ts_usec, len(packet.data), len(packet.data)
        )
        blob += packet.data
    parsed = read_pcap(blob)
    assert [p.data for p in parsed.packets] == [p.data for p in capture.packets]
    assert [p.ts_usec for p in parsed.packets] == [p.ts_usec for p in capture.packets]


def test_read_rejects_bad_magic_and_version():
    with pytest.raises(PcapFormatError, match="bad magic"):
        read_pcap(b"\x00" * 24)
    bad_version = struct.pack("<IHHiIII", PCAP_MAGIC, 1, 0, 0, 0, 65535, 1)
    with pytest.raises(PcapFormatError, match="version"):
        read_pcap(bad_version)


def test_read_rejects_truncation_everywhere():
    blob = _pcap_bytes(_capture())
    with pytest.raises(PcapFormatError, match="truncated global header"):
        read_pcap(blob[:10])
    with pytest.raises(PcapFormatError, match="truncated record header"):
        read_pcap(blob[: 24 + 8])
    with pytest.raises(PcapFormatError, match="body truncated"):
        read_pcap(blob[: 24 + 16 + 5])


def test_write_rejects_records_beyond_snaplen():
    capture = Capture(packets=(CapturedPacket(data=b"\x00" * 100),), snaplen=64)
    with pytest.raises(PcapFormatError, match="snaplen"):
        _pcap_bytes(capture)


def test_truncated_records_keep_their_wire_length():
    capture = Capture(packets=(CapturedPacket(data=b"\x01" * 20, orig_len=1500),))
    parsed = read_pcap(_pcap_bytes(capture))
    assert parsed.packets[0].wire_len == 1500
    assert len(parsed.packets[0].data) == 20


# --------------------------------------------------------------------------- #
# Replay adapters
# --------------------------------------------------------------------------- #
def test_capture_ticks_quantise_relative_to_the_first_record():
    ticks = capture_ticks(_capture())
    # Records are 500 ms apart at the default 1000 Hz tick clock.
    assert ticks == [0, 500, 1000, 1500, 2000]


def test_capture_ticks_reject_backwards_timestamps():
    capture = Capture(
        packets=(
            CapturedPacket(data=b"a", ts_sec=5),
            CapturedPacket(data=b"b", ts_sec=4),
        )
    )
    with pytest.raises(PcapFormatError, match="backwards"):
        capture_ticks(capture)


def test_capture_stimuli_default_scalars_carry_the_tick_clock():
    stimuli = capture_stimuli(_capture(), note="fixture")
    assert [s.scalars["time"] for s in stimuli] == [0, 500, 1000, 1500, 2000]
    assert all(s.note == "fixture" for s in stimuli)
    custom = capture_stimuli(
        _capture(), scalars=lambda index, tick, data: {"time": tick, "in_port": index}
    )
    assert [s.scalars["in_port"] for s in custom] == [0, 1, 2, 3, 4]


def test_sample_capture_loops_with_a_monotonic_clock():
    frames = sample_capture(_capture(), 12)
    assert len(frames) == 12
    ticks = [tick for _, tick in frames]
    assert ticks == sorted(ticks)
    # The second revolution replays the same bytes, re-based past the first.
    assert frames[5][0] == frames[0][0]
    assert frames[5][1] > frames[4][1]


# --------------------------------------------------------------------------- #
# Checked-in fixtures
# --------------------------------------------------------------------------- #
def _load_make_captures():
    repo = Path(__file__).resolve().parents[1]
    spec = importlib.util.spec_from_file_location(
        "make_captures", repo / "tools" / "make_captures.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_checked_in_fixtures_match_their_builders():
    """The binary blobs cannot drift from the code that generates them."""
    make_captures = _load_make_captures()
    assert make_captures.FIXTURES, "no fixtures registered"
    for name in make_captures.FIXTURES:
        checked_in = resources.files("repro.net.captures").joinpath(name).read_bytes()
        assert checked_in == make_captures.fixture_bytes(name), (
            f"{name} drifted from its builder; rerun tools/make_captures.py"
        )
