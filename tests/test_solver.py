"""Tests for the conservative constraint solver (repro.sym.solver)."""

from repro.sym import expr as E
from repro.sym.expr import Const, Sym
from repro.sym.solver import CheckResult, Solver


def _verify(constraints, model):
    return all(E.evaluate(c, model) == 1 for c in constraints)


def test_trivial_sat_and_unsat():
    solver = Solver()
    assert solver.check([]) is CheckResult.SAT
    assert solver.check([Const(1, 1)]) is CheckResult.SAT
    assert solver.check([Const(0, 1)]) is CheckResult.UNSAT


def test_unit_propagation_contradiction():
    x = Sym("x", 16)
    constraints = [E.eq(x, Const(3, 16)), E.eq(x, Const(4, 16))]
    assert Solver().check(constraints) is CheckResult.UNSAT


def test_empty_interval_is_unsat():
    x = Sym("x", 16)
    constraints = [E.ult(x, Const(5, 16)), E.ugt(x, Const(9, 16))]
    assert Solver().check(constraints) is CheckResult.UNSAT


def test_model_satisfies_constraints():
    x, y = Sym("x", 16), Sym("y", 16)
    constraints = [
        E.ugt(x, Const(10, 16)),
        E.ult(x, Const(20, 16)),
        E.eq(y, E.add(x, Const(1, 16))),
    ]
    solver = Solver()
    assert solver.check(constraints) is CheckResult.SAT
    model = solver.model(constraints)
    assert model is not None
    assert _verify(constraints, model)
    assert 10 < model["x"] < 20


def test_equality_between_symbols():
    a, b = Sym("a", 32), Sym("b", 32)
    constraints = [E.eq(a, b), E.ugt(a, Const(100, 32))]
    model = Solver().model(constraints)
    assert model is not None
    assert _verify(constraints, model)


def test_sentinel_style_disjunction():
    # The shape the bridge model produces: result is a sentinel or small.
    sentinel = (1 << 64) - 1
    r = Sym("r", 64)
    valid = E.bool_or(E.eq(r, Const(sentinel, 64)), E.ult(r, Const(64, 64)))
    model_hit = Solver().model([valid, E.ne(r, Const(sentinel, 64))])
    assert model_hit is not None and model_hit["r"] < 64
    model_miss = Solver().model([valid, E.uge(r, Const(64, 64))])
    assert model_miss is not None and model_miss["r"] == sentinel


def test_is_feasible_treats_unknown_as_feasible():
    # A nonlinear relation the bounded search may not crack is still
    # reported feasible (the conservative reading BOLT relies on).
    x = Sym("x", 64)
    hard = [E.eq(E.mul(x, x), Const(12345678987654321, 64))]
    solver = Solver(max_search_nodes=10, random_tries=5)
    assert solver.is_feasible(hard)  # not provably UNSAT
    assert solver.check(hard) is not CheckResult.UNSAT


def test_implied():
    x = Sym("x", 16)
    background = [E.eq(x, Const(7, 16))]
    solver = Solver()
    assert solver.implied(background, E.ult(x, Const(10, 16)))
    assert not solver.implied(background, E.ult(x, Const(5, 16)))


def test_stats_counters_update():
    solver = Solver()
    solver.check([Const(1, 1)])
    solver.check([Const(0, 1)])
    assert solver.stats.checks == 2
    assert solver.stats.sat == 1
    assert solver.stats.unsat == 1
