"""Tests for contracts, PerfExpr/PCV helpers, composition and the Distiller."""

from fractions import Fraction

import pytest

from repro.core import (
    ContractEntry,
    Distiller,
    InputClass,
    Metric,
    PCV,
    PCVRegistry,
    PerfExpr,
    PerformanceContract,
    compose_contracts,
    naive_add_contracts,
    upper_envelope,
)


def test_perfexpr_arithmetic_and_render():
    e = 245 * PerfExpr.var("e") + 144 * PerfExpr.var("c") + 882
    assert e.coefficient("e") == 245
    assert e.constant_term() == 882
    assert e.evaluate({"e": 2, "c": 1}) == 245 * 2 + 144 + 882
    assert "245·e" in e.render()
    cross = PerfExpr.var("e") * PerfExpr.var("c")
    assert cross.coefficient("e", "c") == 1
    assert cross.degree() == 2


def test_perfexpr_substitute_and_upper_bound():
    e = PerfExpr.from_terms(e=3, t=2, **{"e*t": 1}, const=5)
    partial = e.substitute({"e": 4})
    assert partial == PerfExpr.from_terms(t=6, const=17)
    assert e.upper_bound({"e": 10, "t": 10}) == 30 + 20 + 100 + 5


def test_upper_envelope_is_monomial_wise_max():
    a = PerfExpr.from_terms(t=12, const=36)
    b = PerfExpr.from_terms(t=8, e=7, const=38)
    merged = upper_envelope([a, b])
    assert merged == PerfExpr.from_terms(t=12, e=7, const=38)
    for expr in (a, b):
        for bindings in ({"t": 0, "e": 0}, {"t": 5, "e": 3}):
            assert merged.evaluate(bindings) >= expr.evaluate(bindings)


def test_contract_entries_and_bounds():
    registry = PCVRegistry([PCV("t", "traversals", max_value=8)])
    contract = PerformanceContract("nf", registry=registry)
    contract.add_entry(
        ContractEntry(
            InputClass("fast"),
            {Metric.INSTRUCTIONS: PerfExpr.from_terms(const=10)},
        )
    )
    contract.add_entry(
        ContractEntry(
            InputClass("slow"),
            {Metric.INSTRUCTIONS: PerfExpr.from_terms(t=6, const=5)},
        )
    )
    assert contract.class_names() == ["fast", "slow"]
    assert contract.entry_for("slow").evaluate(Metric.INSTRUCTIONS, {"t": 2}) == 17
    # worst case at registry bounds: 6*8 + 5 = 53 > 10
    assert contract.upper_bound(Metric.INSTRUCTIONS) == 53
    with pytest.raises(ValueError):
        contract.add_entry(ContractEntry(InputClass("fast")))


def test_contract_render_mentions_classes_and_pcvs():
    registry = PCVRegistry([PCV("t", "bucket traversals")])
    contract = PerformanceContract("bridge", registry=registry)
    contract.add_entry(
        ContractEntry(
            InputClass("hit"),
            {Metric.INSTRUCTIONS: PerfExpr.from_terms(t=6, const=36)},
        )
    )
    text = contract.render()
    assert "bridge" in text and "hit" in text
    assert "6·t + 36" in text
    assert "bucket traversals" in text


def test_compose_contracts_cross_product():
    def one(name, classes):
        contract = PerformanceContract(name)
        for cls, const in classes:
            contract.add_entry(
                ContractEntry(
                    InputClass(cls),
                    {Metric.INSTRUCTIONS: PerfExpr.from_terms(const=const)},
                )
            )
        return contract

    chain = compose_contracts(
        "chain", [one("fw", [("pass", 10), ("drop", 4)]), one("nat", [("hit", 20)])]
    )
    assert sorted(chain.class_names()) == ["drop & hit", "pass & hit"]
    assert chain.entry_for("pass & hit").expr(Metric.INSTRUCTIONS) == PerfExpr.constant(30)
    assert chain.entry_for("drop & hit").expr(Metric.INSTRUCTIONS) == PerfExpr.constant(24)


def test_naive_add_contracts_single_worst_case():
    a = PerformanceContract("a")
    a.add_entry(
        ContractEntry(InputClass("x"), {Metric.INSTRUCTIONS: PerfExpr.from_terms(t=2, const=5)})
    )
    a.add_entry(
        ContractEntry(InputClass("y"), {Metric.INSTRUCTIONS: PerfExpr.from_terms(t=1, const=9)})
    )
    b = PerformanceContract("b")
    b.add_entry(
        ContractEntry(InputClass("z"), {Metric.INSTRUCTIONS: PerfExpr.from_terms(const=100)})
    )
    total = naive_add_contracts("sum", [a, b])
    assert len(total) == 1
    expr = total.entries[0].expr(Metric.INSTRUCTIONS)
    # envelope(a) = 2t + 9, plus 100
    assert expr == PerfExpr.from_terms(t=2, const=109)


def test_distiller_drops_negligible_terms_and_names_dominant():
    registry = PCVRegistry(
        [PCV("e", "expired", max_value=100), PCV("t", "traversals", max_value=100)]
    )
    contract = PerformanceContract("nf", registry=registry)
    contract.add_entry(
        ContractEntry(
            InputClass("all"),
            {
                Metric.INSTRUCTIONS: PerfExpr.from_terms(e=500, t=1, const=3),
            },
        )
    )
    report = Distiller(contract).distill(Metric.INSTRUCTIONS, relative_threshold=0.05)
    entry = report.entry_for("all")
    # e dominates at the bounds: t and the constant fall below 5%.
    assert entry.simplified == PerfExpr.from_terms(e=500)
    assert entry.dominant_pcv == "e"
    assert 0 < entry.dropped_share < Fraction(1, 10)
    assert "e" in report.render()


def test_pcv_registry_conflicts_and_bounds():
    registry = PCVRegistry()
    registry.register(PCV("t", "traversals", max_value=8))
    registry.register(PCV("t", "traversals", max_value=8))  # identical: fine
    with pytest.raises(ValueError):
        registry.register(PCV("t", "something else", max_value=9))
    assert registry.default_bounds() == {"t": 8}


def test_input_class_predicate_matching():
    from repro.sym import expr as E
    from repro.sym.expr import Const, Sym

    small = InputClass("small", predicate=E.ult(Sym("len", 64), Const(64, 64)))
    assert small.matches({"len": 10})
    assert not small.matches({"len": 100})
    with pytest.raises(ValueError):
        InputClass("bad", predicate=Sym("x", 8))
