"""Hardware cycle models: pricing, derivation, and measured ≤ predicted."""

from fractions import Fraction

import pytest

from repro.core import ContractEntry, InputClass, Metric, PerfExpr, PerformanceContract
from repro.core.pcv import PCV, PCVRegistry
from repro.hw import ConservativeModel, HwSpec, RealisticModel
from repro.nf.workloads import bridge_harness, bridge_workloads
from repro.nf.bridge import generate_bridge_contract
from repro.nfil.tracer import ExecutionTrace
from repro.structures import ChainingHashMap
from repro.traffic import Replayer

SPEC = HwSpec(issue_width=2, l1_latency=4, dram_latency=100)


# The toy contract is written over the instance-qualified PCV the map
# instance "flow_map" emits, so hit-rate pricing can resolve its owner.
T = "flow_map.t"


def _toy_entry():
    return ContractEntry(
        input_class=InputClass("all"),
        exprs={
            Metric.INSTRUCTIONS: PerfExpr.from_terms(const=5, **{T: 6}),
            Metric.MEMORY_ACCESSES: PerfExpr.from_terms(const=2, **{T: 2}),
        },
    )


def _toy_contract():
    registry = PCVRegistry([PCV(T, "traversals", structure="flow_map", max_value=8)])
    contract = PerformanceContract("toy", registry=registry)
    contract.add_entry(_toy_entry())
    return contract


def test_hw_spec_validation():
    with pytest.raises(ValueError):
        HwSpec(issue_width=0)
    with pytest.raises(ValueError):
        HwSpec(l1_latency=200, dram_latency=100)


def test_conservative_prices_every_access_at_dram():
    model = ConservativeModel(SPEC)
    expr = model.cycles_expr(_toy_entry())
    # 6t + 5 instructions at CPI 1, (2t + 2) accesses at 100 cycles.
    assert expr == PerfExpr.from_terms(const=205, **{T: 206})


def test_realistic_prices_structure_accesses_by_hit_rate():
    table = ChainingHashMap("flow_map", capacity=8)
    model = RealisticModel(SPEC, hit_rates={"chaining_hash_map": Fraction(1, 2)})
    expr = model.cycles_expr(_toy_entry(), structures=(table,))
    blended = Fraction(1, 2) * 4 + Fraction(1, 2) * 100  # 52
    # Instructions amortise over the issue width; the t term belongs to
    # the map; the constant term is priced at max(stateless, structure).
    expected = (
        PerfExpr.from_terms(const=5, **{T: 6}).scaled(Fraction(1, 2))
        + PerfExpr.from_terms(**{T: 2}).scaled(blended)
        + PerfExpr.constant(2 * blended)
    )
    assert expr == expected


def test_realistic_unknown_structure_gets_no_locality():
    model = RealisticModel(SPEC)
    # No structures given: the PCV has no owner, so its accesses are
    # priced at the unknown-producer worst case (DRAM).
    expr = model.cycles_expr(_toy_entry())
    assert expr.coefficient(T) == Fraction(6, 2) + 2 * 100


def test_realistic_hit_rate_validation():
    with pytest.raises(ValueError):
        RealisticModel(SPEC, hit_rates={"lpm_trie": 1.5})


def test_hit_rate_resolution_prefers_instance_over_kind():
    table = ChainingHashMap("flow_map", capacity=8)
    model = RealisticModel(
        SPEC, hit_rates={"chaining_hash_map": Fraction(1, 2), "flow_map": Fraction(1, 4)}
    )
    assert model.hit_rate(table) == Fraction(1, 4)


def test_measure_prices_a_hand_built_trace():
    table = ChainingHashMap("flow_map", capacity=8)
    trace = ExecutionTrace()
    for _ in range(10):
        trace.record_instruction("binop")
    trace.record_access(0x1000, 4, "load")
    trace.record_access(0x1000, 4, "store")
    trace.record_extern("flow_map_get", (7,), 3, instructions=11, memory_accesses=4, pcvs={"t": 1})
    conservative = ConservativeModel(SPEC)
    # (10 stateless + 11 extern) instructions + 6 accesses at DRAM.
    assert conservative.measure(trace, structures=(table,)) == 21 + 6 * 100
    realistic = RealisticModel(SPEC, hit_rates={"chaining_hash_map": Fraction(1, 2)})
    blended = Fraction(52)
    assert realistic.measure(trace, structures=(table,)) == (
        Fraction(21, 2) + 2 * 4 + 4 * blended
    )


def test_call_owner_resolution_is_by_exact_extern_name():
    """An instance whose name prefixes another's must not steal its calls."""
    fib = ChainingHashMap("fib", capacity=8)
    fib_cache = ChainingHashMap("fib_cache", capacity=8)
    model = RealisticModel(SPEC)
    owners = model.call_owners((fib, fib_cache))
    assert owners["fib_get"] is fib
    assert owners["fib_cache_get"] is fib_cache
    trace = ExecutionTrace()
    trace.record_extern("fib_cache_get", (1,), 2, memory_accesses=10, pcvs={"t": 0})
    priced = RealisticModel(
        SPEC, hit_rates={"fib": Fraction(1), "fib_cache": Fraction(0)}
    ).measure(trace, structures=(fib, fib_cache))
    # All-miss pricing for fib_cache, not fib's all-hit pricing.
    assert priced == 10 * SPEC.dram_latency


def test_derive_adds_a_cycles_column():
    contract = _toy_contract()
    model = ConservativeModel(SPEC)
    derived = model.derive(contract)
    assert derived.nf_name == "toy@conservative"
    assert derived.class_names() == contract.class_names()
    entry = derived.entry_for("all")
    assert Metric.CYCLES in entry.exprs
    assert entry.expr(Metric.INSTRUCTIONS) == _toy_entry().expr(Metric.INSTRUCTIONS)
    assert "cycles" in derived.render()


def test_envelope_bounds_any_binding():
    contract = _toy_contract()
    model = ConservativeModel(SPEC)
    envelope = model.envelope(contract)
    for t in range(9):
        assert model.predict(contract.entry_for("all"), {T: t}) <= envelope


def test_bridge_replay_measured_within_predicted_for_both_models():
    """The evaluation-loop invariant, directly: for every replayed packet
    the model-priced trace is bounded by the model-priced contract entry."""
    contract = generate_bridge_contract(16, 50)
    models = (ConservativeModel(SPEC), RealisticModel(SPEC))
    for workload in bridge_workloads(packets=60):
        result = Replayer(workload.harness, contract, models=models).replay(
            workload.stimuli, workload=workload.name
        )
        assert result.ok, result.violations[:3]
        for outcome in result.outcomes:
            for name, (measured, predicted) in outcome.cycles.items():
                assert measured <= predicted, (workload.name, outcome.index, name)


def test_conservative_never_cheaper_than_realistic_on_a_trace():
    harness = bridge_harness(16, 50)
    contract = generate_bridge_contract(16, 50)
    conservative, realistic = ConservativeModel(SPEC), RealisticModel(SPEC)
    workload = bridge_workloads(packets=40)[0]
    result = Replayer(
        workload.harness, contract, models=(conservative, realistic)
    ).replay(workload.stimuli)
    assert harness.structures  # the harness exposes its structures
    for outcome in result.outcomes:
        assert outcome.cycles["conservative"][0] >= outcome.cycles["realistic"][0]
