"""End-to-end tests for the Maglev-style load balancer.

The LB is the first NF with a control-plane cost in its contract: backend
add/remove frames charge ``lb_tbl.f`` (table repopulation), while data
frames charge only the connection table's ``conn.*`` PCVs.  The tests
cover both sides: per-packet replay bounded by the contract, and the
adversarial stream pinning the repopulation bound exactly.
"""

import random

import pytest

from repro.core import Metric
from repro.nf.lb import (
    CMD_ADD,
    CMD_DATA,
    CMD_REMOVE,
    CTRL_DONE,
    DROP_NO_BACKENDS,
    DROP_NON_IP,
    DROP_SHORT,
    LB_FUNCTION,
    MIN_LB_FRAME,
    PKT_BASE,
    build_lb_module,
    generate_lb_contract,
    lb_replay_env,
    make_lb_state,
)
from repro.nf.workloads import lb_adversarial, lb_harness, lb_workloads
from repro.nfil import ExternHandler, Interpreter, Memory
from repro.structures import max_fill_iterations
from repro.traffic import Replayer, Stimulus, nat_frame

CAPACITY = 16
TIMEOUT = 50
TABLE_SIZE = 13
MAX_BACKENDS = 4

LB_CLASSES = {
    "short",
    "non_ip",
    "reconfig",
    "new_flow",
    "existing_flow",
    "backend_drained",
    "no_backends",
}

#: Every namespaced PCV of the LB contract, zeroed.
ZERO_PCVS = {"conn.t": 0, "conn.w": 0, "conn.e": 0, "lb_tbl.f": 0}

LAN_HOST = 0x0A000001  # 10.0.0.1
VIP = 0xC6336401  # 198.51.100.1


@pytest.fixture(scope="module")
def contract():
    return generate_lb_contract(
        CAPACITY, TIMEOUT, table_size=TABLE_SIZE, max_backends=MAX_BACKENDS
    )


def _interp(capacity=CAPACITY, timeout=TIMEOUT):
    tbl, conn = make_lb_state(
        capacity, timeout, table_size=TABLE_SIZE, max_backends=MAX_BACKENDS
    )
    handler = ExternHandler().merge(tbl).merge(conn)
    return Interpreter(build_lb_module(), handler=handler), (tbl, conn)


def _run(interp, packet, cmd=CMD_DATA, arg=0, time=0):
    memory = Memory()
    memory.write_bytes(PKT_BASE, packet)
    return interp.run(
        LB_FUNCTION, [PKT_BASE, len(packet), cmd, arg, time], memory=memory
    )


def test_contract_has_the_seven_lb_classes(contract):
    assert set(contract.class_names()) == LB_CLASSES
    for entry in contract:
        assert entry.paths, "every LB entry must carry its symbolic path"
        assert all(path.feasibility == "sat" for path in entry.paths)


def test_contract_separates_control_plane_from_data_plane(contract):
    """Only ``reconfig`` charges the repopulation PCV; data classes charge
    the connection table, whose lookups stay constant-time."""
    assert contract.variables() == set(ZERO_PCVS)
    reconfig = contract.entry_for("reconfig")
    assert reconfig.expr(Metric.INSTRUCTIONS).coefficient("lb_tbl.f") == 7
    assert reconfig.expr(Metric.INSTRUCTIONS).coefficient("conn.t") == 0
    for name in ("new_flow", "existing_flow", "backend_drained"):
        entry = contract.entry_for(name)
        assert entry.expr(Metric.INSTRUCTIONS).coefficient("lb_tbl.f") == 0
        # conn get + refreshing put walk the chain twice.
        assert entry.expr(Metric.INSTRUCTIONS).coefficient("conn.t") == 12
    # Bounds: the connection table's capacity and the proven fill bound.
    assert contract.registry.get("conn.t").max_value == CAPACITY
    assert contract.registry.get("lb_tbl.f").max_value == max_fill_iterations(
        MAX_BACKENDS, TABLE_SIZE
    )


def test_lb_concrete_behaviour():
    interp, (tbl, conn) = _interp()

    # Data traffic before any backend exists is dropped.
    flow = nat_frame(LAN_HOST, 40000, VIP, 80)
    result, _ = _run(interp, flow, time=0)
    assert result == DROP_NO_BACKENDS

    # Control frames activate backends (and never parse the packet).
    for i, backend in enumerate((11, 22, 33, 44)):
        result, trace = _run(interp, b"", cmd=CMD_ADD, arg=backend, time=0)
        assert result == CTRL_DONE
    assert tbl.backend_count() == 4

    # A new flow is consistent-hashed and bound; repeats stick to it.
    result, _ = _run(interp, flow, time=1)
    assert result in {11, 22, 33, 44}
    first = result
    assert conn.occupancy() == 1
    for time in (2, 3):
        result, _ = _run(interp, flow, time=time)
        assert result == first  # affinity, not re-selection

    # Draining the flow's backend forces re-selection onto a survivor.
    result, _ = _run(interp, b"", cmd=CMD_REMOVE, arg=first, time=4)
    assert result == CTRL_DONE
    result, _ = _run(interp, flow, time=5)
    assert result != first and result in {11, 22, 33, 44}

    # Truncated and non-IP frames are dropped before parsing endpoints.
    result, trace = _run(interp, flow[: MIN_LB_FRAME - 1], time=6)
    assert result == DROP_SHORT
    assert len(trace.extern_calls) == 1  # only the expiry scan ran
    v6 = nat_frame(LAN_HOST, 40000, VIP, 80, ethertype=(0x86, 0xDD))
    result, _ = _run(interp, v6, time=7)
    assert result == DROP_NON_IP

    # Draining everything drops both new and previously-bound flows.
    for backend in tbl.backends():
        _run(interp, b"", cmd=CMD_REMOVE, arg=backend, time=8)
    result, _ = _run(interp, flow, time=9)
    assert result == DROP_NO_BACKENDS
    other = nat_frame(LAN_HOST + 1, 40000, VIP, 80)
    result, _ = _run(interp, other, time=9)
    assert result == DROP_NO_BACKENDS


def test_lb_backend_rewrite_lands_in_packet_memory():
    interp, _ = _interp()
    _run(interp, b"", cmd=CMD_ADD, arg=77, time=0)
    memory = Memory()
    packet = nat_frame(LAN_HOST, 40000, VIP, 80)
    memory.write_bytes(PKT_BASE, packet)
    result, _ = interp.run(
        LB_FUNCTION, [PKT_BASE, len(packet), CMD_DATA, 0, 1], memory=memory
    )
    # The chosen backend is steered into the frame (little-endian store).
    assert memory.load(PKT_BASE, 2) == result == 77


def test_contract_bounds_100_replayed_packets(contract):
    """The acceptance check: for >=100 replayed packets (data and control
    mixed) the matched entry upper-bounds the traced counts, and the
    matched symbolic path predicts the stateless counts exactly."""
    interp, _ = _interp()
    rng = random.Random(2019)
    hosts = [(rng.randrange(1 << 32), rng.randrange(1024, 1 << 16)) for _ in range(10)]
    backends = rng.sample(range(1, 1 << 16), MAX_BACKENDS)

    replayed = 0
    classes_seen = set()
    for n in range(150):
        src_ip, src_port = hosts[rng.randrange(len(hosts))]
        cmd, arg = CMD_DATA, 0
        if n % 19 == 0:
            cmd = CMD_ADD if (n // 19) % 2 == 0 else CMD_REMOVE
            arg = backends[(n // 19) % len(backends)]
            packet = b""
        elif n % 13 == 0:
            packet = nat_frame(src_ip, src_port, VIP, 80)[: rng.randrange(0, 37)]
        else:
            packet = nat_frame(src_ip, src_port, VIP, 80)
        time = n * 2
        _, trace = _run(interp, packet, cmd=cmd, arg=arg, time=time)

        env = lb_replay_env(packet, len(packet), cmd, arg, time, trace)
        entry = contract.classify(env)
        assert entry is not None, f"replay {n} not covered by any contract entry"
        classes_seen.add(entry.input_class.name)

        bindings = dict(ZERO_PCVS)
        bindings.update(trace.pcv_bindings())
        for metric, measured in (
            (Metric.INSTRUCTIONS, trace.total_instructions()),
            (Metric.MEMORY_ACCESSES, trace.total_memory_accesses()),
        ):
            predicted = entry.evaluate(metric, bindings)
            assert predicted >= measured, (
                f"replay {n} ({entry.input_class.name}): {predicted} < {measured}"
            )

        path = entry.matching_path(env)
        assert path is not None
        assert path.instructions == trace.instructions
        assert path.memory_accesses == trace.memory_accesses
        replayed += 1

    assert replayed >= 100
    assert {"reconfig", "new_flow", "existing_flow", "short"} <= classes_seen


def test_adversarial_pins_data_and_control_plane_bounds(contract):
    """The acceptance criterion: the adversarial stream pins the
    connection-table bounds AND the repopulation bound exactly."""
    workload = lb_adversarial(
        capacity=CAPACITY, timeout=TIMEOUT, table_size=TABLE_SIZE, max_backends=MAX_BACKENDS
    )
    result = Replayer(workload.harness, contract).replay(workload.stimuli)
    assert result.ok, result.violations[:3]
    registry = contract.registry
    assert set(workload.expected_worst) == set(ZERO_PCVS)
    for pcv, bound in workload.expected_worst.items():
        assert registry.get(pcv).max_value == bound
        assert result.max_pcvs[pcv] == bound, pcv
    # The repopulation bound is hit by a *control* frame (reconfig class),
    # never by a data frame — control-plane cost stays on control paths.
    for outcome in result.outcomes:
        if outcome.pcvs.get("lb_tbl.f"):
            assert outcome.class_name == "reconfig"
    # The worst_t packet walks the full connection chain.
    worst = next(o for o in result.outcomes if o.note == "worst_t")
    assert worst.pcvs["conn.t"] == CAPACITY
    assert worst.class_name == "existing_flow"
    # The drained phase re-selects through the Maglev table.
    drained = next(
        o for o in result.outcomes if o.note == "drained" and o.class_name != "reconfig"
    )
    assert drained.class_name == "backend_drained"


def test_workload_streams_cover_every_contract_class(contract):
    classes = set()
    for workload in lb_workloads(packets=120):
        result = Replayer(workload.harness, contract).replay(workload.stimuli)
        assert result.ok, result.violations[:3]
        classes.update(result.classes_seen())
    assert classes == LB_CLASSES


def test_harness_scalar_order_and_defaults():
    harness = lb_harness(CAPACITY, TIMEOUT)
    assert harness.scalar_order == ("len", "cmd", "arg", "time")
    stimulus = Stimulus(
        packet=nat_frame(LAN_HOST, 40000, VIP, 80),
        scalars={"cmd": CMD_DATA, "arg": 0, "time": 0},
    )
    scalars = harness.scalars_for(stimulus)
    assert scalars["len"] == MIN_LB_FRAME + 12
