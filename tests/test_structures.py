"""Tests for the Vigor-style structure library: concrete semantics, the
per-operation hand contracts (replayed against 100+ traced operations per
structure), and the Bolt cross-validation harness."""

import random

import pytest

from repro.core import Metric, PerfExpr
from repro.nfil import ExecutionTrace, ExternHandler, Interpreter
from repro.structures import (
    NOT_FOUND,
    ChainingHashMap,
    ExpiringMap,
    LpmTrie,
    MaglevTable,
    OpSpec,
    PortAllocator,
    Structure,
    StructureContractError,
    StructureModel,
    validate_structure_contract,
)
from repro.structures.lpm import MAX_DEPTH
from repro.structures.validation import operation_module


def traced_call(structure, method, *args, trace):
    """Drive one operation through the interpreter on its NFIL driver.

    Returns the concrete result; the call's instrumented cost lands in
    ``trace`` exactly as it would during an NF replay.
    """
    module, function = operation_module(structure, method)
    interp = Interpreter(module, handler=structure)
    result, _ = interp.run(function, list(args), trace=trace)
    return result


def assert_contract_bounds_trace(structure, trace, *, min_ops=100):
    """Every traced call must be upper-bounded by its hand contract entry."""
    contract = structure.operation_contract()
    assert len(trace.extern_calls) >= min_ops
    strict = 0
    for call in trace.extern_calls:
        method = call.name[len(structure.name) + 1 :]
        entry = contract.entry_for(method)
        bindings = {name: 0 for name in contract.registry.names()}
        bindings.update(call.pcvs)
        predicted_instr = entry.evaluate(Metric.INSTRUCTIONS, bindings)
        predicted_mem = entry.evaluate(Metric.MEMORY_ACCESSES, bindings)
        assert predicted_instr >= call.instructions, (
            f"{structure.name}.{method}: {predicted_instr} < {call.instructions}"
        )
        assert predicted_mem >= call.memory_accesses
        if predicted_instr > call.instructions:
            strict += 1
    # Fast paths must make the bound strict somewhere, or the check is a
    # tautology of "the handler charges the formula".
    assert strict > 0


# --------------------------------------------------------------------------- #
# Chaining hash map
# --------------------------------------------------------------------------- #
def test_hashmap_semantics():
    m = ChainingHashMap("m", capacity=4, buckets=2)
    assert m.lookup(1) == (None, 0)
    assert m.insert(1, 10) == ("inserted", 0)
    assert m.insert(1, 11)[0] == "refreshed"
    assert m.lookup(1)[0] == 11
    assert m.delete(1) == (True, 1)
    assert m.delete(1)[0] is False
    assert m.occupancy() == 0


def test_hashmap_capacity_drops_new_keys():
    m = ChainingHashMap("m", capacity=2, buckets=1)
    assert m.insert(1, 1)[0] == "inserted"
    assert m.insert(2, 2)[0] == "inserted"
    assert m.insert(3, 3)[0] == "dropped"
    # Refreshing an existing key still works at capacity.
    assert m.insert(2, 20)[0] == "refreshed"
    assert m.lookup(2)[0] == 20
    assert m.lookup(3) == (None, 2)


def test_hashmap_chains_report_traversals():
    m = ChainingHashMap("m", capacity=8, buckets=1)  # everything collides
    for key in range(4):
        m.insert(key, key * 10)
    value, traversed = m.lookup(3)
    assert value == 30
    assert traversed == 4  # walked the whole chain


def test_hashmap_contract_bounds_100_traced_operations():
    m = ChainingHashMap("flow", capacity=16, buckets=4)  # force collisions
    rng = random.Random(42)
    trace = ExecutionTrace()
    for n in range(150):
        key = rng.randrange(24)
        roll = rng.random()
        if roll < 0.5:
            traced_call(m, "put", key, n, trace=trace)
        elif roll < 0.85:
            result = traced_call(m, "get", key, trace=trace)
            expected = m.lookup(key)[0]
            assert result == (NOT_FOUND if expected is None else expected)
        else:
            traced_call(m, "remove", key, trace=trace)
    assert_contract_bounds_trace(m, trace, min_ops=150)
    # Collisions must actually have happened for the bound to mean much.
    assert max(call.pcvs.get("flow.t", 0) for call in trace.extern_calls) >= 2


# --------------------------------------------------------------------------- #
# Expiring (time-wheel) map
# --------------------------------------------------------------------------- #
def test_expiring_map_expires_on_deadline():
    m = ExpiringMap("em", capacity=8, timeout=5)
    m.insert(1, 10, now=0)
    assert m.sweep(4) == (4, 0)  # deadline is 0 + 5: not yet reached
    assert m.occupancy() == 1
    advanced, expired = m.sweep(5)
    assert (advanced, expired) == (1, 1)
    assert m.occupancy() == 0


def test_expiring_map_refresh_postpones_expiry():
    m = ExpiringMap("em", capacity=8, timeout=5)
    m.insert(1, 10, now=0)
    m.sweep(3)
    m.insert(1, 10, now=3)  # refresh: new deadline 8
    assert m.sweep(7) == (4, 0)
    assert m.occupancy() == 1
    assert m.sweep(9)[1] == 1


def test_expiring_map_wheel_advance_is_capped():
    m = ExpiringMap("em", capacity=8, timeout=5, wheel_slots=10)
    m.insert(1, 10, now=0)
    advanced, expired = m.sweep(1_000_000)
    assert advanced == 10  # one full revolution covers every slot
    assert expired == 1


def test_expiring_map_insert_never_skips_wheel_ticks():
    """A time-travelling insert must sweep, not jump the cursor: entries
    due in the skipped slots would otherwise outlive their deadline by a
    full wheel revolution."""
    m = ExpiringMap("em", capacity=8, timeout=300)
    m.insert(1, 10, now=0)  # deadline 300
    m.insert(2, 20, now=500)  # cursor moves 0 -> 500: key 1 must expire
    assert m.occupancy() == 1
    assert m._map.lookup(1) == (None, 0)
    assert m.sweep(501) == (1, 0)


def test_expiring_map_rejects_undersized_wheel():
    with pytest.raises(ValueError):
        ExpiringMap("em", timeout=10, wheel_slots=10)


def test_expiring_map_contract_bounds_100_traced_operations():
    m = ExpiringMap("mac", capacity=16, timeout=20, buckets=4)
    rng = random.Random(7)
    trace = ExecutionTrace()
    now = 0
    for n in range(60):
        now += rng.randrange(0, 8)
        traced_call(m, "expire", now, trace=trace)
        key = rng.randrange(24)
        traced_call(m, "put", key, n % 64, trace=trace)
        result = traced_call(m, "get", rng.randrange(24), trace=trace)
        assert result == NOT_FOUND or result < 64
    assert_contract_bounds_trace(m, trace, min_ops=180)
    # The workload must have exercised expiry and wheel advancement.
    assert max(call.pcvs.get("mac.e", 0) for call in trace.extern_calls) >= 1
    assert max(call.pcvs.get("mac.w", 0) for call in trace.extern_calls) >= 1


# --------------------------------------------------------------------------- #
# LPM trie
# --------------------------------------------------------------------------- #
def _ip(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


def test_lpm_longest_prefix_wins():
    t = LpmTrie("rt")
    t.add_route(_ip(10, 0, 0, 0), 8, 1)
    t.add_route(_ip(10, 1, 0, 0), 16, 2)
    t.add_route(_ip(10, 1, 2, 0), 24, 3)
    assert t.lookup(_ip(10, 9, 9, 9))[0] == 1
    assert t.lookup(_ip(10, 1, 9, 9))[0] == 2
    assert t.lookup(_ip(10, 1, 2, 9))[0] == 3
    assert t.lookup(_ip(11, 0, 0, 0))[0] is None
    assert t.route_count() == 3


def test_lpm_default_route_and_host_route():
    t = LpmTrie("rt")
    t.add_route(0, 0, 9)  # default route at the trie root
    t.add_route(_ip(192, 168, 0, 1), 32, 5)
    value, visited = t.lookup(_ip(8, 8, 8, 8))
    assert (value, visited) == (9, 1)
    value, visited = t.lookup(_ip(192, 168, 0, 1))
    assert value == 5
    assert visited == MAX_DEPTH


def test_lpm_rejects_bad_routes():
    t = LpmTrie("rt")
    with pytest.raises(ValueError):
        t.add_route(0, 33, 1)
    with pytest.raises(ValueError):
        t.add_route(1 << 32, 8, 1)
    with pytest.raises(ValueError):
        t.add_route(0, 0, NOT_FOUND)


def test_lpm_contract_bounds_100_traced_operations():
    t = LpmTrie("rt", value_bound=64)
    rng = random.Random(2019)
    # No default route: random addresses must be able to miss, so the
    # lookup bound stays strict somewhere (the miss fast path).
    for _ in range(40):
        length = rng.choice((8, 12, 16, 24, 32))
        prefix = rng.randrange(1 << 32) & ~((1 << (32 - length)) - 1 if length < 32 else 0)
        t.add_route(prefix, length, rng.randrange(64))
    trace = ExecutionTrace()
    depths = set()
    for _ in range(120):
        address = rng.randrange(1 << 32)
        result = traced_call(t, "lookup", address, trace=trace)
        expected = t.lookup(address)[0]
        assert result == (NOT_FOUND if expected is None else expected)
        depths.add(trace.extern_calls[-1].pcvs["rt.d"])
    assert_contract_bounds_trace(t, trace, min_ops=120)
    assert len(depths) > 1  # the workload explored different prefix depths
    assert max(depths) <= MAX_DEPTH


# --------------------------------------------------------------------------- #
# Port allocator
# --------------------------------------------------------------------------- #
def test_port_allocator_leases_in_pool_order_and_reuses_releases():
    alloc = PortAllocator("ports", pool=[100, 200, 300])
    assert [alloc.take() for _ in range(3)] == [100, 200, 300]
    assert alloc.take() == NOT_FOUND
    assert alloc.give_back(200) is True
    assert alloc.give_back(200) is False  # double free refused
    assert alloc.take() == 200
    assert alloc.available() == 0 and alloc.leased() == 3


def test_port_allocator_validates_its_pool():
    with pytest.raises(ValueError):
        PortAllocator("ports", pool=[])
    with pytest.raises(ValueError):
        PortAllocator("ports", pool=[1, 1])
    with pytest.raises(ValueError):
        PortAllocator("ports", pool=[1 << 16])


def test_port_allocator_contract_bounds_100_traced_operations():
    alloc = PortAllocator("ports", pool=range(1024, 1024 + 8))
    rng = random.Random(5)
    trace = ExecutionTrace()
    held = []
    for _ in range(120):
        if held and rng.random() < 0.4:
            traced_call(alloc, "release", held.pop(rng.randrange(len(held))), trace=trace)
        else:
            result = traced_call(alloc, "alloc", trace=trace)
            if result != NOT_FOUND:
                held.append(result)
    assert_contract_bounds_trace(alloc, trace, min_ops=120)
    # Exhaustion must have been exercised (the alloc fast path).
    assert any(call.result == NOT_FOUND for call in trace.extern_calls)


# --------------------------------------------------------------------------- #
# Bolt cross-validation and base-class machinery
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "structure",
    [
        ChainingHashMap("m", capacity=8, value_bound=64),
        ExpiringMap("em", capacity=8, timeout=30, value_bound=64),
        LpmTrie("rt", value_bound=64),
        PortAllocator("ports", pool=range(1024, 1032)),
        MaglevTable("tbl", table_size=7, max_backends=3, value_bound=1 << 16),
    ],
    ids=lambda s: s.kind,
)
def test_bolt_agrees_with_every_hand_contract(structure):
    checks = validate_structure_contract(structure)
    assert {check.method for check in checks} == {op.method for op in structure.ops()}
    for check in checks:
        # The only difference Bolt may find is the driver's stateless cost.
        assert check.driver_overhead[Metric.INSTRUCTIONS] >= 0
        for metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
            diff = check.generated[metric] - check.hand[metric]
            assert diff.is_constant()


def test_validation_catches_a_model_contract_mismatch():
    """If the symbolic model charges something other than the documented
    per-operation contract, the Bolt cross-check must fail loudly."""

    class DriftingMap(ChainingHashMap):
        """Reports a different ``get`` slope every time it is asked.

        The StructureModel snapshots ops() when Bolt runs, the validator
        reads ops() again for the hand contract — a structure whose promise
        drifts between the two is exactly the inconsistency the harness
        exists to catch.
        """

        def __init__(self, name, **kwargs):
            self._drift = 0
            super().__init__(name, **kwargs)

        def ops(self):
            base = super().ops()
            self._drift += 1
            get = base[0]
            drifted = dict(get.cost)
            drifted[Metric.INSTRUCTIONS] = (
                drifted[Metric.INSTRUCTIONS] + self._drift * PerfExpr.var("t")
            )
            return (
                OpSpec(
                    get.method,
                    get.arity,
                    get.returns_value,
                    drifted,
                    get.pcvs,
                    get.description,
                ),
            ) + tuple(base[1:])

    with pytest.raises(StructureContractError):
        validate_structure_contract(DriftingMap("m", capacity=8))


def test_structure_requires_handlers_for_declared_ops():
    class Incomplete(Structure):
        kind = "broken"

        def ops(self):
            return (OpSpec("poke", 1, False),)

    with pytest.raises(TypeError):
        Incomplete("b")


def test_structure_rejects_bad_instance_names():
    # The error must teach the rule: it quotes the allowed character set.
    with pytest.raises(ValueError, match="letters, digits and underscores"):
        ChainingHashMap("no spaces")
    # Dots are reserved as the PCV namespace separator.
    with pytest.raises(ValueError, match="letters, digits and underscores"):
        ChainingHashMap("dotted.name")
    # Digit-leading names would only fail later, at PCV qualification —
    # the constructor must fail fast instead.
    with pytest.raises(ValueError, match="not starting with a digit"):
        ChainingHashMap("2tbl")


def test_charge_rejects_bad_discounts():
    m = ChainingHashMap("m", capacity=4)
    with pytest.raises(ValueError):
        m.charge("get", 0, t=0, discount_instructions=99)


def test_structure_model_merges_registries_and_dispatches():
    em = ExpiringMap("mac", capacity=8, timeout=10)
    rt = LpmTrie("fib")
    model = StructureModel(em, rt)
    names = model.registry().names()
    assert names == ["fib.d", "mac.e", "mac.t", "mac.w"]


def test_structure_model_keeps_same_symbol_instances_disjoint():
    """Two structures declaring the same local symbol (both map kinds use
    ``t``) stay disjoint in the merged registry — each under its own
    instance namespace, each with its own bound."""
    em = ExpiringMap("mac", capacity=8, timeout=10)
    hm = ChainingHashMap("flow", capacity=32)
    registry = StructureModel(em, hm).registry()
    assert registry.names() == ["flow.t", "mac.e", "mac.t", "mac.w"]
    assert registry.get("mac.t").max_value == 8
    assert registry.get("flow.t").max_value == 32
    assert registry.get("mac.t").structure == "mac"
    assert registry.get("flow.t").structure == "flow"


def test_maps_reject_the_not_found_sentinel_as_value():
    """A stored NOT_FOUND would be indistinguishable from a miss, so the
    maps refuse it — mirroring LpmTrie.add_route's guard."""
    with pytest.raises(ValueError, match="NOT_FOUND"):
        ChainingHashMap("m", capacity=4).insert(1, NOT_FOUND)
    with pytest.raises(ValueError, match="NOT_FOUND"):
        ExpiringMap("em", capacity=4, timeout=5).insert(1, NOT_FOUND, now=0)


def test_extern_handler_merge_composes_structures():
    em = ExpiringMap("mac", capacity=8, timeout=10)
    rt = LpmTrie("fib")
    combined = ExternHandler().merge(em).merge(rt)
    for method in ("expire", "put", "get"):
        assert combined.knows(f"mac_{method}")
    assert combined.knows("fib_lookup")
    # Colliding extern names must be rejected, not silently shadowed.
    with pytest.raises(ValueError):
        combined.merge(LpmTrie("fib"))


def test_operation_contract_lists_every_op():
    em = ExpiringMap("mac", capacity=8, timeout=10)
    contract = em.operation_contract()
    assert contract.class_names() == ["expire", "put", "get"]
    text = contract.render()
    assert "time-wheel" in text
