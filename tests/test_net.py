"""Service graphs: validation, composition, end-to-end replay, churn."""

import pytest

from repro.core.composition import HOP_SEPARATOR, route_class_name
from repro.hw import ConservativeModel, RealisticModel
from repro.net import (
    ChurnSchedule,
    Graph,
    GraphError,
    GraphReplayer,
    Link,
    Node,
    backend_add,
    expiry_jump,
    lb_nat_router_graph,
    lb_nat_router_workloads,
    route_update,
)
from repro.nf.router import generate_router_contract
from repro.nf.workloads import router_harness


@pytest.fixture(scope="module")
def router_contract():
    return generate_router_contract()


def _router_node(name, contract):
    return Node(name=name, harness=router_harness(), contract=contract)


# --------------------------------------------------------------------------- #
# Graph validation
# --------------------------------------------------------------------------- #
def test_graph_rejects_duplicate_node_names(router_contract):
    nodes = [_router_node("r", router_contract), _router_node("r", router_contract)]
    with pytest.raises(GraphError, match="duplicate node name"):
        Graph("g", nodes, (), entry="r")


def test_graph_rejects_an_unknown_entry(router_contract):
    with pytest.raises(GraphError, match="entry node"):
        Graph("g", [_router_node("r", router_contract)], (), entry="nope")


def test_graph_rejects_links_to_unknown_nodes(router_contract):
    with pytest.raises(GraphError, match="unknown node"):
        Graph(
            "g",
            [_router_node("r", router_contract)],
            (Link("r", "ghost", frozenset({"routed"})),),
            entry="r",
        )


def test_graph_rejects_forwarding_classes_the_contract_lacks(router_contract):
    nodes = [_router_node("r1", router_contract), _router_node("r2", router_contract)]
    with pytest.raises(GraphError, match="contract does not define"):
        Graph("g", nodes, (Link("r1", "r2", frozenset({"warp"})),), entry="r1")


def test_graph_rejects_non_deterministic_forwarding(router_contract):
    nodes = [
        _router_node("r1", router_contract),
        _router_node("r2", router_contract),
        _router_node("r3", router_contract),
    ]
    links = (
        Link("r1", "r2", frozenset({"routed"})),
        Link("r1", "r3", frozenset({"routed"})),
    )
    with pytest.raises(GraphError, match="non-deterministic forwarding"):
        Graph("g", nodes, links, entry="r1")


def test_graph_rejects_cycles(router_contract):
    nodes = [_router_node("r1", router_contract), _router_node("r2", router_contract)]
    links = (
        Link("r1", "r2", frozenset({"routed"})),
        Link("r2", "r1", frozenset({"routed"})),
    )
    with pytest.raises(GraphError, match="cyclic topology"):
        Graph("g", nodes, links, entry="r1")


def test_graph_rejects_colliding_structure_instances(router_contract):
    # Both router harnesses deploy an LpmTrie instance named "rt".
    nodes = [_router_node("r1", router_contract), _router_node("r2", router_contract)]
    with pytest.raises(GraphError, match="deployed by both"):
        Graph("g", nodes, (Link("r1", "r2", frozenset({"routed"})),), entry="r1")


def test_links_must_forward_at_least_one_class():
    with pytest.raises(GraphError, match="forwards no classes"):
        Link("a", "b", frozenset())


def test_graph_switches_every_harness_to_capture_output(router_contract):
    node = _router_node("r", router_contract)
    assert not node.harness.capture_output
    Graph("g", [node], (), entry="r")
    assert node.harness.capture_output


# --------------------------------------------------------------------------- #
# Composition
# --------------------------------------------------------------------------- #
def test_route_class_name_formats_hops_in_order():
    route = (("lb", "new_flow"), ("nat", "internal_new"))
    assert route_class_name(route) == f"lb:new_flow{HOP_SEPARATOR}nat:internal_new"


def test_composed_contract_enumerates_every_reachable_route():
    graph = lb_nat_router_graph()
    composed = graph.compose()
    names = set(composed.class_names())
    # 4 LB-terminal classes + 3 forwarded x (5 NAT-terminal + 2 forwarded
    # x 5 router classes) = 49 reachable routes.
    assert len(names) == 49
    assert "lb:short" in names  # terminal at the entry hop
    assert f"lb:new_flow{HOP_SEPARATOR}nat:no_ports" in names
    assert (
        f"lb:new_flow{HOP_SEPARATOR}nat:internal_new{HOP_SEPARATOR}router:ttl_expired"
        in names
    )
    assert all(name.startswith("lb:") for name in names)
    # Composed PCVs are the union of the hops' instance-qualified PCVs.
    variables = set(composed.variables())
    for node in graph.nodes.values():
        assert set(node.contract.variables()) <= variables


# --------------------------------------------------------------------------- #
# Churn schedules
# --------------------------------------------------------------------------- #
def test_churn_schedule_orders_and_merges_events():
    schedule = ChurnSchedule([backend_add(5, "lb", 1), backend_add(2, "lb", 2)])
    assert [event.at for event in schedule.events] == [2, 5]
    merged = schedule.merged(ChurnSchedule([expiry_jump(3, "lb", 10)]))
    assert [event.at for event in merged.events] == [2, 3, 5]
    assert len(merged.at(2)) == 1
    assert merged.at(99) == ()


def test_route_update_requires_an_lpm_trie(router_contract):
    graph = lb_nat_router_graph()
    event = route_update(0, "lb", 0xC0000200, 24, 1)
    with pytest.raises(ValueError, match="no LpmTrie"):
        event.mutate(graph.nodes["lb"])
    # The router node accepts the same event.
    route_update(0, "router", 0xC0000200, 24, 1).mutate(graph.nodes["router"])


# --------------------------------------------------------------------------- #
# End-to-end replay
# --------------------------------------------------------------------------- #
def test_end_to_end_replay_holds_at_both_levels():
    """150 packets through LB -> NAT -> router with live churn: every hop
    within its own contract, every journey within the composed bound."""
    workload = lb_nat_router_workloads(0, 150)[0]
    replayer = GraphReplayer(
        workload.graph, models=[ConservativeModel(), RealisticModel()]
    )
    result = replayer.replay(
        workload.stream, schedule=workload.schedule, workload=workload.name
    )
    assert result.packets == 150
    assert result.ok, result.violations[:5]
    for outcome in result.outcomes:
        # Per hop: classified, and measured <= predicted on every metric.
        for _, hop in outcome.hops:
            assert hop.class_name is not None
            for metric, value in hop.measured.items():
                assert value <= hop.predicted[metric]
        # End to end: a composed route resolved and bounds its totals.
        assert outcome.route_name is not None
        for metric, value in outcome.measured.items():
            assert value <= outcome.predicted[metric]
        for _, (measured_cycles, predicted_cycles) in outcome.cycles.items():
            assert measured_cycles <= predicted_cycles
    # The full expected input-class coverage at every hop.
    seen = result.hop_classes_seen()
    for node, expected in workload.expected_hop_classes.items():
        assert set(expected) <= set(seen[node])
    # Churn visibly reshaped the run: the injected control frames were
    # classified (reconfig), and flow E flipped from no_route to routed
    # when the mid-stream route install landed.
    assert "reconfig" in seen["lb"]
    routes = result.routes_seen()
    assert f"lb:new_flow{HOP_SEPARATOR}nat:internal_new{HOP_SEPARATOR}router:no_route" in routes
    assert f"lb:new_flow{HOP_SEPARATOR}nat:internal_new{HOP_SEPARATOR}router:routed" in routes
    assert any("route 0x" in line for line in result.churn_log)
    assert result.control_outcomes and all(o.ok for _, o in result.control_outcomes)


def test_replay_is_deterministic_for_identical_stream_and_schedule():
    """Same capture-derived stream + same schedule => identical payloads."""

    def run():
        workload = lb_nat_router_workloads(7, 96)[0]
        replayer = GraphReplayer(workload.graph, models=[ConservativeModel()])
        return replayer.replay(
            workload.stream, schedule=workload.schedule, workload=workload.name
        ).to_json()

    assert run() == run()


def test_unclassified_hops_terminate_the_route(router_contract):
    """A frame no contract class covers stops the walk without a route."""
    from repro.core.contract import PerformanceContract
    from repro.net import GraphFrame

    # Drop the "short" entry so a truncated frame classifies nowhere.
    doctored = PerformanceContract(
        "router",
        registry=router_contract.registry,
        entries=[
            entry
            for entry in router_contract.entries
            if entry.input_class.name != "short"
        ],
    )
    node = Node(name="r", harness=router_harness(), contract=doctored)
    graph = Graph("solo", [node], (), entry="r")
    result = GraphReplayer(graph).replay([GraphFrame(packet=b"", time=0)])
    outcome = result.outcomes[0]
    assert outcome.route_name is None
    assert not outcome.ok
    assert "<unclassified>" in result.hop_summaries["r"]
