"""Direct tests for `repro.cli` itself.

CI exercises the CLI's green paths (contract-smoke, bench-smoke); these
tests pin the *red* paths — a seeded contract violation must flip the
exit code — and the shape of the BENCH_eval.json artifact.
"""

import json
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro import cli
from repro.core import Metric, PerfExpr
from repro.nf.workloads import bridge_adversarial
from repro.structures import ChainingHashMap, OpSpec
from repro.sym.solver import Solver


@pytest.fixture
def quiet_nf_matrix(monkeypatch):
    """Silence the NF half of smoke so structure tests stay fast."""
    monkeypatch.setattr(cli, "NF_MATRIX", ())


class DriftingMap(ChainingHashMap):
    """A structure whose documented contract drifts between reads.

    The hand contract and the symbolic model read ``ops()`` at different
    moments; a promise that changes between the two is exactly the
    inconsistency `python -m repro.cli smoke` must turn into a non-zero
    exit.
    """

    def __init__(self, name, **kwargs):
        self._drift = 0
        super().__init__(name, **kwargs)

    def ops(self):
        base = super().ops()
        self._drift += 1
        get = base[0]
        drifted = dict(get.cost)
        drifted[Metric.INSTRUCTIONS] = (
            drifted[Metric.INSTRUCTIONS] + self._drift * PerfExpr.var("t")
        )
        return (
            OpSpec(
                get.method,
                get.arity,
                get.returns_value,
                drifted,
                get.pcvs,
                get.description,
            ),
        ) + tuple(base[1:])


def test_structure_validation_flags_a_drifting_contract(capsys):
    failures = cli.run_structure_validation([DriftingMap("m", capacity=8)])
    assert failures == 1
    assert "FAIL" in capsys.readouterr().out


def test_default_structure_validation_guards_exported_coverage(monkeypatch, capsys):
    """Dropping a structure from the smoke list must fail the default run."""
    monkeypatch.setattr(
        cli, "smoke_structures", lambda: [ChainingHashMap("flow_map", capacity=8)]
    )
    failures = cli.run_structure_validation()
    printed = capsys.readouterr().out
    assert failures >= 1
    assert "not covered by the smoke run" in printed


def test_smoke_exit_code_reflects_seeded_failures(monkeypatch, capsys, quiet_nf_matrix):
    monkeypatch.setattr(cli, "smoke_structures", lambda: [DriftingMap("m", capacity=8)])
    # The guard fires too (exported structures are not covered), but the
    # seeded StructureContractError must be in the output and the exit
    # code non-zero.
    assert cli.main(["smoke"]) == 1
    printed = capsys.readouterr().out
    assert "SMOKE FAILED" in printed
    assert "hand contract promises" in printed


def test_nf_contracts_flag_a_lost_input_class(monkeypatch, capsys):
    bridge = next(spec for spec in cli.NF_MATRIX if spec.name == "bridge")
    doctored = cli.NFSpec(
        bridge.name,
        bridge.title,
        bridge.smoke_contract,
        bridge.bench_contract,
        bridge.bench_workloads,
        bridge.expected_classes | {"jumbo"},
    )
    failures = cli.run_nf_contracts([doctored])
    printed = capsys.readouterr().out
    assert failures == 1
    assert "lost input classes" in printed and "jumbo" in printed


def test_nf_contract_generation_hits_the_solver_cache(capsys):
    """The acceptance bar for the memoisation layer: nonzero hit counters
    while the smoke contracts generate, and the summary line in the log."""
    before = replace(Solver.TOTALS)
    bridge = next(spec for spec in cli.NF_MATRIX if spec.name == "bridge")
    assert cli.run_nf_contracts([bridge]) == 0
    printed = capsys.readouterr().out
    assert "solver cache across contract generation" in printed
    assert Solver.TOTALS.cache_hits - before.cache_hits > 0
    assert Solver.TOTALS.simplify_reused - before.simplify_reused > 0


def test_bench_exits_nonzero_when_a_worst_case_is_missed(monkeypatch, capsys, tmp_path):
    """Seed an unreachable adversarial bound: the bench must go red."""
    bridge = next(spec for spec in cli.NF_MATRIX if spec.name == "bridge")

    def sabotaged_workloads(seed, packets):
        workload = bridge_adversarial(capacity=cli.BENCH_CAPACITY, timeout=cli.BENCH_TIMEOUT)
        impossible = {pcv: bound + 1 for pcv, bound in workload.expected_worst.items()}
        from repro.nf.workloads import Workload

        return [
            Workload(workload.name, workload.harness, workload.stimuli, impossible)
        ]

    doctored = cli.NFSpec(
        bridge.name,
        bridge.title,
        bridge.smoke_contract,
        bridge.bench_contract,
        sabotaged_workloads,
        frozenset(),
    )
    monkeypatch.setattr(cli, "NF_MATRIX", (doctored,))
    monkeypatch.setattr(cli, "GRAPH_MATRIX", ())  # keep the red-path run fast
    output = tmp_path / "BENCH_eval.json"
    assert cli.main(["bench", "--output", str(output)]) == 1
    printed = capsys.readouterr().out
    assert "MISSED" in printed and "BENCH FAILED" in printed
    report = json.loads(output.read_text())
    assert report["ok"] is False


def test_docs_consistency_script_passes():
    """`tools/check_docs.py` (the CI docs-check job) stays green: every
    registered NF/structure documented, README quickstart runs verbatim."""
    repo = Path(cli.__file__).resolve().parents[2]
    result = subprocess.run(
        [sys.executable, str(repo / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "DOCS CHECK OK" in result.stdout


def test_bench_writes_a_well_formed_report(monkeypatch, tmp_path):
    """The artifact schema CI archives: every NF, workload, model present."""
    output = tmp_path / "BENCH_eval.json"
    assert cli.main(["bench", "--output", str(output), "--packets", "60"]) == 0
    report = json.loads(output.read_text())
    assert report["schema"] == "repro-bench/1"
    assert report["ok"] is True
    assert report["packets_per_workload"] == 60
    assert set(report["nfs"]) == {spec.name for spec in cli.NF_MATRIX}
    assert set(report["hw_models"]) == {"conservative", "realistic", "simulated"}
    for spec in cli.NF_MATRIX:
        record = report["nfs"][spec.name]
        assert record["failures"] == 0
        assert set(record["workloads"]) == {
            "uniform",
            "zipf",
            "adversarial",
            "scan_sweep",
            "header_flood",
        }
        assert spec.expected_classes <= set(record["classes_seen"])
        for workload in record["workloads"].values():
            assert workload["ok"] is True
            assert {
                "packets",
                "classes",
                "max_pcvs",
                "cycle_envelopes",
                "wall_clock_s",
                "packets_per_sec",
            } <= set(workload)
        worst = record["workloads"]["adversarial"].get("worst_case", {})
        if spec.name != "monitor":  # the sketch has no PCVs to pin
            assert worst, spec.name
        assert all(check["hit"] for check in worst.values())
    assert set(report["graphs"]) == {spec.name for spec in cli.GRAPH_MATRIX}
    for record in report["graphs"].values():
        assert record["failures"] == 0
        for workload in record["workloads"].values():
            assert workload["ok"] is True
            assert {
                "packets",
                "hop_executions",
                "routes",
                "hops",
                "max_pcvs",
                "churn",
                "wall_clock_s",
                "packets_per_sec",
            } <= set(workload)
    assert report["timing"]["packets_per_sec"] > 0


# --------------------------------------------------------------------------- #
# contract-diff / ct-audit: the regression gates' exit codes
# --------------------------------------------------------------------------- #
def test_contract_diff_update_then_clean_diff(tmp_path, capsys):
    """`--update` writes the goldens (exit 0); a re-diff is then clean."""
    golden = tmp_path / "golden"
    assert cli.main(["contract-diff", "--update", "--golden", str(golden), "--nf", "bridge"]) == 0
    assert (golden / "bridge.json").exists()
    assert cli.main(["contract-diff", "--golden", str(golden), "--nf", "bridge"]) == 0
    assert "CONTRACT DIFF OK" in capsys.readouterr().out


def test_contract_diff_names_the_drifted_class_and_exits_nonzero(tmp_path, capsys):
    golden = tmp_path / "golden"
    assert cli.main(["contract-diff", "--update", "--golden", str(golden), "--nf", "nat"]) == 0
    path = golden / "nat.json"
    payload = json.loads(path.read_text())
    entry = next(e for e in payload["entries"] if e["class"] == "external_miss")
    constant = next(t for t in entry["exprs"]["instructions"] if t[0] == [])
    constant[1] = str(int(constant[1]) - 5)  # golden promises less: tree worsened
    path.write_text(json.dumps(payload))
    capsys.readouterr()
    assert cli.main(["contract-diff", "--golden", str(golden), "--nf", "nat"]) == 1
    printed = capsys.readouterr().out
    assert "external_miss" in printed
    assert "WORSENED" in printed
    assert "cycles@conservative" in printed and "cycles@realistic" in printed
    assert "cycles@simulated" in printed
    assert "CONTRACT DIFF FAILED" in printed


def test_contract_diff_missing_golden_exits_2(tmp_path, capsys):
    assert cli.main(["contract-diff", "--golden", str(tmp_path), "--nf", "bridge"]) == 2
    assert "no golden contract" in capsys.readouterr().out


def test_contract_diff_unknown_target_exits_2(capsys):
    assert cli.main(["contract-diff", "--nf", "dpi"]) == 2
    assert "unknown contract-diff targets" in capsys.readouterr().out


def test_ct_audit_clean_tree_exits_0(capsys):
    assert cli.main(["ct-audit", "--nf", "nat"]) == 0
    printed = capsys.readouterr().out
    assert "CT AUDIT OK" in printed
    # The acceptance bar: the NAT hit/miss delta is reported per model.
    assert "external_hit vs external_miss @conservative: LEAK" in printed
    assert "external_hit vs external_miss @realistic: LEAK" in printed


def test_ct_audit_strict_fails_on_declared_leaks(capsys):
    assert cli.main(["ct-audit", "--nf", "nat", "--strict"]) == 1
    printed = capsys.readouterr().out
    assert "FAIL (--strict)" in printed and "CT AUDIT FAILED" in printed


def test_ct_audit_flags_an_expectation_mismatch(monkeypatch, capsys):
    from repro import audit

    doctored = dict(audit.SECRET_CLASS_SETS)
    doctored["bridge"] = (
        audit.SecretClassSet(
            "mac-table membership", ("hit", "miss"), "secret", "constant_time"
        ),
    )
    monkeypatch.setattr(cli, "SECRET_CLASS_SETS", doctored)
    assert cli.main(["ct-audit", "--nf", "bridge"]) == 1
    printed = capsys.readouterr().out
    assert "** UNEXPECTED **" in printed
    assert "is leak but declared constant_time" in printed


def test_ct_audit_unknown_nf_exits_2(capsys):
    assert cli.main(["ct-audit", "--nf", "dpi"]) == 2
    assert "unknown NFs" in capsys.readouterr().out
