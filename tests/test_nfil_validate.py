"""Dedicated coverage for the NFIL verifier (`repro.nfil.validate`).

The bridge/router tests exercise the verifier only on well-formed modules;
these tests hit every structural invariant it enforces, in both the
accepting and the rejecting direction.
"""

import pytest

from repro.nfil.instructions import Br, Call, Cmp, ConstInstr, Imm, Jmp, Reg, Ret
from repro.nfil.program import Function, Module, Param
from repro.nfil.validate import ValidationError, validate_function, validate_module


def _fn(name="f", params=(), entry="entry"):
    return Function(name=name, params=[Param(p) for p in params], entry=entry)


def _ret0():
    return Ret(Imm(0))


# --------------------------------------------------------------------------- #
# Structural checks
# --------------------------------------------------------------------------- #
def test_function_without_blocks_is_rejected():
    with pytest.raises(ValidationError, match="no blocks"):
        validate_function(_fn())


def test_missing_entry_block_is_rejected():
    fn = _fn(entry="start")
    fn.block("other").append(_ret0())
    with pytest.raises(ValidationError, match="entry block"):
        validate_function(fn)


def test_empty_block_is_rejected():
    fn = _fn()
    fn.block("entry")
    with pytest.raises(ValidationError, match="empty basic block"):
        validate_function(fn)


def test_block_must_end_with_terminator():
    fn = _fn()
    fn.block("entry").append(ConstInstr("x", 1))
    with pytest.raises(ValidationError, match="does not end with a terminator"):
        validate_function(fn)


def test_terminator_in_the_middle_is_rejected():
    fn = _fn()
    block = fn.block("entry")
    block.append(_ret0())
    block.append(_ret0())
    with pytest.raises(ValidationError, match="not at block end"):
        validate_function(fn)


def test_branch_to_unknown_block_is_rejected():
    fn = _fn()
    block = fn.block("entry")
    block.append(ConstInstr("c", 1))
    block.append(Br(Imm(1), "nowhere", "entry"))
    with pytest.raises(ValidationError, match="unknown block 'nowhere'"):
        validate_function(fn)


def test_mislabelled_block_registration_is_rejected():
    fn = _fn()
    fn.block("entry").append(_ret0())
    fn.blocks["alias"] = fn.blocks["entry"]
    with pytest.raises(ValidationError, match="registered as 'alias'"):
        validate_function(fn)


# --------------------------------------------------------------------------- #
# Must-defined dataflow
# --------------------------------------------------------------------------- #
def test_use_before_definition_is_rejected():
    fn = _fn()
    fn.block("entry").append(Jmp("use"))
    fn.block("use").append(Ret(Reg("x")))
    with pytest.raises(ValidationError, match="used before definition"):
        validate_function(fn)


def test_definition_on_only_one_branch_is_rejected():
    fn = _fn(params=("p",))
    entry = fn.block("entry")
    entry.append(Br(Reg("p"), "define", "skip"))
    fn.block("define").append(ConstInstr("x", 1))
    fn.blocks["define"].append(Jmp("join"))
    fn.block("skip").append(Jmp("join"))
    fn.block("join").append(Ret(Reg("x")))
    with pytest.raises(ValidationError, match="used before definition"):
        validate_function(fn)


def test_definition_on_both_branches_is_accepted():
    fn = _fn(params=("p",))
    fn.block("entry").append(Br(Reg("p"), "a", "b"))
    fn.block("a").append(ConstInstr("x", 1))
    fn.blocks["a"].append(Jmp("join"))
    fn.block("b").append(ConstInstr("x", 2))
    fn.blocks["b"].append(Jmp("join"))
    fn.block("join").append(Ret(Reg("x")))
    assert validate_function(fn) is fn


def test_unreachable_block_is_not_dataflow_checked():
    fn = _fn()
    fn.block("entry").append(_ret0())
    # Dead code using an undefined register: structurally checked, but the
    # must-defined analysis never reaches it.
    fn.block("dead").append(Ret(Reg("ghost")))
    assert validate_function(fn) is fn


def test_loop_keeps_entry_definitions():
    fn = _fn(params=("n",))
    entry = fn.block("entry")
    entry.append(ConstInstr("i", 0))
    entry.append(Jmp("head"))
    head = fn.block("head")
    head.append(Cmp("ult", "more", Reg("i"), Reg("n")))
    head.append(Br(Reg("more"), "head", "done"))
    fn.block("done").append(Ret(Reg("i")))
    assert validate_function(fn) is fn


# --------------------------------------------------------------------------- #
# Call checks (module level)
# --------------------------------------------------------------------------- #
def _module_with(fn):
    module = Module("m")
    module.add_function(fn)
    return module


def test_call_to_unknown_symbol_is_rejected():
    fn = _fn()
    block = fn.block("entry")
    block.append(Call(None, "mystery", ()))
    block.append(_ret0())
    with pytest.raises(ValidationError, match="unknown symbol 'mystery'"):
        validate_module(_module_with(fn))


def test_extern_arity_mismatch_is_rejected():
    fn = _fn()
    block = fn.block("entry")
    block.append(Call(None, "ext", (Imm(1), Imm(2))))
    block.append(_ret0())
    module = _module_with(fn)
    module.declare_extern("ext", 1, returns_value=False)
    with pytest.raises(ValidationError, match="expects 1 args, got 2"):
        validate_module(module)


def test_void_extern_with_destination_is_rejected():
    fn = _fn()
    block = fn.block("entry")
    block.append(Call("dst", "ext", (Imm(1),)))
    block.append(_ret0())
    module = _module_with(fn)
    module.declare_extern("ext", 1, returns_value=False)
    with pytest.raises(ValidationError, match="void extern"):
        validate_module(module)


def test_internal_call_arity_mismatch_is_rejected():
    callee = _fn(name="callee", params=("a", "b"))
    callee.block("entry").append(_ret0())
    caller = _fn(name="caller")
    block = caller.block("entry")
    block.append(Call("r", "callee", (Imm(1),)))
    block.append(_ret0())
    module = Module("m")
    module.add_function(callee)
    module.add_function(caller)
    with pytest.raises(ValidationError, match="expects 2 args, got 1"):
        validate_module(module)


def test_valid_module_roundtrips():
    callee = _fn(name="callee", params=("a",))
    callee.block("entry").append(_ret0())
    caller = _fn(name="caller")
    block = caller.block("entry")
    block.append(Call("r", "callee", (Imm(1),)))
    block.append(Call(None, "ext", (Imm(2),)))
    block.append(_ret0())
    module = Module("m")
    module.declare_extern("ext", 1, returns_value=False)
    module.add_function(callee)
    module.add_function(caller)
    assert validate_module(module) is module
