"""Constant-time audit: leaks refuted by witness, proofs by identity.

The acceptance story from the issue: the NAT's ``external_hit`` vs
``external_miss`` pair must be reported as a leak with its cycle delta
under *both* hardware models, while the bridge's hit/hairpin pair and the
router's routed/no_route pair stay provably constant-time.
"""

from fractions import Fraction

import pytest

from repro import cli
from repro.audit import SECRET_CLASS_SETS, SecretClassSet, audit_contract
from repro.audit.ct import CONSTANT_TIME, LEAK


def _audit(nf_name, gate_targets, secret_sets=None):
    contract, structures = gate_targets[nf_name]
    return audit_contract(
        contract,
        secret_sets if secret_sets is not None else SECRET_CLASS_SETS[nf_name],
        models=cli._bench_models(),
        structures=structures,
    )


def test_nat_external_scan_leaks_under_both_models(gate_targets):
    findings = _audit("nat", gate_targets)
    [finding] = [f for f in findings if f.secret_set.name == "external port scan"]
    assert finding.leaks and finding.verdict == LEAK
    assert finding.matches_expectation  # the channel is declared, not silent
    by_model = {v.model: v for v in finding.verdicts}
    assert set(by_model) == {"conservative", "realistic", "simulated"}
    for verdict in by_model.values():
        assert not verdict.indistinguishable
        assert {verdict.class_a, verdict.class_b} == {"external_hit", "external_miss"}
        assert verdict.max_delta > 0
        assert verdict.witness is not None
        # The symbolic delta evaluated at the witness attains the reported max.
        assert abs(verdict.delta.evaluate(dict(verdict.witness))) == verdict.max_delta
    # The miss path walks both flow tables the hit path never touches, so
    # the delta grows with the chain-traversal PCVs of both maps.
    conservative = by_model["conservative"]
    assert {"fwd.t", "rev.t"} <= conservative.delta.variables()
    assert conservative.max_delta >= Fraction(924)


def test_bridge_forwarding_decision_is_proven_constant_time(gate_targets):
    findings = _audit("bridge", gate_targets)
    [finding] = [f for f in findings if f.secret_set.name == "forwarding decision"]
    assert not finding.leaks and finding.verdict == CONSTANT_TIME
    assert finding.matches_expectation
    for verdict in finding.verdicts:
        assert verdict.indistinguishable
        assert not verdict.delta  # the zero polynomial, not "small"
        assert verdict.max_delta == 0 and verdict.witness is None


def test_router_membership_is_constant_time_at_equal_depth(gate_targets):
    [finding] = _audit("router", gate_targets)
    assert finding.verdict == CONSTANT_TIME and finding.matches_expectation
    assert all(v.indistinguishable for v in finding.verdicts)


def test_firewall_leaks_are_declared_and_its_default_deny_is_proven(gate_targets):
    """The firewall knowingly leaks its policy and tracking state on the
    LAN side, while the WAN-facing default-deny is proven constant-time."""
    findings = _audit("firewall", gate_targets)
    by_name = {f.secret_set.name: f for f in findings}
    # The denied path skips the table work the admission path does.
    egress = by_name["egress rule verdict"]
    assert egress.verdict == LEAK and egress.matches_expectation
    # Admission allocates a slot the refresh path never touches.
    tracking = by_name["connection tracking"]
    assert tracking.verdict == LEAK and tracking.matches_expectation
    for verdict in tracking.verdicts:
        assert not verdict.indistinguishable
        assert verdict.max_delta > 0
    # Both inbound paths do one read-only lookup and return a constant: a
    # WAN prober cannot time-scan the connection table.
    probe = by_name["inbound probe response"]
    assert probe.verdict == CONSTANT_TIME and probe.matches_expectation
    for verdict in probe.verdicts:
        assert verdict.indistinguishable
        assert not verdict.delta


def test_monitor_heavy_hitter_proof_is_a_zero_polynomial(gate_targets):
    """The sketch satellite's acceptance bar: the hot/cold cycle delta is
    the literal zero polynomial under every model — a proof over all PCV
    valuations, not a sampled near-zero."""
    [finding] = _audit("monitor", gate_targets)
    assert finding.secret_set.name == "heavy-hitter status"
    assert finding.verdict == CONSTANT_TIME and finding.matches_expectation
    assert {v.model for v in finding.verdicts} == {"conservative", "realistic", "simulated"}
    for verdict in finding.verdicts:
        assert verdict.indistinguishable
        assert not verdict.delta
        assert verdict.delta.variables() == set()
        assert verdict.max_delta == 0 and verdict.witness is None


def test_every_declared_expectation_matches_the_computed_verdict(gate_targets):
    """The full registry agrees with the code — what `ct-audit` gates on."""
    for nf_name, secret_sets in SECRET_CLASS_SETS.items():
        for finding in _audit(nf_name, gate_targets, secret_sets):
            assert finding.matches_expectation, (
                f"{nf_name}/{finding.secret_set.name}: computed "
                f"{finding.verdict}, declared {finding.secret_set.expectation}"
            )


def test_expectation_mismatch_is_detectable(gate_targets):
    """Declaring the NAT scan constant-time must be flagged, not absorbed."""
    wrong = SecretClassSet(
        "external port scan",
        ("external_hit", "external_miss"),
        "pretend this is safe",
        CONSTANT_TIME,
    )
    [finding] = _audit("nat", gate_targets, [wrong])
    assert finding.leaks
    assert not finding.matches_expectation


def test_unknown_class_raises(gate_targets):
    bogus = SecretClassSet("bogus", ("external_hit", "jumbo"), "s", LEAK)
    with pytest.raises(KeyError):
        _audit("nat", gate_targets, [bogus])


def test_secret_class_set_validation():
    with pytest.raises(ValueError, match="at least two classes"):
        SecretClassSet("one", ("only",), "s", LEAK)
    with pytest.raises(ValueError, match="expectation must be"):
        SecretClassSet("bad", ("a", "b"), "s", "maybe")


def test_registry_covers_every_nf():
    assert set(SECRET_CLASS_SETS) == {spec.name for spec in cli.NF_MATRIX}


def test_render_names_the_leak_in_human_terms(gate_targets):
    contract, _ = gate_targets["nat"]
    findings = _audit("nat", gate_targets)
    [finding] = [f for f in findings if f.secret_set.name == "external port scan"]
    text = "\n".join(finding.render(contract.registry))
    assert "LEAK" in text and "external_hit vs external_miss" in text
    assert "chain links inspected" in text  # PCVs resolved, not symbol soup
