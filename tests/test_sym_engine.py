"""Tests for the symbolic engine (repro.sym.engine / state / paths)."""

import pytest

from repro.nfil import FunctionBuilder, Interpreter, Module
from repro.sym import expr as E
from repro.sym.engine import (
    ExplorationLimit,
    ModelOutcome,
    SymbolicEngine,
    SymbolicModel,
)
from repro.sym.expr import Const, Sym
from repro.sym.state import SymbolicAddressError, SymbolicMemory


def _max_module():
    b = FunctionBuilder("umax", params=("a", "b"))
    cond = b.ult(b.param("a"), b.param("b"))
    b.br(cond, "lt", "ge")
    b.block("lt")
    b.ret(b.param("b"))
    b.block("ge")
    b.ret(b.param("a"))
    module = Module("t")
    module.add_function(b.build())
    return module


def test_explores_both_sides_of_a_branch():
    engine = SymbolicEngine(_max_module())
    paths = engine.explore("umax", [Sym("a", 64), Sym("b", 64)])
    assert len(paths) == 2
    assert {path.feasibility for path in paths} == {"sat"}
    conditions = {E.render(path.constraints[0]) for path in paths}
    assert conditions == {"(a ult b)", "(a uge b)"}
    # Exact stateless counts: cmp, br, ret on both sides.
    assert all(path.instructions == 3 for path in paths)


def test_path_models_replay_concretely_to_same_branch():
    """Differential check: replaying each path's solver model through the
    concrete interpreter reproduces the path's return expression."""
    module = _max_module()
    engine = SymbolicEngine(module)
    interp = Interpreter(module)
    paths = engine.explore("umax", [Sym("a", 64), Sym("b", 64)])
    for path in paths:
        inputs = path.concrete_inputs(defaults={"a": 0, "b": 0})
        result, trace = interp.run("umax", [inputs["a"], inputs["b"]])
        assert result == E.evaluate(path.returned, inputs)
        assert trace.instructions == path.instructions


def test_concrete_branches_do_not_fork():
    b = FunctionBuilder("f", params=("x",))
    cond = b.ult(5, 10)  # constant condition
    b.br(cond, "yes", "no")
    b.block("yes")
    b.ret(b.param("x"))
    b.block("no")
    b.ret(0)
    module = Module("m")
    module.add_function(b.build())
    paths = SymbolicEngine(module).explore("f", [Sym("x", 64)])
    assert len(paths) == 1
    assert paths[0].constraints == ()


def test_infeasible_side_is_pruned():
    # With the initial constraint x < 5, the branch x >= 10 cannot be taken.
    b = FunctionBuilder("f", params=("x",))
    cond = b.uge(b.param("x"), 10)
    b.br(cond, "big", "small")
    b.block("big")
    b.ret(1)
    b.block("small")
    b.ret(0)
    module = Module("m")
    module.add_function(b.build())
    x = Sym("x", 64)
    paths = SymbolicEngine(module).explore("f", [x], constraints=[E.ult(x, Const(5, 64))])
    assert len(paths) == 1
    assert E.evaluate(paths[0].returned) == 0


def test_symbolic_memory_round_trip_through_load():
    b = FunctionBuilder("f", params=("addr",))
    b.ret(b.load(b.param("addr"), size=2))
    module = Module("m")
    module.add_function(b.build())
    memory = SymbolicMemory()
    memory.write_symbolic(0x100, 2, "pkt")
    paths = SymbolicEngine(module).explore("f", [0x100], memory=memory)
    assert len(paths) == 1
    value = E.evaluate(paths[0].returned, {"pkt[0]": 0x34, "pkt[1]": 0x12})
    assert value == 0x1234
    assert paths[0].memory_accesses == 1


def test_symbolic_address_raises():
    b = FunctionBuilder("f", params=("addr",))
    b.ret(b.load(b.param("addr"), size=1))
    module = Module("m")
    module.add_function(b.build())
    with pytest.raises(SymbolicAddressError):
        SymbolicEngine(module).explore("f", [Sym("addr", 64)])


def test_extern_model_default_havoc_and_records():
    module = Module("m")
    module.declare_extern("lookup", 1, returns_value=True, structure="map", method="get")
    b = FunctionBuilder("f", params=("k",))
    value = b.call("lookup", b.param("k"))
    b.ret(value)
    module.add_function(b.build())
    paths = SymbolicEngine(module).explore("f", [Sym("k", 64)])
    assert len(paths) == 1
    (record,) = paths[0].calls
    assert record.name == "lookup"
    assert record.result == Sym("lookup#0", 64)
    assert record.result_name == "lookup#0"
    assert record.structure == "map"
    assert paths[0].returned == Sym("lookup#0", 64)


def test_custom_model_constraints_shape_exploration():
    """A model that pins the extern output to a constant kills one branch."""

    class PinnedModel(SymbolicModel):
        def apply(self, decl, args, state, index):
            value = self.fresh(decl, index)
            return ModelOutcome(value=value, constraints=(E.eq(value, Const(7, 64)),))

    module = Module("m")
    module.declare_extern("lookup", 0, returns_value=True)
    b = FunctionBuilder("f")
    value = b.call("lookup")
    cond = b.eq(value, 7)
    b.br(cond, "yes", "no")
    b.block("yes")
    b.ret(1)
    b.block("no")
    b.ret(0)
    module.add_function(b.build())
    paths = SymbolicEngine(module, model=PinnedModel()).explore("f", [])
    assert len(paths) == 1
    assert E.evaluate(paths[0].returned) == 1


def test_internal_calls_inline_symbolically():
    module = Module("m")
    inner = FunctionBuilder("twice", params=("x",))
    inner.ret(inner.add(inner.param("x"), inner.param("x")))
    module.add_function(inner.build())
    outer = FunctionBuilder("f", params=("x",))
    doubled = outer.call("twice", outer.param("x"))
    outer.ret(doubled)
    module.add_function(outer.build())
    paths = SymbolicEngine(module).explore("f", [Sym("x", 64)])
    assert len(paths) == 1
    assert E.evaluate(paths[0].returned, {"x": 21}) == 42
    assert paths[0].instructions == 4  # call + (add, ret) + ret


def test_max_paths_budget_enforced():
    # 5 independent symbolic branches => 32 paths; budget of 8 must trip.
    b = FunctionBuilder("f", params=tuple(f"x{i}" for i in range(5)))
    total = b.const(0, name="acc0")
    for i in range(5):
        cond = b.ult(b.param(f"x{i}"), 10)
        b.br(cond, f"then{i}", f"else{i}")
        b.block(f"then{i}")
        b.jmp(f"join{i}")
        b.block(f"else{i}")
        b.jmp(f"join{i}")
        b.block(f"join{i}")
    b.ret(total)
    module = Module("m")
    module.add_function(b.build(validate=False))
    engine = SymbolicEngine(module, max_paths=8)
    with pytest.raises(ExplorationLimit):
        engine.explore("f", [Sym(f"x{i}", 64) for i in range(5)])
