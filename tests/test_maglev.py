"""Tests for the Maglev-style consistent-hash table.

The interesting property is the control-plane PCV ``f``: the fill-
iteration bound ``N·(M−N) + N·(N+1)/2`` is proven in the module docstring
and must be (a) never exceeded by any backend set and (b) attained
*exactly* by backends with identical permutation parameters — that
tightness is what lets the LB adversarial stream pin the bound.
"""

import random

import pytest

from repro.core import Metric
from repro.nf.workloads import colliding_backends
from repro.nfil import ExecutionTrace, Interpreter
from repro.structures import (
    NOT_FOUND,
    MaglevTable,
    max_fill_iterations,
    validate_structure_contract,
)
from repro.structures.validation import operation_module

TABLE_SIZE = 13
MAX_BACKENDS = 4


def table(**kwargs):
    defaults = dict(table_size=TABLE_SIZE, max_backends=MAX_BACKENDS)
    defaults.update(kwargs)
    return MaglevTable("tbl", **defaults)


def colliding_ids(count, *, table_size=TABLE_SIZE):
    ids = colliding_backends(count, table_size=table_size)
    probe = MaglevTable("probe", table_size=table_size, max_backends=count)
    params = {probe.permutation_params(b) for b in ids}
    assert len(params) == 1, "colliding_backends must return one permutation class"
    return ids


# --------------------------------------------------------------------------- #
# Construction and geometry validation
# --------------------------------------------------------------------------- #
def test_geometry_is_validated():
    with pytest.raises(ValueError, match="prime"):
        MaglevTable("t", table_size=12, max_backends=4)
    with pytest.raises(ValueError, match="max_backends"):
        MaglevTable("t", table_size=3, max_backends=5)
    with pytest.raises(ValueError, match="positive"):
        MaglevTable("t", table_size=13, max_backends=0)


def test_max_fill_iterations_formula():
    assert max_fill_iterations(0, 13) == 13  # clearing pass
    assert max_fill_iterations(1, 13) == 13  # one backend probes every slot
    assert max_fill_iterations(2, 13) == 25
    assert max_fill_iterations(4, 13) == 46
    assert max_fill_iterations(13, 13) == 13 * 14 // 2
    with pytest.raises(ValueError):
        max_fill_iterations(14, 13)


def test_permutation_covers_every_slot():
    t = table()
    for backend in (1, 77, 999, 65535):
        offset, skip = t.permutation_params(backend)
        slots = {(offset + i * skip) % TABLE_SIZE for i in range(TABLE_SIZE)}
        assert slots == set(range(TABLE_SIZE))


# --------------------------------------------------------------------------- #
# Concrete semantics: fill, balance, disruption, determinism
# --------------------------------------------------------------------------- #
def test_fill_populates_every_slot_and_every_backend():
    t = table()
    for backend in (11, 22, 33, 44):
        status, probes = t.add_backend(backend)
        assert status == "added" and probes > 0
    snapshot = t.table()
    assert NOT_FOUND not in snapshot
    assert set(snapshot) == {11, 22, 33, 44}  # M >= N: everyone owns slots


def test_add_semantics():
    t = table()
    assert t.add_backend(7)[0] == "added"
    assert t.add_backend(7) == ("present", 0)
    for backend in (8, 9, 10):
        t.add_backend(backend)
    assert t.add_backend(11) == ("dropped", 0)  # at max_backends
    with pytest.raises(ValueError):
        t.add_backend(1 << 16)


def test_remove_and_empty_table():
    t = table()
    assert t.remove_backend(5) == (False, 0)
    t.add_backend(5)
    removed, probes = t.remove_backend(5)
    assert removed and probes == TABLE_SIZE  # empty repop = clearing pass
    assert t.select(12345) is None
    assert t.table() == (NOT_FOUND,) * TABLE_SIZE


def test_remove_readd_is_deterministic():
    t = table()
    for backend in (11, 22, 33, 44):
        t.add_backend(backend)
    before = t.table()
    t.remove_backend(22)
    t.add_backend(22)
    assert t.table() == before


def test_removal_is_minimally_disruptive():
    t = table()
    for backend in (11, 22, 33, 44):
        t.add_backend(backend)
    before = t.table()
    t.remove_backend(22)
    after = t.table()
    # Every slot of the removed backend is reassigned to a survivor ...
    assert all(after[i] != 22 for i in range(TABLE_SIZE))
    assert all(after[i] in {11, 33, 44} for i in range(TABLE_SIZE))
    # ... and flows on surviving backends mostly stay put (Maglev's
    # minimal-disruption property; exact count for this deterministic set).
    moved = sum(1 for b, a in zip(before, after) if b != 22 and b != a)
    assert moved <= 2


def test_select_is_consistent_and_affine_to_the_table():
    t = table()
    for backend in (11, 22, 33, 44):
        t.add_backend(backend)
    flows = [random.Random(3).randrange(1 << 48) for _ in range(64)]
    chosen = {flow: t.select(flow) for flow in flows}
    assert set(chosen.values()) <= {11, 22, 33, 44}
    assert all(t.select(flow) == backend for flow, backend in chosen.items())


# --------------------------------------------------------------------------- #
# The f bound: never exceeded, exactly attained
# --------------------------------------------------------------------------- #
def test_fill_iterations_never_exceed_the_per_n_bound():
    rng = random.Random(2019)
    for _ in range(200):
        t = MaglevTable("t", table_size=13, max_backends=8)
        for backend in rng.sample(range(1, 1 << 16), rng.randrange(1, 9)):
            status, probes = t.add_backend(backend)
            assert status == "added"
            assert probes <= max_fill_iterations(t.backend_count(), 13)
        victim = rng.choice(t.backends())
        removed, probes = t.remove_backend(victim)
        assert removed
        assert probes <= max_fill_iterations(t.backend_count(), 13)


def test_identical_permutations_attain_the_bound_exactly():
    ids = colliding_ids(MAX_BACKENDS)
    t = table()
    for n, backend in enumerate(ids, start=1):
        status, probes = t.add_backend(backend)
        assert status == "added"
        assert probes == max_fill_iterations(n, TABLE_SIZE), n
    # The declared PCV bound is the N = max_backends case.
    (pcv,) = t.registry()
    assert pcv.name == "tbl.f"
    assert pcv.max_value == max_fill_iterations(MAX_BACKENDS, TABLE_SIZE) == 46


# --------------------------------------------------------------------------- #
# Contract surface: hand contract, Bolt agreement, traced replay
# --------------------------------------------------------------------------- #
def test_bolt_agrees_with_the_hand_contract():
    checks = validate_structure_contract(table())
    assert {check.method for check in checks} == {"lookup", "active", "add", "remove"}
    for check in checks:
        assert check.driver_overhead[Metric.INSTRUCTIONS] >= 0


def test_contract_bounds_100_traced_operations():
    t = table()
    contract = t.operation_contract()
    trace = ExecutionTrace()
    interps = {}
    for op in t.ops():
        module, function = operation_module(t, op.method)
        interps[op.method] = (Interpreter(module, handler=t), function)

    def call(method, *args):
        interp, function = interps[method]
        result, _ = interp.run(function, list(args), trace=trace)
        return result

    rng = random.Random(7)
    active = []
    for _ in range(150):
        roll = rng.random()
        if roll < 0.25 and len(active) < MAX_BACKENDS:
            backend = rng.randrange(1, 1 << 16)
            call("add", backend)
            if t.is_active(backend):
                active.append(backend)
        elif roll < 0.4 and active:
            call("remove", active.pop(rng.randrange(len(active))))
        elif roll < 0.5:
            call("active", rng.randrange(1, 1 << 16))
        else:
            result = call("lookup", rng.randrange(1 << 48))
            if active:
                assert result in set(active)
            else:
                assert result == NOT_FOUND
    assert len(trace.extern_calls) >= 100
    strict = 0
    for recorded in trace.extern_calls:
        method = recorded.name[len(t.name) + 1 :]
        entry = contract.entry_for(method)
        bindings = {name: 0 for name in contract.registry.names()}
        bindings.update(recorded.pcvs)
        predicted_instr = entry.evaluate(Metric.INSTRUCTIONS, bindings)
        predicted_mem = entry.evaluate(Metric.MEMORY_ACCESSES, bindings)
        assert predicted_instr >= recorded.instructions
        assert predicted_mem >= recorded.memory_accesses
        if predicted_instr > recorded.instructions:
            strict += 1
    # Fast paths (no-op add/remove, empty lookup) make the bound strict
    # somewhere, so the check is not a tautology.
    assert strict > 0


def test_repopulation_cost_lands_in_traces_as_qualified_pcv():
    t = table()
    trace = ExecutionTrace()
    module, function = operation_module(t, "add")
    interp = Interpreter(module, handler=t)
    for backend in colliding_ids(MAX_BACKENDS):
        interp.run(function, [backend], trace=trace)
    observed = [call.pcvs["tbl.f"] for call in trace.extern_calls]
    assert observed == [max_fill_iterations(n, TABLE_SIZE) for n in range(1, MAX_BACKENDS + 1)]
    assert trace.pcv_bindings()["tbl.f"] == 46
