"""Tests for the NFIL layer: builder, validator, interpreter, tracer."""

import pytest

from repro.nfil import (
    ExternResult,
    FunctionBuilder,
    Interpreter,
    Memory,
    Module,
    StepLimitExceeded,
    ValidationError,
    validate_function,
    validate_module,
)
from repro.nfil.builder import BuilderError
from repro.nfil.instructions import BinOp, Reg
from repro.nfil.interpreter import ExternHandler, InterpreterError


def _max_module():
    b = FunctionBuilder("umax", params=("a", "b"))
    cond = b.ult(b.param("a"), b.param("b"))
    b.br(cond, "lt", "ge")
    b.block("lt")
    b.ret(b.param("b"))
    b.block("ge")
    b.ret(b.param("a"))
    module = Module("t")
    module.add_function(b.build())
    return module


def test_builder_produces_valid_function():
    module = _max_module()
    validate_module(module)
    assert module.get_function("umax").instruction_count() == 4


def test_builder_rejects_append_after_terminator():
    b = FunctionBuilder("f")
    b.ret(0)
    with pytest.raises(BuilderError):
        b.const(1)


def test_validator_rejects_missing_terminator():
    b = FunctionBuilder("f")
    b.const(1)
    with pytest.raises(ValidationError):
        b.build()


def test_validator_rejects_use_before_def_across_branches():
    # %v is defined on only one side of a diamond; the join uses it.
    b = FunctionBuilder("f", params=("c",))
    b.br(b.param("c"), "yes", "no")
    b.block("yes")
    b.const(1, name="v")
    b.jmp("join")
    b.block("no")
    b.jmp("join")
    b.block("join")
    b.ret(b.binop("add", b.param("c"), b.param("c")))
    fn = b.build(validate=False)
    fn.blocks["join"].instructions.insert(0, BinOp("add", "w", Reg("v"), Reg("c")))
    with pytest.raises(ValidationError, match="used before definition"):
        validate_function(fn)


def test_validator_rejects_unknown_branch_target():
    b = FunctionBuilder("f")
    b.jmp("nowhere")
    with pytest.raises(ValidationError, match="unknown block"):
        b.build()


def test_validator_checks_extern_arity_and_void():
    module = Module("m")
    module.declare_extern("ext_void", 1, returns_value=False)
    b = FunctionBuilder("f", params=("x",))
    b.call("ext_void", b.param("x"), b.param("x"), void=True)
    b.ret()
    module.add_function(b.build())
    with pytest.raises(ValidationError, match="expects 1 args"):
        validate_module(module)


def test_interpreter_runs_branches_and_counts():
    module = _max_module()
    interp = Interpreter(module)
    result, trace = interp.run("umax", [3, 9])
    assert result == 9
    result2, trace2 = interp.run("umax", [9, 3])
    assert result2 == 9
    # cmp, br, ret on either path
    assert trace.instructions == trace2.instructions == 3
    assert trace.category_counts["cmp"] == 1
    assert trace.category_counts["branch"] == 1


def test_interpreter_memory_and_trace_accesses():
    b = FunctionBuilder("swap16", params=("addr",))
    lo = b.load(b.param("addr"), size=1)
    hi = b.load(b.add(b.param("addr"), 1), size=1)
    b.store(b.param("addr"), hi, size=1)
    b.store(b.add(b.param("addr"), 1), lo, size=1)
    b.ret()
    module = Module("m")
    module.add_function(b.build())

    memory = Memory()
    memory.write_bytes(0x100, bytes([0xAA, 0xBB]))
    result, trace = Interpreter(module).run("swap16", [0x100], memory=memory)
    assert result is None
    assert memory.read_bytes(0x100, 2) == bytes([0xBB, 0xAA])
    assert trace.mem_reads == 2
    assert trace.mem_writes == 2
    assert trace.memory_accesses == 4
    kinds = [access.kind for access in trace.accesses]
    assert kinds == ["load", "load", "store", "store"]


def test_interpreter_little_endian_loads():
    b = FunctionBuilder("read32", params=("addr",))
    b.ret(b.load(b.param("addr"), size=4))
    module = Module("m")
    module.add_function(b.build())
    memory = Memory()
    memory.store(0x10, 0xDDCCBBAA, 4)
    result, _ = Interpreter(module).run("read32", [0x10], memory=memory)
    assert result == 0xDDCCBBAA
    assert memory.read_bytes(0x10, 4) == bytes([0xAA, 0xBB, 0xCC, 0xDD])


def test_interpreter_internal_calls():
    module = Module("m")
    inner = FunctionBuilder("twice", params=("x",))
    inner.ret(inner.add(inner.param("x"), inner.param("x")))
    module.add_function(inner.build())
    outer = FunctionBuilder("f", params=("x",))
    doubled = outer.call("twice", outer.param("x"))
    outer.ret(outer.add(doubled, 1))
    module.add_function(outer.build())
    validate_module(module)
    result, trace = Interpreter(module).run("f", [20])
    assert result == 41
    # call, (add, ret in callee), add, ret in caller
    assert trace.instructions == 5


def test_interpreter_extern_dispatch_and_costs():
    module = Module("m")
    module.declare_extern("magic", 2, returns_value=True)
    b = FunctionBuilder("f", params=("x",))
    value = b.call("magic", b.param("x"), 10)
    b.ret(value)
    module.add_function(b.build())

    handler = ExternHandler()
    handler.register(
        "magic",
        lambda args, memory: ExternResult(
            args[0] + args[1], instructions=7, memory_accesses=2, pcvs={"k": 3}
        ),
    )
    result, trace = Interpreter(module, handler=handler).run("f", [32])
    assert result == 42
    assert len(trace.extern_calls) == 1
    call = trace.extern_calls[0]
    assert call.index == 0 and call.args == (32, 10) and call.result == 42
    assert trace.total_instructions() == trace.instructions + 7
    assert trace.total_memory_accesses() == 2
    assert trace.pcv_bindings() == {"k": 3}


def test_interpreter_missing_extern_handler_raises():
    module = Module("m")
    module.declare_extern("nope", 0)
    b = FunctionBuilder("f")
    b.call("nope", void=True)
    b.ret()
    module.add_function(b.build())
    with pytest.raises(InterpreterError, match="no handler"):
        Interpreter(module).run("f", [])


def test_interpreter_step_limit():
    b = FunctionBuilder("spin")
    b.jmp("loop")
    b.block("loop")
    b.jmp("loop")
    module = Module("m")
    module.add_function(b.build())
    with pytest.raises(StepLimitExceeded):
        Interpreter(module, max_steps=100).run("spin", [])


def test_trace_pcv_binding_merge_modes():
    from repro.nfil.tracer import ExecutionTrace

    trace = ExecutionTrace()
    trace.record_extern("a", (), 1, pcvs={"t": 2})
    trace.record_extern("b", (), None, pcvs={"t": 5, "e": 1})
    assert trace.pcv_bindings() == {"t": 5, "e": 1}
    assert trace.pcv_bindings(merge="sum") == {"t": 7, "e": 1}
    with pytest.raises(ValueError):
        trace.pcv_bindings(merge="median")
