"""Dedicated coverage for contract composition (`repro.core.composition`),
including the ROADMAP's end-to-end chain check: composing the two real NF
contracts and cross-checking the chain bound against chained concrete
execution."""

import random

import pytest

from repro.core import (
    ContractEntry,
    InputClass,
    Metric,
    PCV,
    PCVRegistry,
    PerfExpr,
    PerformanceContract,
    compose_contracts,
    naive_add_contracts,
)
from repro.nf.bridge import (
    BRIDGE_FUNCTION,
    PKT_BASE,
    bridge_replay_env,
    build_bridge_module,
    generate_bridge_contract,
    make_bridge_table,
)
from repro.nf.router import (
    ROUTER_FUNCTION,
    build_router_module,
    generate_router_contract,
    ipv4_packet,
    make_routing_table,
    router_replay_env,
)
from repro.nfil import Interpreter, Memory


def _contract(name, entries, pcvs=()):
    return PerformanceContract(name, registry=PCVRegistry(pcvs), entries=entries)


def _entry(name, instr, mem=None):
    exprs = {Metric.INSTRUCTIONS: instr}
    if mem is not None:
        exprs[Metric.MEMORY_ACCESSES] = mem
    return ContractEntry(input_class=InputClass(name), exprs=exprs)


# --------------------------------------------------------------------------- #
# Unit coverage
# --------------------------------------------------------------------------- #
def test_compose_sums_expressions_per_combination():
    a = _contract(
        "a",
        [_entry("x", PerfExpr.from_terms(t=2, const=5), PerfExpr.constant(1))],
        [PCV("t", "traversals", max_value=4)],
    )
    b = _contract(
        "b",
        [
            _entry("y", PerfExpr.constant(7), PerfExpr.constant(2)),
            _entry("z", PerfExpr.from_terms(d=3), PerfExpr.constant(0)),
        ],
        [PCV("d", "depth", max_value=33)],
    )
    chain = compose_contracts("chain", [a, b])
    assert chain.class_names() == ["x & y", "x & z"]
    xy = chain.entry_for("x & y")
    assert xy.expr(Metric.INSTRUCTIONS) == PerfExpr.from_terms(t=2, const=12)
    assert xy.expr(Metric.MEMORY_ACCESSES) == PerfExpr.constant(3)
    xz = chain.entry_for("x & z")
    assert xz.expr(Metric.INSTRUCTIONS) == PerfExpr.from_terms(t=2, d=3, const=5)
    # The merged registry carries both NFs' PCVs (and hence their bounds).
    assert chain.registry.names() == ["d", "t"]
    assert chain.upper_bound(Metric.INSTRUCTIONS) == 2 * 4 + 3 * 33 + 5


def test_compose_rejects_degenerate_inputs():
    with pytest.raises(ValueError):
        compose_contracts("chain", [])
    with pytest.raises(ValueError):
        compose_contracts("chain", [_contract("empty", [])])


def test_compose_single_contract_is_identity_on_exprs():
    a = _contract("a", [_entry("x", PerfExpr.constant(9))])
    chain = compose_contracts("chain", [a])
    assert chain.class_names() == ["x"]
    assert chain.entry_for("x").expr(Metric.INSTRUCTIONS) == PerfExpr.constant(9)


def test_naive_add_takes_per_contract_envelopes():
    a = _contract(
        "a",
        [
            _entry("cheap", PerfExpr.constant(5)),
            _entry("dear", PerfExpr.from_terms(t=6, const=2)),
        ],
        [PCV("t", "traversals", max_value=8)],
    )
    b = _contract("b", [_entry("only", PerfExpr.constant(11))])
    summed = naive_add_contracts("chain", [a, b])
    assert summed.class_names() == ["worst_case"]
    entry = summed.entry_for("worst_case")
    # Envelope of a is max(5, 2) + 6t monomial-wise, plus b's 11.
    assert entry.expr(Metric.INSTRUCTIONS) == PerfExpr.from_terms(t=6, const=16)


def test_naive_add_rejects_empty_input():
    with pytest.raises(ValueError):
        naive_add_contracts("chain", [])


def test_composed_entries_classify_by_name_only():
    a = _contract("a", [_entry("x", PerfExpr.constant(1))])
    chain = compose_contracts("chain", [a])
    # No paths and no predicate: the entry covers everything.
    assert chain.entry_for("x").covers({"anything": 42})


# --------------------------------------------------------------------------- #
# End-to-end: bridge → router chain
# --------------------------------------------------------------------------- #
def test_chain_of_real_nf_contracts_bounds_chained_execution():
    """Compose the bridge and router contracts, then run both NFs back to
    back concretely: the composed entry for the observed class pair must
    bound the summed traced cost of each chained execution."""
    bridge_contract = generate_bridge_contract(capacity=16, timeout=50)
    router_contract = generate_router_contract()
    chain = compose_contracts("bridge>router", [bridge_contract, router_contract])
    assert len(chain) == len(bridge_contract) * len(router_contract)

    bridge = Interpreter(build_bridge_module(), handler=make_bridge_table(16, timeout=50))
    fib = make_routing_table()
    fib.add_route(0x0A000000, 8, 1)
    fib.add_route(0xC0A80000, 16, 2)
    router = Interpreter(build_router_module(), handler=fib)

    rng = random.Random(11)
    macs = [bytes(rng.randrange(256) for _ in range(6)) for _ in range(8)]
    ips = [0x0A000001 + rng.randrange(1 << 16) for _ in range(4)] + [
        rng.randrange(1 << 32) for _ in range(4)
    ]
    pairs_seen = set()
    for n in range(120):
        frame = rng.choice(macs) + rng.choice(macs) + b"\x08\x00" + bytes(40)
        port = rng.randrange(64)
        memory = Memory()
        memory.write_bytes(PKT_BASE, frame)
        _, bridge_trace = bridge.run(
            BRIDGE_FUNCTION, [PKT_BASE, len(frame), port, n * 2], memory=memory
        )
        packet = ipv4_packet(rng.choice(ips), ttl=rng.choice((1, 64)))
        memory = Memory()
        memory.write_bytes(PKT_BASE, packet)
        _, router_trace = router.run(ROUTER_FUNCTION, [PKT_BASE, len(packet)], memory=memory)

        bridge_entry = bridge_contract.classify(
            bridge_replay_env(frame, len(frame), port, n * 2, bridge_trace)
        )
        router_entry = router_contract.classify(
            router_replay_env(packet, len(packet), router_trace)
        )
        assert bridge_entry is not None and router_entry is not None
        pair = f"{bridge_entry.input_class.name} & {router_entry.input_class.name}"
        pairs_seen.add(pair)
        chained = chain.entry_for(pair)

        bindings = {"bridge_map.e": 0, "bridge_map.t": 0, "bridge_map.w": 0, "rt.d": 0}
        bindings.update(bridge_trace.pcv_bindings())
        bindings.update(router_trace.pcv_bindings())
        total_instr = bridge_trace.total_instructions() + router_trace.total_instructions()
        total_mem = (
            bridge_trace.total_memory_accesses() + router_trace.total_memory_accesses()
        )
        assert chained.evaluate(Metric.INSTRUCTIONS, bindings) >= total_instr
        assert chained.evaluate(Metric.MEMORY_ACCESSES, bindings) >= total_mem

    assert len(pairs_seen) >= 3  # the workload exercised several class pairs