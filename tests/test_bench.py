"""The evaluation bench: `python -m repro.cli bench` end to end."""

import json

from repro import cli


def test_bench_writes_a_green_report(tmp_path, capsys):
    output = tmp_path / "BENCH_eval.json"
    code = cli.main(["bench", "--output", str(output), "--packets", "60"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "BENCH OK" in printed
    assert "adversarial worst case" in printed

    report = json.loads(output.read_text())
    assert report["schema"] == "repro-bench/1"
    assert report["ok"] is True
    assert set(report["nfs"]) == {"bridge", "router"}
    assert set(report["hw_models"]) == {"conservative", "realistic"}
    for nf, record in report["nfs"].items():
        assert record["failures"] == 0
        assert set(record["workloads"]) == {"uniform", "zipf", "adversarial"}
        for name, workload in record["workloads"].items():
            assert workload["ok"] is True, (nf, name)
            assert workload["violations"] == []
            for summary in workload["classes"].values():
                for model, cycles in summary["max_cycles"].items():
                    assert cycles["measured"] <= cycles["predicted"], (nf, name, model)
        worst = record["workloads"]["adversarial"]["worst_case"]
        assert worst and all(check["hit"] for check in worst.values())
    # The bridge adversarial stream pins every PCV to its bound.
    bridge_worst = report["nfs"]["bridge"]["workloads"]["adversarial"]["worst_case"]
    assert {pcv: check["observed"] for pcv, check in bridge_worst.items()} == {
        "t": 16,
        "e": 16,
        "w": 51,
    }
    assert report["nfs"]["router"]["workloads"]["adversarial"]["worst_case"]["d"]["observed"] == 33


def test_bench_report_envelopes_dominate_measurements(tmp_path):
    output = tmp_path / "BENCH_eval.json"
    assert cli.main(["bench", "--output", str(output), "--packets", "40"]) == 0
    report = json.loads(output.read_text())
    for record in report["nfs"].values():
        for workload in record["workloads"].values():
            envelopes = workload["cycle_envelopes"]
            for summary in workload["classes"].values():
                for model, cycles in summary["max_cycles"].items():
                    assert cycles["measured"] <= envelopes[model]


def test_cli_default_is_smoke(monkeypatch):
    called = {}
    monkeypatch.setattr(cli, "run_smoke", lambda: called.setdefault("smoke", 0))
    assert cli.main([]) == 0
    assert cli.main(["smoke"]) == 0
    assert "smoke" in called
