"""The evaluation bench: `python -m repro.cli bench` end to end."""

import json

from repro import cli


def test_bench_writes_a_green_report(tmp_path, capsys):
    output = tmp_path / "BENCH_eval.json"
    code = cli.main(["bench", "--output", str(output), "--packets", "60"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "BENCH OK" in printed
    assert "adversarial worst case" in printed

    report = json.loads(output.read_text())
    assert report["schema"] == "repro-bench/1"
    assert report["ok"] is True
    assert set(report["nfs"]) == {"bridge", "router", "nat", "lb", "firewall", "monitor"}
    assert set(report["hw_models"]) == {"conservative", "realistic", "simulated"}
    for nf, record in report["nfs"].items():
        assert record["failures"] == 0
        assert set(record["workloads"]) == {
            "uniform",
            "zipf",
            "adversarial",
            "scan_sweep",
            "header_flood",
        }
        for name, workload in record["workloads"].items():
            assert workload["ok"] is True, (nf, name)
            assert workload["violations"] == []
            for summary in workload["classes"].values():
                for model, cycles in summary["max_cycles"].items():
                    assert cycles["measured"] <= cycles["predicted"], (nf, name, model)
        worst = record["workloads"]["adversarial"].get("worst_case", {})
        # The monitor's sketch has no PCVs, so its adversarial stream has
        # no bound to pin; every other NF pins at least one.
        if nf != "monitor":
            assert worst, nf
        assert all(check["hit"] for check in worst.values())
    # The bridge adversarial stream pins every (namespaced) PCV to its bound.
    bridge_worst = report["nfs"]["bridge"]["workloads"]["adversarial"]["worst_case"]
    assert {pcv: check["observed"] for pcv, check in bridge_worst.items()} == {
        "bridge_map.t": 16,
        "bridge_map.e": 16,
        "bridge_map.w": 51,
    }
    router_worst = report["nfs"]["router"]["workloads"]["adversarial"]["worst_case"]
    assert router_worst["rt.d"]["observed"] == 33
    # The NAT adversarial stream pins *both* instances' PCVs — the
    # namespaced bounds are observed independently per flow table.
    nat_worst = report["nfs"]["nat"]["workloads"]["adversarial"]["worst_case"]
    assert {pcv: check["observed"] for pcv, check in nat_worst.items()} == {
        "fwd.t": 16,
        "fwd.e": 16,
        "fwd.w": 51,
        "rev.t": 16,
        "rev.e": 16,
        "rev.w": 51,
    }
    # All seven NAT contract classes were exercised across its workloads.
    assert set(report["nfs"]["nat"]["classes_seen"]) == {
        "short",
        "non_ip",
        "internal_new",
        "internal_existing",
        "no_ports",
        "external_hit",
        "external_miss",
    }
    # The LB adversarial stream pins the connection-table bounds AND the
    # control-plane repopulation bound (the proven-tight Maglev fill count).
    lb_worst = report["nfs"]["lb"]["workloads"]["adversarial"]["worst_case"]
    assert {pcv: check["observed"] for pcv, check in lb_worst.items()} == {
        "conn.t": 16,
        "conn.e": 16,
        "conn.w": 51,
        "lb_tbl.f": 46,
    }
    # All seven LB contract classes were exercised across its workloads.
    assert set(report["nfs"]["lb"]["classes_seen"]) == {
        "short",
        "non_ip",
        "reconfig",
        "new_flow",
        "existing_flow",
        "backend_drained",
        "no_backends",
    }
    # The firewall adversarial stream pins the connection table's three
    # (namespaced) PCV bounds; the slot allocator contributes none.
    fw_worst = report["nfs"]["firewall"]["workloads"]["adversarial"]["worst_case"]
    assert {pcv: check["observed"] for pcv, check in fw_worst.items()} == {
        "fw_conn.t": 16,
        "fw_conn.e": 16,
        "fw_conn.w": 51,
    }
    # All eight firewall classes were exercised across its workloads, and
    # the scan sweep alone drives the at-capacity class.
    assert set(report["nfs"]["firewall"]["classes_seen"]) == {
        "short",
        "non_ip",
        "denied",
        "outbound_established",
        "outbound_new",
        "conn_full",
        "inbound_established",
        "unsolicited",
    }
    fw_scan = report["nfs"]["firewall"]["workloads"]["scan_sweep"]
    assert "conn_full" in fw_scan["classes"]
    # The monitor row exists, is green, and saw both verdicts.
    monitor_record = report["nfs"]["monitor"]
    assert set(monitor_record["classes_seen"]) == {
        "short",
        "non_ip",
        "cold_flow",
        "hot_flow",
    }
    assert "hot_flow" in monitor_record["workloads"]["header_flood"]["classes"]
    for workload in monitor_record["workloads"].values():
        assert workload["packets_per_sec"] > 0
    # The service-graph rows: end-to-end replay with churn, green at both
    # levels, full per-hop class coverage.
    assert set(report["graphs"]) == {"lb_nat_router", "lb_nat_fw_router"}
    graph_record = report["graphs"]["lb_nat_router"]
    assert graph_record["failures"] == 0
    assert set(graph_record["hop_classes_seen"]) == {"lb", "nat", "router"}
    assert set(graph_record["hop_classes_seen"]["router"]) == {
        "routed",
        "no_route",
        "ttl_expired",
    }
    capture_cell = graph_record["workloads"]["capture"]
    assert capture_cell["ok"] is True
    assert capture_cell["violations"] == []
    assert capture_cell["packets"] == 60
    assert capture_cell["hop_executions"] > capture_cell["packets"]
    assert capture_cell["churn"]["events"] > 0
    assert capture_cell["packets_per_sec"] > 0
    # Every observed route stayed within its composed bound.
    for route in capture_cell["routes"].values():
        assert route["violations"] == 0
        for cycles in route["max_cycles"].values():
            assert cycles["measured"] <= cycles["predicted"]
    # The 4-hop graph adds the firewall hop between NAT and router and
    # stays green end to end.
    fw_graph = report["graphs"]["lb_nat_fw_router"]
    assert fw_graph["failures"] == 0
    assert set(fw_graph["hop_classes_seen"]) == {"lb", "nat", "fw", "router"}
    assert set(fw_graph["hop_classes_seen"]["fw"]) == {
        "outbound_new",
        "outbound_established",
    }
    fw_capture = fw_graph["workloads"]["capture"]
    assert fw_capture["ok"] is True
    assert fw_capture["packets_per_sec"] > 0
    assert any(" > fw:" in route for route in fw_capture["routes"])
    for route in fw_capture["routes"].values():
        assert route["violations"] == 0


def test_bench_report_envelopes_dominate_measurements(tmp_path):
    output = tmp_path / "BENCH_eval.json"
    assert cli.main(["bench", "--output", str(output), "--packets", "40"]) == 0
    report = json.loads(output.read_text())
    for record in report["nfs"].values():
        for workload in record["workloads"].values():
            envelopes = workload["cycle_envelopes"]
            for summary in workload["classes"].values():
                for model, cycles in summary["max_cycles"].items():
                    assert cycles["measured"] <= envelopes[model]


def _strip_timing(report):
    """Drop the only fields allowed to vary between bench invocations."""
    report.pop("timing")
    for kind in ("nfs", "graphs"):
        for record in report[kind].values():
            for workload in record["workloads"].values():
                workload.pop("wall_clock_s")
                workload.pop("packets_per_sec")
    return report


def test_bench_report_is_bit_identical_for_any_worker_count(tmp_path):
    serial = tmp_path / "serial.json"
    fanned = tmp_path / "fanned.json"
    assert cli.main(["bench", "--output", str(serial), "--packets", "30", "--workers", "1"]) == 0
    assert cli.main(["bench", "--output", str(fanned), "--packets", "30", "--workers", "4"]) == 0
    serial_report = json.loads(serial.read_text())
    # The tail distributions participate in the byte-identity guarantee:
    # they are present (each cell rebuilds its simulated model from a cold
    # cache, so fan-out cannot skew them) and they are NOT stripped below.
    for record in serial_report["nfs"].values():
        for workload in record["workloads"].values():
            assert any("cycle_tails" in cls for cls in workload["classes"].values())
    assert _strip_timing(serial_report) == _strip_timing(json.loads(fanned.read_text()))


def test_bench_cells_record_ordered_simulated_tails(tmp_path):
    """Every class row carries 0 < p50 ≤ p95 ≤ p99 ≤ max per model, and
    every measured tail sits under its predicted envelope."""
    output = tmp_path / "BENCH_eval.json"
    assert cli.main(["bench", "--output", str(output), "--packets", "40"]) == 0
    report = json.loads(output.read_text())
    checked = 0
    for nf, record in report["nfs"].items():
        for name, workload in record["workloads"].items():
            for cls, summary in workload["classes"].items():
                tails = summary["cycle_tails"]
                envelopes = summary["cycle_tail_envelopes"]
                assert set(tails) == {"conservative", "realistic", "simulated"}
                for model, t in tails.items():
                    where = (nf, name, cls, model)
                    assert 0 < t["p50"] <= t["p95"] <= t["p99"] <= t["max"], where
                    for p in ("p50", "p95", "p99"):
                        assert t[p] <= envelopes[model][p], where + (p,)
                    checked += 1
    assert checked > 100  # the whole matrix reported distributions


def test_bench_goes_red_when_a_tail_envelope_is_doctored(monkeypatch, tmp_path, capsys):
    """Zeroing the predicted envelopes must surface as tail violations —
    the distribution check is live, not vacuously green."""
    from repro.traffic import replayer as replayer_module

    monkeypatch.setattr(
        replayer_module,
        "tail_envelopes",
        lambda predicted_samples: {p: 0 for p in replayer_module.TAIL_PERCENTILES},
    )
    output = tmp_path / "BENCH_eval.json"
    code = cli.main(
        ["bench", "--output", str(output), "--packets", "30", "--workers", "1", "--nf", "bridge"]
    )
    assert code == 1
    assert "BENCH FAILED" in capsys.readouterr().out
    report = json.loads(output.read_text())
    assert report["ok"] is False
    violations = [
        violation
        for workload in report["nfs"]["bridge"]["workloads"].values()
        for violation in workload["violations"]
    ]
    assert violations
    assert all("exceeds predicted envelope" in v for v in violations)
    assert any("measured p99" in v for v in violations)


def test_bench_models_filter_restricts_the_matrix(tmp_path):
    output = tmp_path / "BENCH_eval.json"
    code = cli.main(
        [
            "bench",
            "--output",
            str(output),
            "--packets",
            "30",
            "--nf",
            "bridge",
            "--models",
            "simulated",
        ]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert set(report["hw_models"]) == {"simulated"}
    assert report["hw_models"]["simulated"]["caches"]["l1"]["sets"] == 32
    assert report["filters"]["models"] == ["simulated"]
    for workload in report["nfs"]["bridge"]["workloads"].values():
        for summary in workload["classes"].values():
            assert set(summary["max_cycles"]) == {"simulated"}
            assert set(summary["cycle_tails"]) == {"simulated"}


def test_bench_rejects_unknown_models(tmp_path, capsys):
    output = tmp_path / "BENCH_eval.json"
    assert cli.main(["bench", "--output", str(output), "--models", "quantum"]) == 2
    assert "unknown hardware models" in capsys.readouterr().out
    assert not output.exists()


def test_bench_records_throughput_per_cell_and_in_aggregate(tmp_path):
    output = tmp_path / "BENCH_eval.json"
    assert cli.main(["bench", "--output", str(output), "--packets", "30", "--workers", "2"]) == 0
    report = json.loads(output.read_text())
    timing = report["timing"]
    assert timing["workers"] == 2
    assert timing["wall_clock_s"] > 0
    assert timing["packets_per_sec"] > 0
    assert timing["packets_total"] == sum(
        workload["packets"]
        for kind in ("nfs", "graphs")
        for record in report[kind].values()
        for workload in record["workloads"].values()
    )
    for kind in ("nfs", "graphs"):
        for record in report[kind].values():
            for workload in record["workloads"].values():
                assert workload["wall_clock_s"] > 0
                assert workload["packets_per_sec"] > 0


def test_bench_nf_filter_writes_a_partial_report(tmp_path):
    output = tmp_path / "BENCH_eval.json"
    code = cli.main(
        ["bench", "--output", str(output), "--packets", "30", "--nf", "bridge", "--nf", "lb"]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["schema"] == "repro-bench/1"
    assert report["ok"] is True
    assert set(report["nfs"]) == {"bridge", "lb"}
    assert report["graphs"] == {}
    assert report["filters"] == {"nfs": ["bridge", "lb"], "graphs": [], "models": []}


def test_bench_graph_filter_writes_a_partial_report(tmp_path):
    output = tmp_path / "BENCH_eval.json"
    code = cli.main(
        ["bench", "--output", str(output), "--packets", "40", "--graph", "lb_nat_router"]
    )
    assert code == 0
    report = json.loads(output.read_text())
    assert report["nfs"] == {}
    assert set(report["graphs"]) == {"lb_nat_router"}
    assert report["filters"] == {"nfs": [], "graphs": ["lb_nat_router"], "models": []}
    assert report["graphs"]["lb_nat_router"]["failures"] == 0


def test_bench_rejects_unknown_filter_rows(tmp_path, capsys):
    output = tmp_path / "BENCH_eval.json"
    assert cli.main(["bench", "--output", str(output), "--nf", "dpi"]) == 2
    assert "unknown bench rows" in capsys.readouterr().out
    assert not output.exists()


def test_graph_command_replays_green(capsys):
    assert cli.main(["graph", "--packets", "120"]) == 0
    printed = capsys.readouterr().out
    assert "GRAPH OK" in printed
    assert "churn @" in printed
    assert "lb:new_flow > nat:internal_new > router:routed" in printed


def test_graph_command_rejects_unknown_graphs(capsys):
    assert cli.main(["graph", "--graph", "nope"]) == 2
    assert "unknown graph" in capsys.readouterr().out


def test_cli_default_is_smoke(monkeypatch):
    called = {}
    monkeypatch.setattr(cli, "run_smoke", lambda: called.setdefault("smoke", 0))
    assert cli.main([]) == 0
    assert cli.main(["smoke"]) == 0
    assert "smoke" in called
