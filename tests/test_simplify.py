"""Tests for whole-tree simplification and substitution (repro.sym.simplify)."""

from repro.sym import expr as E
from repro.sym.expr import Const, Sym
from repro.sym.simplify import simplify, substitute


def test_substitute_integers_folds():
    x, y = Sym("x", 32), Sym("y", 32)
    e = E.add(E.mul(x, Const(3, 32)), y)
    assert substitute(e, {"x": 4, "y": 10}) == Const(22, 32)


def test_substitute_partial_keeps_symbolic_rest():
    x, y = Sym("x", 32), Sym("y", 32)
    e = E.add(x, y)
    partial = substitute(e, {"x": 1})
    assert partial == E.add(y, Const(1, 32))


def test_substitute_expression_binding():
    x, y = Sym("x", 8), Sym("y", 8)
    e = E.mul(x, Const(2, 8))
    assert substitute(e, {"x": E.add(y, Const(1, 8))}) == E.mul(E.add(y, Const(1, 8)), Const(2, 8))


def test_ite_comparison_collapse():
    c = Sym("c", 1)
    picked = E.ite(c, Const(1, 8), Const(0, 8))
    # (c ? 1 : 0) == 1 collapses to c; != 1 collapses to !c.
    assert simplify(E.eq(picked, Const(1, 8))) == c
    assert simplify(E.ne(picked, Const(1, 8))) == E.bnot(c)
    # comparing against a value neither branch produces folds to a constant
    assert simplify(E.eq(picked, Const(7, 8))) == Const(0, 1)


def test_zext_comparison_narrows():
    x = Sym("x", 8)
    wide = E.zext(x, 64)
    narrowed = simplify(E.cmp("eq", wide, Const(5, 64)))
    assert narrowed == E.eq(x, Const(5, 8))


def test_zext_narrowing_skips_signed_comparisons():
    # slt(zext(x:8 -> 64), 200) must NOT narrow to slt(x, 200@8): at 8 bits
    # the constant 200 is negative, flipping the verdict for e.g. x = 100.
    x = Sym("x", 8)
    wide = E.zext(x, 64)
    cmp = E.cmp("slt", wide, Const(200, 64))
    simplified = simplify(cmp)
    for value in (0, 100, 127, 128, 200, 255):
        assert E.evaluate(simplified, {"x": value}) == E.evaluate(cmp, {"x": value})


def test_simplify_bottom_up_folds_constants():
    x = Sym("x", 16)
    # (x * 0) + 3 == 3  is a tautology after simplification
    e = E.eq(E.add(E.mul(x, Const(0, 16)), Const(3, 16)), Const(3, 16))
    assert simplify(e) == Const(1, 1)
