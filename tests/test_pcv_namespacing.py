"""Per-instance PCV namespacing: collisions that must no longer exist.

The satellite coverage for the namespacing refactor: two same-kind
instances in one NF produce disjoint PCVs, disjoint contract columns and
independent adversarial bounds; extern-name manglings that would alias
dispatch are rejected; and the name/rename primitives behave.
"""

import pytest

from repro.core import Metric, PerfExpr, qualify_name, split_name
from repro.core.pcv import PCV
from repro.nfil.builder import FunctionBuilder
from repro.nfil.program import Module
from repro.nfil.validate import validate_module
from repro.core.bolt import Bolt, BoltConfig
from repro.nf.replay import NFHarness
from repro.nfil import ExternHandler
from repro.structures import (
    ExpiringMap,
    OpSpec,
    Structure,
    StructureModel,
    check_extern_collisions,
    linear_cost,
)
from repro.sym.expr import Sym


# --------------------------------------------------------------------------- #
# Name primitives
# --------------------------------------------------------------------------- #
def test_qualify_and_split_roundtrip():
    assert qualify_name("fwd", "t") == "fwd.t"
    assert split_name("fwd.t") == ("fwd", "t")
    assert split_name("t") == (None, "t")
    with pytest.raises(ValueError):
        qualify_name("fwd", "rev.t")  # already qualified
    with pytest.raises(ValueError):
        qualify_name("f wd", "t")


def test_pcv_accepts_qualified_names_and_qualifies():
    local = PCV("t", "traversals", max_value=8)
    qualified = local.qualify("fwd")
    assert qualified.name == "fwd.t"
    assert qualified.instance == "fwd"
    assert qualified.symbol == "t"
    assert qualified.structure == "fwd"
    assert qualified.max_value == 8
    # Re-homing an already-qualified PCV replaces the namespace.
    assert qualified.qualify("rev").name == "rev.t"
    with pytest.raises(ValueError):
        PCV("fwd.rev.t", "too many dots")
    with pytest.raises(ValueError):
        PCV(".t", "empty instance")


def test_perfexpr_accepts_and_renames_qualified_vars():
    expr = PerfExpr.from_terms(t=6, const=5) + PerfExpr({("t", "e"): 2})
    renamed = expr.rename({"t": "fwd.t", "e": "fwd.e"})
    assert renamed.coefficient("fwd.t") == 6
    assert renamed.coefficient("fwd.t", "fwd.e") == 2
    assert renamed.constant_term() == 5
    assert renamed.variables() == {"fwd.t", "fwd.e"}
    # A renaming that collapses two distinct PCVs is refused — whether
    # they meet inside one product monomial (cross term would become a
    # square) or only across monomials (two variables would merge).
    with pytest.raises(ValueError):
        expr.rename({"t": "x", "e": "x"})
    with pytest.raises(ValueError):
        PerfExpr.from_terms(t=2, w=3).rename({"t": "x", "w": "x"})


# --------------------------------------------------------------------------- #
# Two same-kind instances in one NF
# --------------------------------------------------------------------------- #
def _twin_module(a: ExpiringMap, b: ExpiringMap) -> Module:
    """A toy NF touching two expiring maps: get from each, sum paths."""
    module = Module("twin")
    a.declare(module)
    b.declare(module)
    fb = FunctionBuilder("twin_process", params=("key",))
    va = fb.call(a.extern_name("get"), fb.param("key"), name="va")
    vb = fb.call(b.extern_name("get"), fb.param("key"), name="vb")
    fb.ret(fb.add(va, vb))
    module.add_function(fb.build())
    return validate_module(module)


def test_same_kind_instances_have_disjoint_pcvs_and_columns():
    """Two ExpiringMap instances with different geometries keep separate
    registry bounds and separate contract columns."""
    small = ExpiringMap("small", capacity=4, timeout=10)
    large = ExpiringMap("large", capacity=32, timeout=10)
    model = StructureModel(small, large)
    registry = model.registry()
    assert set(registry.names()) == {
        "small.t", "small.w", "small.e", "large.t", "large.w", "large.e",
    }
    # Independent bounds: what the old shared-PCV widening destroyed.
    assert registry.get("small.t").max_value == 4
    assert registry.get("large.t").max_value == 32

    module = _twin_module(small, large)
    bolt = Bolt(
        module,
        "twin_process",
        model=model,
        registry=registry,
        config=BoltConfig(classifier=lambda path: "all"),
    )
    contract = bolt.generate([Sym("key", 64)])
    entry = contract.entry_for("all")
    instr = entry.expr(Metric.INSTRUCTIONS)
    # One get against each instance: 6 small.t + 6 large.t, never 12 t.
    assert instr.coefficient("small.t") == 6
    assert instr.coefficient("large.t") == 6
    assert instr.coefficient("t") == 0
    # Worst case at bounds uses each instance's own capacity.
    bound = contract.upper_bound(Metric.INSTRUCTIONS)
    stateless = instr.constant_term()
    assert bound == stateless + 6 * 4 + 6 * 32


def test_concrete_traces_report_disjoint_observations():
    """Replaying the twin NF observes each instance's PCVs under its own
    namespace: a long chain in one map never inflates the other's ``t``."""
    small = ExpiringMap("small", capacity=4, timeout=10, buckets=1)  # all collide
    large = ExpiringMap("large", capacity=32, timeout=10)
    for i in range(4):
        small.insert(i, i, now=0)
    large.insert(0, 7, now=0)
    module = _twin_module(small, large)
    from repro.nfil import Interpreter

    handler = ExternHandler().merge(small).merge(large)
    interp = Interpreter(module, handler=handler)
    _, trace = interp.run("twin_process", [3])
    bindings = trace.pcv_bindings()
    assert bindings["small.t"] == 4  # walked the whole crafted chain
    assert bindings["large.t"] <= 1  # the healthy map stayed healthy


def test_duplicate_instance_names_rejected_symbolically_and_concretely():
    """Two distinct instances under one name would alias their PCVs and
    silently rebind extern dispatch; both pipelines must refuse them."""
    a = ExpiringMap("dup", capacity=4, timeout=10)
    b = ExpiringMap("dup", capacity=8, timeout=10)
    with pytest.raises(ValueError):
        ExternHandler().merge(a).merge(b)
    with pytest.raises(ValueError, match="must be unique"):
        StructureModel(a, b)
    with pytest.raises(ValueError, match="must be unique"):
        check_extern_collisions((a, b))
    # The same object twice is harmless and stays accepted.
    check_extern_collisions((a, a))
    assert StructureModel(a, a).registry().get("dup.t").max_value == 4


# --------------------------------------------------------------------------- #
# Extern-mangling collisions (`a_b` + `c` vs `a` + `b_c`)
# --------------------------------------------------------------------------- #
class _OneOp(Structure):
    """Minimal structure with a configurable single method name."""

    kind = "one_op"

    def __init__(self, name: str, method: str) -> None:
        self._method = method
        setattr(self, f"_op_{method}", self._serve)
        super().__init__(name)

    def ops(self):
        return (OpSpec(self._method, 1, False, linear_cost("t", instr=(2, 1), mem=(1, 1)), ("t",)),)

    def pcvs(self):
        return (PCV("t", "steps", structure=self.name, max_value=4),)

    def _serve(self, args, memory):
        return self.charge(self._method, t=0)


def test_mangled_extern_collisions_are_rejected_everywhere():
    colliding = (_OneOp("a_b", "c"), _OneOp("a", "b_c"))  # both mangle to a_b_c
    with pytest.raises(ValueError, match="ambiguous after mangling"):
        check_extern_collisions(colliding)
    with pytest.raises(ValueError, match="ambiguous after mangling"):
        StructureModel(*colliding)
    with pytest.raises(ValueError, match="ambiguous after mangling"):
        NFHarness(
            "toy",
            Module("toy"),
            "f",
            handler=ExternHandler(),
            structures=colliding,
            pkt_base=0x1000,
            sym_bytes=0,
        )
    # The module-level extern declarations refuse the same collision.
    module = Module("collide")
    colliding[0].declare(module)
    with pytest.raises(ValueError, match="conflicting extern declarations"):
        colliding[1].declare(module)
    # Non-colliding underscore names stay fine.
    check_extern_collisions((_OneOp("a_b", "c"), _OneOp("a", "d_c")))
