"""End-to-end tests: BOLT on the MAC bridge, cross-checked against the
concrete interpreter + tracer (the acceptance gate of the vertical slice).
"""

import random

import pytest

from repro.core import Distiller, Metric
from repro.nf.bridge import (
    BRIDGE_FUNCTION,
    DROP,
    FLOOD,
    PKT_BASE,
    bridge_replay_env,
    build_bridge_module,
    generate_bridge_contract,
    make_bridge_table,
)
from repro.nfil import Interpreter, Memory

CAPACITY = 16

#: Every (instance-qualified) PCV of the bridge contract, zeroed (traces
#: fill in observations).
ZERO_PCVS = {"bridge_map.e": 0, "bridge_map.t": 0, "bridge_map.w": 0}


@pytest.fixture(scope="module")
def contract():
    return generate_bridge_contract(capacity=CAPACITY)


def _packet(dst: bytes, src: bytes) -> bytes:
    assert len(dst) == len(src) == 6
    return dst + src + b"\x08\x00" + bytes(50)


def _run(interp, packet, port, time):
    memory = Memory()
    memory.write_bytes(PKT_BASE, packet)
    result, trace = interp.run(BRIDGE_FUNCTION, [PKT_BASE, len(packet), port, time], memory=memory)
    return result, trace


def test_contract_has_the_four_bridge_classes(contract):
    assert sorted(contract.class_names()) == ["hairpin", "hit", "miss", "short"]
    for entry in contract:
        assert entry.paths, "every bridge entry must carry its symbolic path"
        assert all(path.feasibility == "sat" for path in entry.paths)


def test_contract_expressions_use_the_declared_pcvs(contract):
    assert contract.variables() <= {"bridge_map.e", "bridge_map.t", "bridge_map.w"}
    # The short path never touches the MAC table: no t term.
    short = contract.entry_for("short")
    assert short.expr(Metric.INSTRUCTIONS).coefficient("bridge_map.t") == 0
    # Lookup paths charge both puts and gets: t coefficient is the sum of
    # the per-op slopes (6 + 6 instructions, 2 + 2 accesses).
    hit = contract.entry_for("hit")
    assert hit.expr(Metric.INSTRUCTIONS).coefficient("bridge_map.t") == 12
    assert hit.expr(Metric.MEMORY_ACCESSES).coefficient("bridge_map.t") == 4


def test_bridge_concrete_behaviour():
    module = build_bridge_module()
    table = make_bridge_table(CAPACITY, timeout=1000)
    interp = Interpreter(module, handler=table)
    a, b = b"\xaa" * 6, b"\xbb" * 6

    # Unknown destination floods and learns the source.
    result, _ = _run(interp, _packet(a, b), port=1, time=0)
    assert result == FLOOD
    assert table.occupancy() == 1
    # Reply towards the learned MAC is forwarded to its port.
    result, _ = _run(interp, _packet(b, a), port=2, time=1)
    assert result == 1
    # Same-port (hairpin) traffic is dropped.
    result, _ = _run(interp, _packet(a, b), port=2, time=2)
    assert result == DROP
    # Truncated frames are dropped before parsing.
    result, trace = _run(interp, b"\x01\x02\x03", port=0, time=3)
    assert result == DROP
    assert len(trace.extern_calls) == 1  # only the expiry scan ran


def test_bridge_expiry_reports_e():
    module = build_bridge_module()
    table = make_bridge_table(CAPACITY, timeout=10)
    interp = Interpreter(module, handler=table)
    _run(interp, _packet(b"\x01" * 6, b"\x02" * 6), port=0, time=0)
    assert table.occupancy() == 1
    # Much later, the learned entry has expired: the expiry call reports e=1.
    _, trace = _run(interp, _packet(b"\x01" * 6, b"\x03" * 6), port=0, time=100)
    expire_call = trace.extern_calls[0]
    assert expire_call.name == "bridge_map_expire"
    assert expire_call.pcvs["bridge_map.e"] == 1
    # The wheel never advances more than one revolution per sweep.
    assert expire_call.pcvs["bridge_map.w"] <= table.wheel_slots
    assert table.occupancy() == 1  # the fresh source MAC was re-learned


def test_contract_bounds_100_replayed_packets(contract):
    """The acceptance check: for >=100 replayed packets, the contract entry
    the execution falls into (found by matching the trace back to a symbolic
    path) upper-bounds the traced instruction and memory counts, and the
    stateless portion matches the symbolic path exactly."""
    module = build_bridge_module()
    table = make_bridge_table(CAPACITY, timeout=50)
    interp = Interpreter(module, handler=table)
    rng = random.Random(2019)
    macs = [bytes(rng.randrange(256) for _ in range(6)) for _ in range(12)]

    replayed = 0
    classes_seen = set()
    for n in range(150):
        dst, src = rng.choice(macs), rng.choice(macs)
        if n % 17 == 0:
            packet = dst[: rng.randrange(0, 13)]  # truncated frame
        else:
            packet = _packet(dst, src)
        port = rng.randrange(64)
        time = n * 3
        result, trace = _run(interp, packet, port, time)

        env = bridge_replay_env(packet, len(packet), port, time, trace)
        entry = contract.classify(env)
        assert entry is not None, f"replay {n} not covered by any contract entry"
        classes_seen.add(entry.input_class.name)

        bindings = dict(ZERO_PCVS)
        bindings.update(trace.pcv_bindings())
        predicted_instr = entry.evaluate(Metric.INSTRUCTIONS, bindings)
        predicted_mem = entry.evaluate(Metric.MEMORY_ACCESSES, bindings)
        assert predicted_instr >= trace.total_instructions(), (
            f"replay {n} ({entry.input_class.name}): "
            f"{predicted_instr} < {trace.total_instructions()}"
        )
        assert predicted_mem >= trace.total_memory_accesses()

        # The matched symbolic path predicts the stateless counts exactly.
        path = entry.matching_path(env)
        assert path is not None
        assert path.instructions == trace.instructions
        assert path.memory_accesses == trace.memory_accesses
        replayed += 1

    assert replayed >= 100
    # The workload must have exercised every contract row.
    assert classes_seen == {"short", "miss", "hairpin", "hit"}


def test_contract_worst_case_bounds_everything(contract):
    """Evaluating at the PCV upper bounds dominates any concrete run."""
    module = build_bridge_module()
    table = make_bridge_table(CAPACITY, timeout=25)
    interp = Interpreter(module, handler=table)
    rng = random.Random(7)
    macs = [bytes(rng.randrange(256) for _ in range(6)) for _ in range(30)]
    worst_instr = contract.upper_bound(Metric.INSTRUCTIONS)
    worst_mem = contract.upper_bound(Metric.MEMORY_ACCESSES)
    for n in range(200):
        packet = _packet(rng.choice(macs), rng.choice(macs))
        _, trace = _run(interp, packet, rng.randrange(64), n)
        assert worst_instr >= trace.total_instructions()
        assert worst_mem >= trace.total_memory_accesses()


def test_short_path_prediction_is_exact(contract):
    """With nothing to expire, the short-frame entry predicts exactly."""
    module = build_bridge_module()
    table = make_bridge_table(CAPACITY, timeout=10_000)
    interp = Interpreter(module, handler=table)
    _, trace = _run(interp, b"\x00" * 5, port=3, time=1)
    entry = contract.entry_for("short")
    bindings = dict(ZERO_PCVS)
    bindings.update(trace.pcv_bindings())
    assert entry.evaluate(Metric.INSTRUCTIONS, bindings) == trace.total_instructions()
    assert entry.evaluate(Metric.MEMORY_ACCESSES, bindings) == trace.total_memory_accesses()


def test_replay_of_symbolic_witnesses(contract):
    """Each path's solver model, replayed concretely against a table primed
    to produce the modelled extern outputs, follows that very path."""
    module = build_bridge_module()
    for entry in contract:
        for path in entry.paths:
            # Distinct default MACs: an all-zero packet would make the
            # learning put() of the source satisfy the destination get().
            defaults = {f"pkt[{i}]": 0 for i in range(16)}
            defaults["pkt[0]"], defaults["pkt[6]"] = 0x01, 0x02
            inputs = path.concrete_inputs(defaults=defaults)
            packet = bytes(inputs.get(f"pkt[{i}]", 0) for i in range(16))
            get_results = [
                inputs[record.result_name]
                for record in path.calls
                if record.result_name is not None and record.result_name in inputs
            ]
            table = make_bridge_table(CAPACITY, timeout=10_000)
            # Prime the MAC table so the destination lookup returns the
            # modelled value (when the model says the MAC is known).
            dmac = int.from_bytes(packet[0:6], "little")
            for value in get_results:
                if value != (1 << 64) - 1:
                    table.insert(dmac, value, now=0)
            interp = Interpreter(module, handler=table)
            memory = Memory()
            memory.write_bytes(PKT_BASE, packet)
            _, trace = interp.run(
                BRIDGE_FUNCTION,
                [
                    PKT_BASE,
                    inputs.get("len", 0),
                    inputs.get("in_port", 0),
                    inputs.get("time", 0),
                ],
                memory=memory,
            )
            env = bridge_replay_env(
                packet, inputs.get("len", 0), inputs.get("in_port", 0),
                inputs.get("time", 0), trace,
            )
            assert path.covers(env), (
                f"witness for path {path.pid} ({entry.input_class.name}) "
                f"did not replay onto its path"
            )


def test_custom_bolt_config_keeps_bridge_classifier():
    """Tuning unrelated knobs must not silently lose per-class entries."""
    from repro.core import BoltConfig

    custom = generate_bridge_contract(capacity=CAPACITY, config=BoltConfig(max_paths=64))
    assert sorted(custom.class_names()) == ["hairpin", "hit", "miss", "short"]


def test_distilled_bridge_contract_renders(contract):
    report = Distiller(contract).distill(Metric.INSTRUCTIONS)
    assert len(report.entries) == 4
    text = report.render()
    assert "bridge_process" in text
