"""Shared fixtures for the suite.

Contract generation is the expensive step (symbolic execution of every
structure operation per input class); the session-scoped fixtures below
run it once and share the results between the diff, audit and property
test files, which would otherwise each regenerate the same four NF
contracts plus the composed graph contract.
"""

import pytest

from repro import cli


@pytest.fixture(scope="session")
def gate_targets():
    """``name -> (contract, structures)`` for every gated target.

    Exactly what ``contract-diff``/``ct-audit`` regenerate: the four NFs'
    bench-geometry contracts plus the lb_nat_router graph's composed
    contract, each with the live structure instances behind its PCVs.
    """
    return {
        name: (contract, structures)
        for name, contract, structures in cli._gate_targets()
    }


@pytest.fixture(scope="session")
def nf_specs():
    """``name -> NFSpec`` for the registered NF matrix."""
    return {spec.name: spec for spec in cli.NF_MATRIX}
