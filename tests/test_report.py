"""Direct coverage for contract/table rendering in core.report."""

import pytest

from repro.core import (
    ContractEntry,
    InputClass,
    Metric,
    PerfExpr,
    PerformanceContract,
    format_contract,
    format_table,
)
from repro.core.pcv import PCV, PCVRegistry
from repro.hw import ConservativeModel
from repro.nf.bridge import generate_bridge_contract


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", "1"], ["longer", "22"]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    # Every row is padded to the same column start.
    assert lines[2].index("1") == lines[3].index("2") == lines[0].index("value")


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one-cell"]])


def test_format_table_with_no_rows_keeps_headers():
    text = format_table(["x", "y"], [])
    assert text.splitlines()[0].rstrip() == "x  y"


def test_format_contract_lists_pcv_descriptions_and_columns():
    registry = PCVRegistry([PCV("t", "chain links inspected", max_value=8)])
    contract = PerformanceContract("toy", registry=registry)
    contract.add_entry(
        ContractEntry(
            input_class=InputClass("all"),
            exprs={
                Metric.INSTRUCTIONS: PerfExpr.from_terms(t=6, const=5),
                Metric.MEMORY_ACCESSES: PerfExpr.from_terms(t=2),
            },
        )
    )
    text = format_contract(contract)
    assert "performance contract for toy" in text
    assert "t: chain links inspected" in text
    assert "instructions" in text and "memory_accesses" in text
    # No entry carries cycles, so no cycles column is rendered.
    assert "cycles" not in text
    assert "6·t + 5" in text


def test_format_contract_empty_contract_shows_all_metric_headers():
    contract = PerformanceContract("empty")
    text = format_contract(contract)
    for metric in Metric:
        assert str(metric) in text


def test_derived_contract_renders_a_cycles_column():
    contract = generate_bridge_contract(16, 50)
    derived = ConservativeModel().derive(contract)
    text = derived.render()
    header = next(line for line in text.splitlines() if line.startswith("input class"))
    assert "cycles" in header and "instructions" in header
    assert "bridge_process@conservative" in text


def test_contract_str_uses_the_report_renderer():
    contract = PerformanceContract("toy")
    assert str(contract) == format_contract(contract)
