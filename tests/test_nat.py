"""End-to-end tests for the VigNAT-style NAT: the multi-instance NF.

The NAT is the proof that per-instance PCV namespacing works through the
whole pipeline: its contract is written over ``fwd.*`` and ``rev.*`` at
once, concrete replays observe both namespaces independently, and the
adversarial stream pins each instance's bounds separately.
"""

import random

import pytest

from repro.core import Metric
from repro.nf.nat import (
    DROP_NO_PORTS,
    DROP_NON_IP,
    DROP_SHORT,
    DROP_UNKNOWN_FLOW,
    LAN_PORT,
    MIN_NAT_FRAME,
    NAT_FUNCTION,
    PKT_BASE,
    PORT_BASE,
    build_nat_module,
    generate_nat_contract,
    make_nat_tables,
    nat_replay_env,
)
from repro.nf.workloads import nat_adversarial, nat_harness, nat_workloads
from repro.nfil import ExternHandler, Interpreter, Memory
from repro.traffic import Replayer, nat_frame

CAPACITY = 16
TIMEOUT = 50

NAT_CLASSES = {
    "short",
    "non_ip",
    "internal_new",
    "internal_existing",
    "no_ports",
    "external_hit",
    "external_miss",
}

#: Every namespaced PCV of the NAT contract, zeroed.
ZERO_PCVS = {
    f"{instance}.{symbol}": 0
    for instance in ("fwd", "rev")
    for symbol in ("t", "w", "e")
}

LAN_HOST = 0x0A000001  # 10.0.0.1
WAN_HOST = 0x08080808  # 8.8.8.8


@pytest.fixture(scope="module")
def contract():
    return generate_nat_contract(CAPACITY, TIMEOUT)


def _interp(capacity=CAPACITY, timeout=TIMEOUT, pool=None):
    fwd, rev, ports = make_nat_tables(capacity, timeout, pool=pool)
    handler = ExternHandler().merge(fwd).merge(rev).merge(ports)
    return Interpreter(build_nat_module(), handler=handler), (fwd, rev, ports)


def _run(interp, packet, in_port, time):
    memory = Memory()
    memory.write_bytes(PKT_BASE, packet)
    return interp.run(
        NAT_FUNCTION, [PKT_BASE, len(packet), in_port, time], memory=memory
    )


def test_contract_has_the_seven_nat_classes(contract):
    assert set(contract.class_names()) == NAT_CLASSES
    for entry in contract:
        assert entry.paths, "every NAT entry must carry its symbolic path"
        assert all(path.feasibility == "sat" for path in entry.paths)


def test_contract_distinguishes_the_two_instances(contract):
    """The forcing function of namespacing: ``fwd.t`` and ``rev.t`` are
    separate contract columns with separate coefficients."""
    assert contract.variables() == set(ZERO_PCVS)
    existing = contract.entry_for("internal_existing")
    # fwd: one get (6t) + one refreshing put (6t); rev: one put (6t).
    assert existing.expr(Metric.INSTRUCTIONS).coefficient("fwd.t") == 12
    assert existing.expr(Metric.INSTRUCTIONS).coefficient("rev.t") == 6
    hit = contract.entry_for("external_hit")
    # Mirrored on the reverse path: one rev get + rev put, one fwd put.
    assert hit.expr(Metric.INSTRUCTIONS).coefficient("rev.t") == 12
    assert hit.expr(Metric.INSTRUCTIONS).coefficient("fwd.t") == 6
    # Both registries carry their own bounds.
    assert contract.registry.get("fwd.t").max_value == CAPACITY
    assert contract.registry.get("rev.t").max_value == CAPACITY


def test_nat_concrete_behaviour():
    interp, (fwd, rev, ports) = _interp()
    flow = nat_frame(LAN_HOST, 40000, WAN_HOST, 80)

    # First LAN packet of a flow leases the first pool port and rewrites.
    result, trace = _run(interp, flow, in_port=LAN_PORT, time=0)
    assert result == PORT_BASE
    assert fwd.occupancy() == 1 and rev.occupancy() == 1
    assert ports.leased() == 1
    # The source port field was rewritten in NF memory.
    # (little-endian store of the leased port at offset 34)
    # Second packet of the same flow reuses the lease.
    result, _ = _run(interp, flow, in_port=LAN_PORT, time=1)
    assert result == PORT_BASE
    assert ports.leased() == 1  # no second lease

    # WAN reply to the leased port is translated back.
    reply = nat_frame(WAN_HOST, 80, 0xCB007101, PORT_BASE)
    result, _ = _run(interp, reply, in_port=1, time=2)
    assert result == (LAN_HOST << 16) | 40000

    # WAN frame to an unleased port is dropped.
    stray = nat_frame(WAN_HOST, 80, 0xCB007101, PORT_BASE + 7)
    result, _ = _run(interp, stray, in_port=1, time=3)
    assert result == DROP_UNKNOWN_FLOW

    # Truncated and non-IP frames are dropped before parsing endpoints.
    result, trace = _run(interp, flow[: MIN_NAT_FRAME - 1], in_port=LAN_PORT, time=4)
    assert result == DROP_SHORT
    assert len(trace.extern_calls) == 2  # only the two expiry scans ran
    v6 = nat_frame(LAN_HOST, 40000, WAN_HOST, 80, ethertype=(0x86, 0xDD))
    result, _ = _run(interp, v6, in_port=LAN_PORT, time=5)
    assert result == DROP_NON_IP


def test_nat_pool_exhaustion_drops_new_flows():
    interp, (fwd, rev, ports) = _interp(pool=[PORT_BASE, PORT_BASE + 1])
    for i in range(2):
        result, _ = _run(
            interp, nat_frame(LAN_HOST + i, 50000, WAN_HOST, 80), in_port=LAN_PORT, time=i
        )
        assert result == PORT_BASE + i
    result, _ = _run(
        interp, nat_frame(LAN_HOST + 9, 50000, WAN_HOST, 80), in_port=LAN_PORT, time=2
    )
    assert result == DROP_NO_PORTS
    assert ports.available() == 0
    # Existing flows keep working at exhaustion.
    result, _ = _run(
        interp, nat_frame(LAN_HOST, 50000, WAN_HOST, 80), in_port=LAN_PORT, time=3
    )
    assert result == PORT_BASE


def test_nat_source_port_rewrite_lands_in_packet_memory():
    interp, _ = _interp()
    memory = Memory()
    packet = nat_frame(LAN_HOST, 40000, WAN_HOST, 80)
    memory.write_bytes(PKT_BASE, packet)
    result, _ = interp.run(
        NAT_FUNCTION, [PKT_BASE, len(packet), LAN_PORT, 0], memory=memory
    )
    rewritten = memory.load(PKT_BASE + 34, 2)  # little-endian NF-side store
    assert rewritten == result == PORT_BASE


def test_contract_bounds_100_replayed_packets(contract):
    """The acceptance check: for >=100 replayed packets the matched entry
    upper-bounds the traced counts, and the matched symbolic path predicts
    the stateless counts exactly — with PCV bindings spanning both
    instances' namespaces."""
    interp, _ = _interp()
    rng = random.Random(2019)
    hosts = [(rng.randrange(1 << 32), rng.randrange(1024, 1 << 16)) for _ in range(10)]

    replayed = 0
    classes_seen = set()
    for n in range(150):
        src_ip, src_port = hosts[rng.randrange(len(hosts))]
        if n % 13 == 0:
            packet = nat_frame(src_ip, src_port, WAN_HOST, 80)[: rng.randrange(0, 37)]
            in_port = LAN_PORT
        elif n % 7 == 0:
            packet = nat_frame(WAN_HOST, 80, 0xCB007101, PORT_BASE + rng.randrange(20))
            in_port = 1 + rng.randrange(3)
        else:
            packet = nat_frame(src_ip, src_port, WAN_HOST, 80)
            in_port = LAN_PORT
        time = n * 2
        _, trace = _run(interp, packet, in_port, time)

        env = nat_replay_env(packet, len(packet), in_port, time, trace)
        entry = contract.classify(env)
        assert entry is not None, f"replay {n} not covered by any contract entry"
        classes_seen.add(entry.input_class.name)

        bindings = dict(ZERO_PCVS)
        bindings.update(trace.pcv_bindings())
        for metric, measured in (
            (Metric.INSTRUCTIONS, trace.total_instructions()),
            (Metric.MEMORY_ACCESSES, trace.total_memory_accesses()),
        ):
            predicted = entry.evaluate(metric, bindings)
            assert predicted >= measured, (
                f"replay {n} ({entry.input_class.name}): {predicted} < {measured}"
            )

        path = entry.matching_path(env)
        assert path is not None
        assert path.instructions == trace.instructions
        assert path.memory_accesses == trace.memory_accesses
        replayed += 1

    assert replayed >= 100
    assert {"internal_new", "internal_existing", "external_hit", "external_miss", "short"} <= (
        classes_seen
    )


def test_adversarial_pins_both_instances_independently(contract):
    """The acceptance criterion: the adversarial phase provably pins both
    instances' namespaced PCVs to their registry bounds."""
    workload = nat_adversarial(capacity=CAPACITY, timeout=TIMEOUT)
    result = Replayer(workload.harness, contract).replay(workload.stimuli)
    assert result.ok, result.violations[:3]
    fwd, rev, _ = workload.harness.structures
    registry = contract.registry
    assert set(workload.expected_worst) == set(ZERO_PCVS)
    for pcv, bound in workload.expected_worst.items():
        assert registry.get(pcv).max_value == bound
        assert result.max_pcvs[pcv] == bound, pcv
    # The single worst_t packet observes BOTH chains at full length.
    worst = next(o for o in result.outcomes if o.note == "worst_t")
    assert worst.pcvs["fwd.t"] == CAPACITY
    assert worst.pcvs["rev.t"] == CAPACITY
    assert worst.class_name == "internal_existing"


def test_workload_streams_cover_every_contract_class(contract):
    classes = set()
    for workload in nat_workloads(packets=120):
        result = Replayer(workload.harness, contract).replay(workload.stimuli)
        assert result.ok, result.violations[:3]
        classes.update(result.classes_seen())
    assert classes == NAT_CLASSES


def test_harness_scalar_order_and_defaults():
    harness = nat_harness(CAPACITY, TIMEOUT)
    assert harness.scalar_order == ("len", "in_port", "time")
    from repro.traffic import Stimulus

    stimulus = Stimulus(
        packet=nat_frame(LAN_HOST, 40000, WAN_HOST, 80),
        scalars={"in_port": 0, "time": 0},
    )
    scalars = harness.scalars_for(stimulus)
    assert scalars["len"] == MIN_NAT_FRAME + 12
