"""Traffic layer: packet builders, samplers, workloads and the replayer."""

import random

import pytest

from repro.core import Metric
from repro.nf.bridge import generate_bridge_contract
from repro.nf.router import generate_router_contract, ipv4_packet
from repro.nf.workloads import (
    bridge_adversarial,
    bridge_workloads,
    colliding_mac_keys,
    router_adversarial,
    router_workloads,
)
from repro.structures import ChainingHashMap
from repro.traffic import (
    Replayer,
    Stimulus,
    ethernet_frame,
    ipv4_address,
    ipv4_frame,
    mac_bytes,
    uniform_indices,
    zipf_indices,
    zipf_weights,
)


# --------------------------------------------------------------------------- #
# Packets
# --------------------------------------------------------------------------- #
def test_mac_bytes_little_endian_roundtrip():
    assert mac_bytes(0x0000A1B2C3D4E5F6 & ((1 << 48) - 1)) == bytes(
        [0xF6, 0xE5, 0xD4, 0xC3, 0xB2, 0xA1]
    )
    with pytest.raises(ValueError):
        mac_bytes(1 << 48)


def test_ethernet_frame_layout():
    frame = ethernet_frame(0x1122, 0x3344, payload=10)
    assert len(frame) == 14 + 10
    assert frame[0:6] == mac_bytes(0x1122)
    assert frame[6:12] == mac_bytes(0x3344)
    assert frame[12:14] == b"\x08\x00"
    with pytest.raises(ValueError):
        ethernet_frame(b"\x00" * 5, 0)


def test_ipv4_frame_layout_and_delegation():
    frame = ipv4_frame([10, 20, 30, 40], ttl=7)
    assert frame[12:14] == b"\x08\x00"
    assert frame[22] == 7
    assert frame[30:34] == bytes([10, 20, 30, 40])
    # The router's historical helper is the same builder.
    assert ipv4_packet([10, 20, 30, 40], ttl=7) == frame
    with pytest.raises(ValueError):
        ipv4_frame([1, 2, 3])
    with pytest.raises(ValueError):
        ipv4_frame(0, ttl=300)
    assert ipv4_address(0x0A141E28) == ipv4_address([10, 20, 30, 40])


# --------------------------------------------------------------------------- #
# Samplers
# --------------------------------------------------------------------------- #
def test_samplers_are_deterministic_under_a_seed():
    assert uniform_indices(random.Random(7), 10, 50) == uniform_indices(random.Random(7), 10, 50)
    assert zipf_indices(random.Random(7), 10, 50) == zipf_indices(random.Random(7), 10, 50)


def test_zipf_is_head_heavy():
    draws = zipf_indices(random.Random(3), 50, 4000)
    head = draws.count(0)
    tail = draws.count(49)
    assert head > 10 * max(tail, 1)


def test_sampler_validation():
    with pytest.raises(ValueError):
        uniform_indices(random.Random(0), 0, 1)
    with pytest.raises(ValueError):
        zipf_weights(10, s=0)


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
def test_colliding_mac_keys_share_one_bucket():
    keys = colliding_mac_keys(16)
    probe = ChainingHashMap("probe", capacity=16)
    buckets = {probe._hash(key) for key in keys}
    assert len(keys) == 16 and len(set(keys)) == 16
    assert len(buckets) == 1


def test_adversarial_expectations_match_registry_bounds():
    bridge = bridge_adversarial(capacity=16, timeout=50)
    registry = bridge.harness.structures[0].registry()
    for pcv, bound in bridge.expected_worst.items():
        assert registry.get(pcv).max_value == bound
    router = router_adversarial()
    assert router.expected_worst == {"rt.d": 33}
    assert router.harness.structures[0].registry().get("rt.d").max_value == 33


def test_bridge_adversarial_hits_every_pcv_bound():
    workload = bridge_adversarial(capacity=16, timeout=50)
    contract = generate_bridge_contract(16, 50)
    result = Replayer(workload.harness, contract).replay(workload.stimuli)
    assert result.ok, result.violations[:3]
    for pcv, bound in workload.expected_worst.items():
        assert result.max_pcvs[pcv] == bound, pcv


def test_router_adversarial_walks_the_full_trie_depth():
    workload = router_adversarial()
    contract = generate_router_contract()
    result = Replayer(workload.harness, contract).replay(workload.stimuli)
    assert result.ok, result.violations[:3]
    assert result.max_pcvs["rt.d"] == 33
    routed = [outcome for outcome in result.outcomes if outcome.class_name == "routed"]
    worst = max(routed, key=lambda outcome: outcome.pcvs.get("rt.d", 0))
    assert worst.note == "worst_d"


def test_workload_streams_cover_every_contract_class():
    bridge_classes = set()
    for workload in bridge_workloads(packets=120):
        contract = generate_bridge_contract(16, 50)
        result = Replayer(workload.harness, contract).replay(workload.stimuli)
        assert result.ok
        bridge_classes.update(result.classes_seen())
    assert bridge_classes >= {"short", "miss", "hairpin", "hit"}
    router_classes = set()
    for workload in router_workloads(packets=120):
        contract = generate_router_contract()
        result = Replayer(workload.harness, contract).replay(workload.stimuli)
        assert result.ok
        router_classes.update(result.classes_seen())
    assert router_classes >= {"short", "non_ip", "ttl_expired", "no_route", "routed"}


# --------------------------------------------------------------------------- #
# Replayer
# --------------------------------------------------------------------------- #
def test_replayer_summaries_and_json():
    workload = bridge_workloads(packets=60)[0]
    contract = generate_bridge_contract(16, 50)
    result = Replayer(workload.harness, contract).replay(workload.stimuli, workload="uniform")
    assert result.packets == 60
    summary = result.summaries[result.classes_seen()[0]]
    assert summary.max_measured[Metric.INSTRUCTIONS] <= summary.max_predicted[Metric.INSTRUCTIONS]
    text = result.table()
    assert "bridge / uniform" in text and "input class" in text
    payload = result.to_json()
    assert payload["ok"] is True
    assert set(payload["classes"]) == set(result.classes_seen())


def test_replayer_records_unclassified_executions():
    """A contract that does not cover the NF's executions is a recorded
    violation, not a crash."""
    from repro.core import PerformanceContract

    workload = bridge_workloads(packets=20)[0]
    empty_contract = PerformanceContract("empty")
    result = Replayer(workload.harness, empty_contract).replay(workload.stimuli)
    assert not result.ok
    assert "<unclassified>" in result.summaries
    assert all("no contract entry" in message for message in result.violations)


def test_replayer_flags_a_wrong_nf_contract():
    """Classifying bridge traffic against the router contract surfaces
    measured > predicted violations instead of silently passing."""
    workload = bridge_workloads(packets=20)[0]
    result = Replayer(workload.harness, generate_router_contract()).replay(workload.stimuli)
    assert not result.ok


def test_stimulus_defaults_len_to_packet_length():
    workload = bridge_workloads(packets=10)[0]
    stimulus = Stimulus(packet=b"\x01\x02\x03", scalars={"in_port": 0, "time": 0})
    scalars = workload.harness.scalars_for(stimulus)
    assert scalars["len"] == 3
    with pytest.raises(KeyError):
        workload.harness.scalars_for(Stimulus(packet=b"", scalars={}))
