"""The golden-contract layer: exact round-trips and drift detection.

Serialization must be *exact* (Fractions survive as strings, never
floats) because the diff is term-for-term equality — a contract that only
round-trips approximately would drift against itself and the gate would
never be green.
"""

import json
import random
from fractions import Fraction
from pathlib import Path

import pytest

from repro import cli
from repro.core import (
    ContractEntry,
    InputClass,
    Metric,
    PCV,
    PCVRegistry,
    PerfExpr,
    PerformanceContract,
    contract_from_json,
    contract_to_json,
    diff_contracts,
    dump_contract,
    load_contract,
)
from repro.core.diff import SCHEMA

GATE_NAMES = [spec.name for spec in cli.NF_MATRIX] + [
    spec.name for spec in cli.GRAPH_MATRIX
]


# --------------------------------------------------------------------------- #
# Round-trip exactness
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", GATE_NAMES)
def test_round_trip_is_diff_exact_for_every_gated_contract(name, gate_targets):
    """serialize → deserialize → diff against the original is empty, for
    all six NFs and both composed graph contracts."""
    contract, _ = gate_targets[name]
    restored = contract_from_json(contract_to_json(contract))
    diff = diff_contracts(contract, restored)
    assert diff.ok, diff.render()
    assert restored.nf_name == contract.nf_name
    assert restored.class_names() == contract.class_names()
    for entry in contract.entries:
        restored_entry = restored.entry_for(entry.input_class.name)
        for metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
            assert restored_entry.expr(metric) == entry.expr(metric)
    # The registry's bounds survive too — the diff's cycle pricing uses them.
    assert restored.registry.default_bounds() == contract.registry.default_bounds()


def test_fractional_coefficients_survive_exactly(tmp_path):
    """A 9/2 coefficient must come back as Fraction(9, 2), not 4.5."""
    registry = PCVRegistry([PCV("t", "links", structure="m", max_value=8)])
    contract = PerformanceContract("frac_nf", registry=registry)
    expr = PerfExpr({(): Fraction(7, 3), ("m.t",): Fraction(9, 2)})
    contract.add_entry(
        ContractEntry(
            input_class=InputClass("only"),
            exprs={Metric.INSTRUCTIONS: expr, Metric.MEMORY_ACCESSES: PerfExpr({(): Fraction(1)})},
        )
    )
    path = tmp_path / "frac.json"
    dump_contract(contract, str(path))
    text = path.read_text()
    assert '"9/2"' in text and '"7/3"' in text  # strings, never floats
    restored = load_contract(str(path))
    restored_expr = restored.entry_for("only").expr(Metric.INSTRUCTIONS)
    assert restored_expr.terms[("m.t",)] == Fraction(9, 2)
    assert restored_expr == expr
    assert diff_contracts(contract, restored).ok


def test_unknown_schema_is_rejected(gate_targets):
    contract, _ = gate_targets["bridge"]
    payload = contract_to_json(contract)
    payload["schema"] = "repro-contract/999"
    with pytest.raises(ValueError, match="unsupported contract schema"):
        contract_from_json(payload)
    assert contract_to_json(contract)["schema"] == SCHEMA


# --------------------------------------------------------------------------- #
# Sabotage: a seeded mutated bound is caught and named
# --------------------------------------------------------------------------- #
def _sabotage(contract, rng):
    """Worsen one random coefficient of one random entry; return what drifted."""
    payload = contract_to_json(contract)
    entry = rng.choice(payload["entries"])
    metric = rng.choice(sorted(entry["exprs"]))
    term = rng.choice(entry["exprs"][metric])
    term[1] = str(Fraction(str(term[1])) + 3)
    return contract_from_json(payload), entry["class"], Metric(metric), tuple(term[0])


@pytest.mark.parametrize("seed", range(5))
def test_sabotaged_bound_is_reported_with_class_and_metric(seed, gate_targets):
    contract, structures = gate_targets["nat"]
    golden, class_name, metric, monomial = _sabotage(contract, random.Random(seed))
    # The *current* tree regressed against the golden: swap the roles so
    # the mutated coefficient appears as a worsening in `current`.
    diff = diff_contracts(contract, golden, models=cli._bench_models(), structures=structures)
    assert not diff.ok
    assert class_name in diff.worsened_classes
    [drift] = [d for d in diff.drifted if d.class_name == class_name]
    [term] = [t for t in drift.terms if t.metric == metric and t.monomial == monomial]
    assert term.worsened
    assert term.current - term.golden == Fraction(3)
    assert set(drift.cycle_deltas) == {"conservative", "realistic", "simulated"}
    if metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
        # Count drift must surface as a priced cycle consequence per model.
        assert all(delta > 0 for delta in drift.cycle_deltas.values())
    else:
        # Tail-column sabotage leaves the derived count pricing untouched:
        # the drift is the tail term itself, not a cycle consequence.
        assert all(delta == 0 for delta in drift.cycle_deltas.values())
    rendered = diff.render()
    assert class_name in rendered and "WORSENED" in rendered


def test_improvements_are_drift_too(gate_targets):
    """A better bound still fails the gate: goldens are acknowledgements."""
    contract, _ = gate_targets["bridge"]
    payload = contract_to_json(contract)
    term = payload["entries"][0]["exprs"]["instructions"][0]
    term[1] = str(Fraction(str(term[1])) - 1)
    improved = contract_from_json(payload)
    diff = diff_contracts(contract, improved)
    assert not diff.ok
    assert diff.worsened_classes == []  # improved, not worsened...
    assert diff.drifted  # ...but drift nonetheless
    assert "improved" in diff.render()


def test_added_and_removed_classes_are_reported(gate_targets):
    contract, _ = gate_targets["router"]
    payload = contract_to_json(contract)
    dropped = payload["entries"].pop()["class"]
    golden = contract_from_json(payload)
    diff = diff_contracts(golden, contract)
    assert diff.added == (dropped,)
    assert not diff.ok
    assert dropped in diff.worsened_classes
    reverse = diff_contracts(contract, golden)
    assert reverse.removed == (dropped,)


def test_doctored_firewall_golden_turns_the_gate_red(tmp_path, capsys):
    """The satellite's sabotage check, through the CLI gate itself: doctor
    the committed firewall golden's ``outbound_new`` constant and the
    contract-diff command must exit 1 naming the class."""
    golden_dir = Path(__file__).parent / "golden"
    sandbox = tmp_path / "golden"
    sandbox.mkdir()
    for path in golden_dir.glob("*.json"):
        (sandbox / path.name).write_text(path.read_text())
    payload = json.loads((sandbox / "firewall.json").read_text())
    entry = next(e for e in payload["entries"] if e["class"] == "outbound_new")
    constant = next(t for t in entry["exprs"]["instructions"] if t[0] == [])
    constant[1] = str(int(constant[1]) - 5)  # golden promises less: tree worsened
    (sandbox / "firewall.json").write_text(json.dumps(payload))
    assert cli.main(["contract-diff", "--golden", str(sandbox), "--nf", "firewall"]) == 1
    printed = capsys.readouterr().out
    assert "outbound_new" in printed and "WORSENED" in printed
    assert "CONTRACT DIFF FAILED" in printed
    # The untouched goldens in the same sandbox still pass on their own.
    capsys.readouterr()
    assert cli.main(["contract-diff", "--golden", str(sandbox), "--nf", "monitor"]) == 0


def test_doctored_tail_column_turns_the_gate_red(tmp_path, capsys):
    """Tail drift is drift: lowering the NAT golden's ``cycles_p99``
    constant (the golden promises a tighter tail than the tree delivers)
    must fail contract-diff naming the class and the percentile column."""
    golden_dir = Path(__file__).parent / "golden"
    sandbox = tmp_path / "golden"
    sandbox.mkdir()
    for path in golden_dir.glob("*.json"):
        (sandbox / path.name).write_text(path.read_text())
    payload = json.loads((sandbox / "nat.json").read_text())
    entry = next(e for e in payload["entries"] if e["class"] == "external_miss")
    constant = next(t for t in entry["exprs"]["cycles_p99"] if t[0] == [])
    constant[1] = str(Fraction(str(constant[1])) - Fraction(1, 2))
    (sandbox / "nat.json").write_text(json.dumps(payload))
    assert cli.main(["contract-diff", "--golden", str(sandbox), "--nf", "nat"]) == 1
    printed = capsys.readouterr().out
    assert "external_miss" in printed and "WORSENED" in printed
    assert "cycles_p99" in printed
    # A tail-only regression has no count-derived cycle consequence.
    assert "cycles@simulated: 0 at PCV bounds" in printed
    assert "CONTRACT DIFF FAILED" in printed


def test_checked_in_goldens_match_the_tree(gate_targets):
    """The gate itself, as a test: the committed goldens describe HEAD."""
    golden_dir = Path(__file__).parent / "golden"
    for name, (contract, _) in gate_targets.items():
        golden = load_contract(str(golden_dir / f"{name}.json"))
        diff = diff_contracts(golden, contract)
        assert diff.ok, f"{name}: {diff.render()}"
