"""Property-based bound checks: "any trace ≤ contract", not just samples.

The per-structure tests in ``test_structures.py`` replay hand-picked
streams; here seeded random op-sequence generators drive each of the six
structures through 500+ traced operations across several seeds, asserting
the charged cost of *every* call stays under its hand-contract entry (with
at least one strictly-cheaper fast path per sequence, so the bound is not
a tautology).  The NF half replays random packet streams through every
registered NF at bench geometry and asserts the generated contract is
never violated under either hardware model.
"""

import random

import pytest

from repro import cli
from repro.core import Metric
from repro.nfil import ExecutionTrace, Interpreter
from repro.structures import (
    NOT_FOUND,
    ChainingHashMap,
    CountMinSketch,
    ExpiringMap,
    LpmTrie,
    MaglevTable,
    PortAllocator,
)
from repro.structures.lpm import MAX_DEPTH
from repro.structures.validation import operation_module
from repro.traffic.replayer import Replayer

SEEDS = (7, 1009, 20190226)
OPS_PER_SEED = 180  # × 3 seeds ⇒ 540 traced ops per structure


class OpDriver:
    """Replays random ops through a structure's NFIL extern drivers.

    The (module, function) pair per method is built once and reused —
    ``operation_module`` is pure per (structure, method) and rebuilding it
    540 times would dominate the runtime of these tests.
    """

    def __init__(self, structure):
        self.structure = structure
        self.trace = ExecutionTrace()
        self._drivers = {}

    def call(self, method, *args):
        driver = self._drivers.get(method)
        if driver is None:
            driver = operation_module(self.structure, method)
            self._drivers[method] = driver
        module, function = driver
        interp = Interpreter(module, handler=self.structure)
        result, _ = interp.run(function, list(args), trace=self.trace)
        return result

    def assert_bounded(self, *, min_ops):
        """Every traced call ≤ its hand-contract entry; ≥1 strict somewhere."""
        contract = self.structure.operation_contract()
        assert len(self.trace.extern_calls) >= min_ops
        strict = 0
        for call in self.trace.extern_calls:
            method = call.name[len(self.structure.name) + 1 :]
            entry = contract.entry_for(method)
            bindings = {name: 0 for name in contract.registry.names()}
            bindings.update(call.pcvs)
            predicted_instr = entry.evaluate(Metric.INSTRUCTIONS, bindings)
            predicted_mem = entry.evaluate(Metric.MEMORY_ACCESSES, bindings)
            assert predicted_instr >= call.instructions, (
                f"{self.structure.name}.{method}: "
                f"{predicted_instr} < {call.instructions} at {dict(call.pcvs)}"
            )
            assert predicted_mem >= call.memory_accesses, (
                f"{self.structure.name}.{method}: "
                f"{predicted_mem} < {call.memory_accesses} at {dict(call.pcvs)}"
            )
            if predicted_instr > call.instructions:
                strict += 1
        assert strict > 0


# --------------------------------------------------------------------------- #
# Structures
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_hashmap_random_sequences_stay_bounded(seed):
    driver = OpDriver(ChainingHashMap("flow", capacity=16, buckets=4))
    rng = random.Random(seed)
    for n in range(OPS_PER_SEED):
        key = rng.randrange(32)  # 2× capacity: drops and misses happen
        roll = rng.random()
        if roll < 0.45:
            driver.call("put", key, rng.randrange(NOT_FOUND))
        elif roll < 0.85:
            driver.call("get", key)
        else:
            driver.call("remove", key)
    driver.assert_bounded(min_ops=OPS_PER_SEED)


@pytest.mark.parametrize("seed", SEEDS)
def test_expiring_map_random_sequences_stay_bounded(seed):
    driver = OpDriver(ExpiringMap("table", capacity=16, timeout=50, buckets=4))
    rng = random.Random(seed)
    now = 0
    for n in range(OPS_PER_SEED):
        key = rng.randrange(32)
        roll = rng.random()
        if roll < 0.4:
            driver.call("put", key, rng.randrange(NOT_FOUND))
        elif roll < 0.75:
            driver.call("get", key)
        else:
            # Time only moves forward; occasional full-revolution jumps
            # exercise the capped-sweep worst case (w = wheel_slots).
            now += rng.choice((0, 1, 3, 7, 120))
            driver.call("expire", now)
    driver.assert_bounded(min_ops=OPS_PER_SEED)


@pytest.mark.parametrize("seed", SEEDS)
def test_lpm_trie_random_sequences_stay_bounded(seed):
    trie = LpmTrie("fib")
    rng = random.Random(seed)
    for _ in range(24):  # routes installed host-side, then looked up
        length = rng.randrange(0, 33)
        prefix = rng.randrange(1 << 32) & (((1 << length) - 1) << (32 - length))
        trie.add_route(prefix, length, rng.randrange(1, 1 << 32))
    driver = OpDriver(trie)
    for _ in range(OPS_PER_SEED):
        driver.call("lookup", rng.randrange(1 << 32))
    driver.assert_bounded(min_ops=OPS_PER_SEED)
    assert max(
        call.pcvs.get("fib.d", 0) for call in driver.trace.extern_calls
    ) <= MAX_DEPTH


@pytest.mark.parametrize("seed", SEEDS)
def test_port_allocator_random_sequences_stay_bounded(seed):
    pool = list(range(1024, 1024 + 12))
    driver = OpDriver(PortAllocator("ports", pool=pool))
    rng = random.Random(seed)
    leased = []
    for _ in range(OPS_PER_SEED):
        if rng.random() < 0.6:
            port = driver.call("alloc")
            if port != NOT_FOUND:
                leased.append(port)
        else:
            # Mostly valid releases, sometimes a bogus port (fast path).
            if leased and rng.random() < 0.8:
                driver.call("release", leased.pop(rng.randrange(len(leased))))
            else:
                driver.call("release", rng.randrange(1 << 16))
    driver.assert_bounded(min_ops=OPS_PER_SEED)


@pytest.mark.parametrize("seed", SEEDS)
def test_maglev_random_sequences_stay_bounded(seed):
    driver = OpDriver(MaglevTable("lb", table_size=13, max_backends=4))
    rng = random.Random(seed)
    for _ in range(OPS_PER_SEED):
        roll = rng.random()
        backend = rng.randrange(8)  # collides with the 4-backend cap
        if roll < 0.15:
            driver.call("add", backend)
        elif roll < 0.25:
            driver.call("remove", backend)
        elif roll < 0.35:
            driver.call("active", backend)
        else:
            driver.call("lookup", rng.randrange(1 << 32))
    driver.assert_bounded(min_ops=OPS_PER_SEED)


@pytest.mark.parametrize("seed", SEEDS)
def test_sketch_random_sequences_stay_bounded(seed):
    """A small geometry (width 16, ceiling 8) over 32 keys guarantees both
    fast paths fire: early queries see zero counters, and sustained
    updates saturate rows — each strictly under the constant formula."""
    driver = OpDriver(CountMinSketch("cms", depth=4, width=16, counter_max=8))
    rng = random.Random(seed)
    for _ in range(OPS_PER_SEED):
        key = rng.randrange(32)
        if rng.random() < 0.6:
            driver.call("update", key)
        else:
            driver.call("query", key)
    driver.assert_bounded(min_ops=OPS_PER_SEED)


# --------------------------------------------------------------------------- #
# NFs: random packet streams never violate the generated contract
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("nf_name", [spec.name for spec in cli.NF_MATRIX])
@pytest.mark.parametrize("seed", (3, 404))
def test_random_streams_never_violate_nf_contracts(nf_name, seed, nf_specs, gate_targets):
    """Replay every bench workload family at a fresh seed: zero violations
    under both hardware models — the statement the bench samples, asserted
    at seeds the bench never ran."""
    spec = nf_specs[nf_name]
    contract, _ = gate_targets[nf_name]
    models = cli._bench_models()
    for workload in spec.bench_workloads(seed, 250):
        result = Replayer(workload.harness, contract, models=models).replay(
            workload.stimuli, workload=workload.name
        )
        assert result.ok, result.violations[:3]
        assert result.violations == []
