"""Direct coverage for the Distiller (previously only exercised end-to-end)."""

from fractions import Fraction

import pytest

from repro.core import (
    ContractEntry,
    Distiller,
    InputClass,
    Metric,
    PerfExpr,
    PerformanceContract,
)
from repro.core.pcv import PCV, PCVRegistry
from repro.hw import ConservativeModel, HwSpec
from repro.nf.bridge import generate_bridge_contract


def _contract(exprs_by_class):
    registry = PCVRegistry(
        [
            PCV("t", "traversals", max_value=10),
            PCV("e", "expired entries", max_value=4),
        ]
    )
    contract = PerformanceContract("toy_nf", registry=registry)
    for name, expr in exprs_by_class.items():
        contract.add_entry(
            ContractEntry(input_class=InputClass(name), exprs={Metric.INSTRUCTIONS: expr})
        )
    return contract


def test_threshold_validation():
    contract = _contract({"all": PerfExpr.from_terms(t=1)})
    with pytest.raises(ValueError):
        Distiller(contract).distill(relative_threshold=1.0)
    with pytest.raises(ValueError):
        Distiller(contract).distill(relative_threshold=-0.1)


def test_small_terms_are_dropped():
    # Worst case: 1000·10 from t, 1 from the constant -> const is noise.
    contract = _contract({"all": PerfExpr.from_terms(t=1000, const=1)})
    report = Distiller(contract).distill(relative_threshold=0.05)
    entry = report.entry_for("all")
    assert entry.simplified == PerfExpr.from_terms(t=1000)
    assert entry.original == PerfExpr.from_terms(t=1000, const=1)
    assert 0 < entry.dropped_share < Fraction(1, 100)
    assert "% dropped" in entry.render()


def test_at_least_the_largest_term_survives():
    contract = _contract({"all": PerfExpr.from_terms(t=1, e=30)})
    # e's worst case (120) dominates t's (10); an extreme threshold keeps
    # only the single largest contribution.
    report = Distiller(contract).distill(relative_threshold=0.99)
    entry = report.entry_for("all")
    assert entry.simplified == PerfExpr.from_terms(e=30)
    assert entry.dropped_share == Fraction(10, 130)


def test_zero_expression_distils_to_itself():
    contract = _contract({"all": PerfExpr.zero()})
    entry = Distiller(contract).distill().entry_for("all")
    assert entry.simplified == PerfExpr.zero()
    assert entry.dropped_share == 0
    assert entry.dominant_pcv is None


def test_dominant_pcv_and_report_rendering():
    contract = _contract(
        {
            "fast": PerfExpr.from_terms(t=2, const=9),
            "slow": PerfExpr.from_terms(t=2, e=50, const=9),
        }
    )
    report = Distiller(contract).distill()
    assert report.entry_for("fast").dominant_pcv == "t"
    assert report.entry_for("slow").dominant_pcv == "e"
    text = report.render()
    assert "toy_nf" in text and "fast:" in text and "[dominant: e]" in text
    with pytest.raises(KeyError):
        report.entry_for("missing")


def test_explicit_bounds_override_registry_bounds():
    contract = _contract({"all": PerfExpr.from_terms(t=1, e=1)})
    # With e's bound forced tiny, the e term becomes droppable noise.
    report = Distiller(contract).distill(
        relative_threshold=0.2, bounds={"t": 100, "e": 1}
    )
    assert report.entry_for("all").simplified == PerfExpr.from_terms(t=1)


def test_distill_cycles_through_a_hardware_model():
    contract = generate_bridge_contract(16, 50)
    model = ConservativeModel(HwSpec())
    report = Distiller(contract).distill_cycles(model)
    assert report.metric is Metric.CYCLES
    assert set(e.class_name for e in report.entries) == {"short", "miss", "hairpin", "hit"}
    # Cycle expressions dominate the instruction expressions they derive from.
    for entry in report.entries:
        source = contract.entry_for(entry.class_name).expr(Metric.INSTRUCTIONS)
        for monomial, coeff in source.terms.items():
            assert entry.original.terms[monomial] >= coeff


# --------------------------------------------------------------------------- #
# Human-level term resolution (the §4 deepening behind the diff reports)
# --------------------------------------------------------------------------- #
def test_resolve_pcv_prefers_registry_descriptions():
    from repro.core import resolve_pcv

    registry = PCVRegistry([PCV("fwd.t", "chain links inspected", structure="fwd")])
    assert resolve_pcv("fwd.t", registry) == "fwd: chain links inspected"


def test_resolve_pcv_falls_back_to_conventional_symbols():
    from repro.core import resolve_pcv

    # No registry: the local symbol's conventional meaning, instance-prefixed.
    assert resolve_pcv("rev.t") == "rev: hash-chain links traversed (collision-driven)"
    assert resolve_pcv("f") == "Maglev fill iterations of one table repopulation"
    # Unknown symbols resolve to themselves rather than inventing prose.
    assert resolve_pcv("zz") == "zz"


def test_explain_term_renders_constants_and_monomials():
    from repro.core import explain_term

    assert explain_term((), Fraction(882)) == "882 (constant)"
    line = explain_term(("fwd.t",), Fraction(12))
    assert line.startswith("12 × fwd.t — ")
    assert "hash-chain links traversed" in line
    assert explain_term(("t",), Fraction(9, 2)).startswith("4.50 × t")


def test_distiller_explain_reports_shares_and_dominants():
    contract = _contract(
        {"slow": PerfExpr.from_terms(t=2, e=50, const=9)}
    )
    text = Distiller(contract).explain(Metric.INSTRUCTIONS)
    assert "toy_nf" in text and "slow:" in text
    assert "% of worst case)" in text
    assert "dominant: e — expired entries" in text
    # Terms come out largest-share first: e (200) before t (20).
    assert text.index("50 × e") < text.index("2 × t")
