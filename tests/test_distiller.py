"""Direct coverage for the Distiller (previously only exercised end-to-end)."""

from fractions import Fraction

import pytest

from repro.core import (
    ContractEntry,
    Distiller,
    InputClass,
    Metric,
    PerfExpr,
    PerformanceContract,
)
from repro.core.pcv import PCV, PCVRegistry
from repro.hw import ConservativeModel, HwSpec
from repro.nf.bridge import generate_bridge_contract


def _contract(exprs_by_class):
    registry = PCVRegistry(
        [
            PCV("t", "traversals", max_value=10),
            PCV("e", "expired entries", max_value=4),
        ]
    )
    contract = PerformanceContract("toy_nf", registry=registry)
    for name, expr in exprs_by_class.items():
        contract.add_entry(
            ContractEntry(input_class=InputClass(name), exprs={Metric.INSTRUCTIONS: expr})
        )
    return contract


def test_threshold_validation():
    contract = _contract({"all": PerfExpr.from_terms(t=1)})
    with pytest.raises(ValueError):
        Distiller(contract).distill(relative_threshold=1.0)
    with pytest.raises(ValueError):
        Distiller(contract).distill(relative_threshold=-0.1)


def test_small_terms_are_dropped():
    # Worst case: 1000·10 from t, 1 from the constant -> const is noise.
    contract = _contract({"all": PerfExpr.from_terms(t=1000, const=1)})
    report = Distiller(contract).distill(relative_threshold=0.05)
    entry = report.entry_for("all")
    assert entry.simplified == PerfExpr.from_terms(t=1000)
    assert entry.original == PerfExpr.from_terms(t=1000, const=1)
    assert 0 < entry.dropped_share < Fraction(1, 100)
    assert "% dropped" in entry.render()


def test_at_least_the_largest_term_survives():
    contract = _contract({"all": PerfExpr.from_terms(t=1, e=30)})
    # e's worst case (120) dominates t's (10); an extreme threshold keeps
    # only the single largest contribution.
    report = Distiller(contract).distill(relative_threshold=0.99)
    entry = report.entry_for("all")
    assert entry.simplified == PerfExpr.from_terms(e=30)
    assert entry.dropped_share == Fraction(10, 130)


def test_zero_expression_distils_to_itself():
    contract = _contract({"all": PerfExpr.zero()})
    entry = Distiller(contract).distill().entry_for("all")
    assert entry.simplified == PerfExpr.zero()
    assert entry.dropped_share == 0
    assert entry.dominant_pcv is None


def test_dominant_pcv_and_report_rendering():
    contract = _contract(
        {
            "fast": PerfExpr.from_terms(t=2, const=9),
            "slow": PerfExpr.from_terms(t=2, e=50, const=9),
        }
    )
    report = Distiller(contract).distill()
    assert report.entry_for("fast").dominant_pcv == "t"
    assert report.entry_for("slow").dominant_pcv == "e"
    text = report.render()
    assert "toy_nf" in text and "fast:" in text and "[dominant: e]" in text
    with pytest.raises(KeyError):
        report.entry_for("missing")


def test_explicit_bounds_override_registry_bounds():
    contract = _contract({"all": PerfExpr.from_terms(t=1, e=1)})
    # With e's bound forced tiny, the e term becomes droppable noise.
    report = Distiller(contract).distill(
        relative_threshold=0.2, bounds={"t": 100, "e": 1}
    )
    assert report.entry_for("all").simplified == PerfExpr.from_terms(t=1)


def test_distill_cycles_through_a_hardware_model():
    contract = generate_bridge_contract(16, 50)
    model = ConservativeModel(HwSpec())
    report = Distiller(contract).distill_cycles(model)
    assert report.metric is Metric.CYCLES
    assert set(e.class_name for e in report.entries) == {"short", "miss", "hairpin", "hit"}
    # Cycle expressions dominate the instruction expressions they derive from.
    for entry in report.entries:
        source = contract.entry_for(entry.class_name).expr(Metric.INSTRUCTIONS)
        for monomial, coeff in source.terms.items():
            assert entry.original.terms[monomial] >= coeff
