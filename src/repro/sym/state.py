"""Symbolic machine state: registers, byte-addressable memory, path condition.

One :class:`SymbolicState` is one partial execution of the stateless NF
code during BOLT's path exploration (§3.1 of the paper).

The state mirrors the concrete interpreter's machine model exactly — 64-bit
registers, little-endian byte-addressable memory, a frame stack for internal
calls — except that every value is a :class:`repro.sym.expr.BV` expression
and the state additionally accumulates a path condition and the records of
extern calls made so far.

Addresses must be concrete: the NF code the paper analyses indexes packet
buffers with constant offsets, so load/store addresses constant-fold during
execution.  A genuinely symbolic address raises
:class:`SymbolicAddressError`, keeping the engine honest instead of
silently unsound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.nfil.program import Function
from repro.sym.expr import BV, Const, Sym, concat, extract, zext
from repro.sym.paths import CallRecord
from repro.sym.simplify import simplify

__all__ = ["Frame", "SymbolicAddressError", "SymbolicMemory", "SymbolicState"]

WORD_BITS = 64


class SymbolicAddressError(RuntimeError):
    """A load/store address did not constant-fold to a concrete value."""


class SymbolicMemory:
    """Byte-addressable memory holding 8-bit symbolic expressions.

    Unwritten bytes read as the constant 0, matching the concrete
    :class:`repro.nfil.interpreter.Memory`.
    """

    def __init__(self) -> None:
        self._bytes: Dict[int, BV] = {}

    def read(self, addr: int, size: int) -> BV:
        """Read ``size`` bytes little-endian, zero-extended to 64 bits."""
        parts = [self._bytes.get(addr + offset, Const(0, 8)) for offset in range(size)]
        return zext(concat(parts), WORD_BITS)

    def write(self, addr: int, value: BV, size: int) -> None:
        """Write the low ``size`` bytes of ``value`` little-endian."""
        for offset in range(size):
            self._bytes[addr + offset] = extract(value, offset * 8, 8)

    def write_symbolic(self, addr: int, size: int, prefix: str) -> List[Sym]:
        """Fill ``[addr, addr+size)`` with fresh byte symbols.

        Bytes are named ``f"{prefix}[{i}]"`` so a concrete byte buffer maps
        directly onto an evaluation environment.
        """
        symbols: List[Sym] = []
        for offset in range(size):
            symbol = Sym(f"{prefix}[{offset}]", 8)
            self._bytes[addr + offset] = symbol
            symbols.append(symbol)
        return symbols

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write concrete bytes (e.g. a fixed header template)."""
        for offset, byte in enumerate(data):
            self._bytes[addr + offset] = Const(byte, 8)

    def clone(self) -> "SymbolicMemory":
        """Return an independent copy (cheap: expressions are immutable)."""
        copy = SymbolicMemory()
        copy._bytes = dict(self._bytes)
        return copy


@dataclass
class Frame:
    """One activation record of the symbolic machine."""

    function: Function
    block: str
    index: int
    registers: Dict[str, BV]
    ret_dest: Optional[str] = None

    def clone(self) -> "Frame":
        return Frame(
            function=self.function,
            block=self.block,
            index=self.index,
            registers=dict(self.registers),
            ret_dest=self.ret_dest,
        )


@dataclass
class SymbolicState:
    """The full symbolic machine state of one in-flight path."""

    memory: SymbolicMemory = field(default_factory=SymbolicMemory)
    frames: List[Frame] = field(default_factory=list)
    path_condition: List[BV] = field(default_factory=list)
    calls: List[CallRecord] = field(default_factory=list)
    instructions: int = 0
    memory_accesses: int = 0
    steps: int = 0
    returned: Optional[BV] = None
    finished: bool = False

    # ------------------------------------------------------------------ #
    # Register file (top frame)
    # ------------------------------------------------------------------ #
    @property
    def frame(self) -> Frame:
        return self.frames[-1]

    def get_reg(self, name: str) -> BV:
        try:
            return self.frame.registers[name]
        except KeyError:
            raise KeyError(
                f"{self.frame.function.name}: read of undefined register %{name}",
            ) from None

    def set_reg(self, name: str, value: BV) -> None:
        self.frame.registers[name] = value

    # ------------------------------------------------------------------ #
    # Path condition and memory
    # ------------------------------------------------------------------ #
    def assume(self, constraint: BV) -> None:
        """Conjoin ``constraint`` to the path condition (tautologies dropped)."""
        if isinstance(constraint, Const):
            if constraint.value == 1:
                return
        self.path_condition.append(constraint)

    def concrete_addr(self, addr: BV) -> int:
        """Fold an address expression to a concrete value, or raise."""
        folded = simplify(addr)
        if isinstance(folded, Const):
            return folded.value
        raise SymbolicAddressError(f"address did not fold to a constant: {folded!r}")

    def load(self, addr: BV, size: int) -> BV:
        self.memory_accesses += 1
        return self.memory.read(self.concrete_addr(addr), size)

    def store(self, addr: BV, value: BV, size: int) -> None:
        self.memory_accesses += 1
        self.memory.write(self.concrete_addr(addr), value, size)

    # ------------------------------------------------------------------ #
    # Forking
    # ------------------------------------------------------------------ #
    def clone(self) -> "SymbolicState":
        """Return an independent copy for path forking."""
        return SymbolicState(
            memory=self.memory.clone(),
            frames=[frame.clone() for frame in self.frames],
            path_condition=list(self.path_condition),
            calls=list(self.calls),
            instructions=self.instructions,
            memory_accesses=self.memory_accesses,
            steps=self.steps,
            returned=self.returned,
            finished=self.finished,
        )
