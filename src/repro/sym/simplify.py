"""Algebraic simplification and substitution for symbolic expressions.

The smart constructors in :mod:`repro.sym.expr` already fold constants; this
module adds whole-tree rewriting (useful after substituting a model back
into an expression) and symbol substitution, which the solver (§3.3 of the
paper: path-feasibility checking and witness generation) relies on for
unit propagation and search-space pruning.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.sym import expr as E
from repro.sym.expr import (
    BV,
    BinOp,
    BoolOp,
    Cmp,
    Concat,
    Const,
    Extract,
    Ite,
    Not,
    Sym,
    ZExt,
)

__all__ = ["simplify", "substitute"]


def _rebuild(node: BV, children: list[BV]) -> BV:
    """Rebuild ``node`` with new children, going through smart constructors."""
    if isinstance(node, BinOp):
        return E.binop(node.op, children[0], children[1])
    if isinstance(node, Cmp):
        return E.cmp(node.op, children[0], children[1])
    if isinstance(node, Not):
        return E.bnot(children[0])
    if isinstance(node, BoolOp):
        if node.op == "and":
            return E.bool_and(*children)
        return E.bool_or(*children)
    if isinstance(node, Ite):
        return E.ite(children[0], children[1], children[2])
    if isinstance(node, Extract):
        return E.extract(children[0], node.lo, node.width)
    if isinstance(node, Concat):
        return E.concat(children)
    if isinstance(node, ZExt):
        return E.zext(children[0], node.width)
    return node


def _post_rules(node: BV) -> BV:
    """Apply local rewrite rules that the smart constructors do not cover."""
    # (ite(c, a, b) == k) with constant a, b, k collapses to c, !c or a constant.
    if isinstance(node, Cmp) and node.op in ("eq", "ne"):
        ite_side = None
        const_side = None
        if isinstance(node.a, Ite) and isinstance(node.b, Const):
            ite_side, const_side = node.a, node.b
        elif isinstance(node.b, Ite) and isinstance(node.a, Const):
            ite_side, const_side = node.b, node.a
        if (
            ite_side is not None
            and isinstance(ite_side.then, Const)
            and isinstance(ite_side.orelse, Const)
        ):
            then_matches = ite_side.then.value == const_side.value
            else_matches = ite_side.orelse.value == const_side.value
            if node.op == "ne":
                then_matches, else_matches = not then_matches, not else_matches
            if then_matches and else_matches:
                return Const(1, 1)
            if not then_matches and not else_matches:
                return Const(0, 1)
            if then_matches:
                return ite_side.cond
            return E.bnot(ite_side.cond)
    # zext(x) compared against a constant that fits in x's width folds to a
    # comparison at the narrower width.  Sound only for equality and the
    # unsigned predicates: signed comparisons change meaning when the
    # constant's sign bit differs between the two widths.
    if (
        isinstance(node, Cmp)
        and node.op in ("eq", "ne", "ult", "ule", "ugt", "uge")
        and isinstance(node.b, Const)
        and isinstance(node.a, ZExt)
        and node.b.value <= E.mask(node.a.value.width)
    ):
        return E.cmp(node.op, node.a.value, Const(node.b.value, node.a.value.width))
    return node


def simplify(node: BV) -> BV:
    """Simplify an expression bottom-up."""
    cache: Dict[int, BV] = {}

    def walk(current: BV) -> BV:
        key = id(current)
        if key in cache:
            return cache[key]
        children = [walk(child) for child in current.children()]
        if children:
            rebuilt = _rebuild(current, children)
        else:
            rebuilt = current
        rebuilt = _post_rules(rebuilt)
        cache[key] = rebuilt
        return rebuilt

    return walk(node)


def substitute(node: BV, bindings: Mapping[str, int | BV]) -> BV:
    """Substitute symbols by integers or expressions and simplify the result.

    Integer bindings are wrapped into constants of the symbol's width.
    """
    cache: Dict[int, BV] = {}

    def walk(current: BV) -> BV:
        key = id(current)
        if key in cache:
            return cache[key]
        if isinstance(current, Sym) and current.name in bindings:
            replacement = bindings[current.name]
            if isinstance(replacement, BV):
                if replacement.width != current.width:
                    raise ValueError(
                        f"substitution width mismatch for {current.name}: "
                        f"{replacement.width} != {current.width}"
                    )
                result: BV = replacement
            else:
                result = Const(int(replacement), current.width)
        else:
            children = [walk(child) for child in current.children()]
            result = _rebuild(current, children) if children else current
            result = _post_rules(result)
        cache[key] = result
        return result

    return walk(node)
