"""Bit-vector expression language used by the symbolic-execution engine.

The paper's BOLT symbolically executes the stateless NF code over
bit-vector expressions (§3.1); this module is the reproduction's stand-in
for the KLEE expression layer the prototype builds on.

Expressions are immutable trees of fixed-width unsigned bit-vectors.  A
width of 1 doubles as the boolean type (0 = false, 1 = true), which keeps
the machinery small without losing anything the NF code needs.

Smart constructors (:func:`add`, :func:`eq`, ...) perform constant folding
and a handful of cheap algebraic simplifications at construction time;
deeper rewrites live in :mod:`repro.sym.simplify`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

__all__ = [
    "BV",
    "BinOp",
    "BoolOp",
    "Cmp",
    "Concat",
    "Const",
    "Extract",
    "Ite",
    "Not",
    "Sym",
    "ZExt",
    "add",
    "band",
    "bnot",
    "bool_and",
    "bool_or",
    "bor",
    "bxor",
    "compile_conjunction",
    "compile_evaluator",
    "concat",
    "const",
    "eq",
    "evaluate",
    "extract",
    "free_symbols",
    "ite",
    "lshr",
    "mul",
    "ne",
    "sdiv",
    "sge",
    "sgt",
    "shl",
    "sle",
    "slt",
    "sub",
    "udiv",
    "uge",
    "ugt",
    "ule",
    "ult",
    "urem",
    "zext",
]


def mask(width: int) -> int:
    """Return the bit mask for ``width`` bits."""
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to an unsigned ``width``-bit integer."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Reinterpret an unsigned ``width``-bit value as two's complement."""
    value = truncate(value, width)
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


class BV:
    """Base class of all bit-vector expressions."""

    __slots__ = ("width",)

    width: int

    def children(self) -> Tuple["BV", ...]:
        """Return the sub-expressions of this node."""
        return ()

    def is_const(self) -> bool:
        """Return True for literal constants."""
        return isinstance(self, Const)

    # Convenience operator overloads make the builders and the symbolic
    # models considerably more readable.
    def __add__(self, other: "BV | int") -> "BV":
        return add(self, _coerce(other, self.width))

    def __sub__(self, other: "BV | int") -> "BV":
        return sub(self, _coerce(other, self.width))

    def __mul__(self, other: "BV | int") -> "BV":
        return mul(self, _coerce(other, self.width))

    def __and__(self, other: "BV | int") -> "BV":
        return band(self, _coerce(other, self.width))

    def __or__(self, other: "BV | int") -> "BV":
        return bor(self, _coerce(other, self.width))

    def __xor__(self, other: "BV | int") -> "BV":
        return bxor(self, _coerce(other, self.width))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {render(self)}>"


def _coerce(value: "BV | int", width: int) -> BV:
    if isinstance(value, BV):
        return value
    return Const(int(value), width)


@dataclass(frozen=True, slots=True)
class Const(BV):
    """A literal ``width``-bit constant."""

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        object.__setattr__(self, "value", truncate(self.value, self.width))


@dataclass(frozen=True, slots=True)
class Sym(BV):
    """A free symbolic variable."""

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if not self.name:
            raise ValueError("symbol name must not be empty")


@dataclass(frozen=True, slots=True)
class BinOp(BV):
    """A binary arithmetic/bitwise operation."""

    op: str
    a: BV
    b: BV
    width: int

    def children(self) -> Tuple[BV, ...]:
        return (self.a, self.b)


@dataclass(frozen=True, slots=True)
class Cmp(BV):
    """A comparison; always of width 1."""

    op: str
    a: BV
    b: BV
    width: int = 1

    def children(self) -> Tuple[BV, ...]:
        return (self.a, self.b)


@dataclass(frozen=True, slots=True)
class Not(BV):
    """Boolean negation of a width-1 expression."""

    a: BV
    width: int = 1

    def children(self) -> Tuple[BV, ...]:
        return (self.a,)


@dataclass(frozen=True, slots=True)
class BoolOp(BV):
    """N-ary boolean conjunction/disjunction of width-1 expressions."""

    op: str  # "and" | "or"
    parts: Tuple[BV, ...]
    width: int = 1

    def children(self) -> Tuple[BV, ...]:
        return self.parts


@dataclass(frozen=True, slots=True)
class Ite(BV):
    """If-then-else on a width-1 condition."""

    cond: BV
    then: BV
    orelse: BV
    width: int

    def children(self) -> Tuple[BV, ...]:
        return (self.cond, self.then, self.orelse)


@dataclass(frozen=True, slots=True)
class Extract(BV):
    """Bit extraction: bits ``[lo, lo+width)`` of ``value``."""

    value: BV
    lo: int
    width: int

    def children(self) -> Tuple[BV, ...]:
        return (self.value,)


@dataclass(frozen=True, slots=True)
class Concat(BV):
    """Concatenation; ``parts[0]`` is the least significant part."""

    parts: Tuple[BV, ...]
    width: int

    def children(self) -> Tuple[BV, ...]:
        return self.parts


@dataclass(frozen=True, slots=True)
class ZExt(BV):
    """Zero extension to a wider bit-vector."""

    value: BV
    width: int

    def children(self) -> Tuple[BV, ...]:
        return (self.value,)


# --------------------------------------------------------------------------- #
# Smart constructors
# --------------------------------------------------------------------------- #
def _sdiv(a: int, b: int) -> int:
    """Signed division truncating toward zero, exact for any width."""
    if b == 0:
        return -1
    quotient = abs(a) // abs(b)
    return quotient if (a < 0) == (b < 0) else -quotient


_COMMUTATIVE = {"add", "mul", "and", "or", "xor"}

_BINOP_FUNCS = {
    "add": lambda a, b, w: truncate(a + b, w),
    "sub": lambda a, b, w: truncate(a - b, w),
    "mul": lambda a, b, w: truncate(a * b, w),
    "udiv": lambda a, b, w: truncate(a // b, w) if b != 0 else mask(w),
    "urem": lambda a, b, w: truncate(a % b, w) if b != 0 else a,
    "sdiv": lambda a, b, w: truncate(_sdiv(to_signed(a, w), to_signed(b, w)), w),
    "and": lambda a, b, w: a & b,
    "or": lambda a, b, w: a | b,
    "xor": lambda a, b, w: a ^ b,
    "shl": lambda a, b, w: truncate(a << b, w) if b < w else 0,
    "lshr": lambda a, b, w: (a >> b) if b < w else 0,
}

_CMP_FUNCS = {
    "eq": lambda a, b, w: int(a == b),
    "ne": lambda a, b, w: int(a != b),
    "ult": lambda a, b, w: int(a < b),
    "ule": lambda a, b, w: int(a <= b),
    "ugt": lambda a, b, w: int(a > b),
    "uge": lambda a, b, w: int(a >= b),
    "slt": lambda a, b, w: int(to_signed(a, w) < to_signed(b, w)),
    "sle": lambda a, b, w: int(to_signed(a, w) <= to_signed(b, w)),
    "sgt": lambda a, b, w: int(to_signed(a, w) > to_signed(b, w)),
    "sge": lambda a, b, w: int(to_signed(a, w) >= to_signed(b, w)),
}


def const(value: int, width: int) -> Const:
    """Build a constant."""
    return Const(value, width)


def _check_same_width(a: BV, b: BV) -> int:
    if a.width != b.width:
        raise ValueError(f"width mismatch: {a.width} vs {b.width}")
    return a.width


def binop(op: str, a: BV, b: BV) -> BV:
    """Build a binary operation with constant folding."""
    if op not in _BINOP_FUNCS:
        raise ValueError(f"unknown binary op {op!r}")
    width = _check_same_width(a, b)
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(_BINOP_FUNCS[op](a.value, b.value, width), width)
    # Canonicalise commutative operations: constant on the right.
    if op in _COMMUTATIVE and isinstance(a, Const) and not isinstance(b, Const):
        a, b = b, a
    if isinstance(b, Const):
        bval = b.value
        if op in ("add", "sub", "or", "xor", "shl", "lshr") and bval == 0:
            return a
        if op == "mul":
            if bval == 0:
                return Const(0, width)
            if bval == 1:
                return a
        if op == "and":
            if bval == 0:
                return Const(0, width)
            if bval == mask(width):
                return a
        if op in ("udiv", "sdiv") and bval == 1:
            return a
    if op == "sub" and a is b:
        return Const(0, width)
    if op == "xor" and a is b:
        return Const(0, width)
    return BinOp(op, a, b, width)


def cmp(op: str, a: BV, b: BV) -> BV:
    """Build a comparison with constant folding."""
    if op not in _CMP_FUNCS:
        raise ValueError(f"unknown comparison {op!r}")
    width = _check_same_width(a, b)
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(_CMP_FUNCS[op](a.value, b.value, width), 1)
    if a == b:
        if op in ("eq", "ule", "uge", "sle", "sge"):
            return Const(1, 1)
        if op in ("ne", "ult", "ugt", "slt", "sgt"):
            return Const(0, 1)
    return Cmp(op, a, b)


def add(a: BV, b: BV) -> BV:
    return binop("add", a, b)


def sub(a: BV, b: BV) -> BV:
    return binop("sub", a, b)


def mul(a: BV, b: BV) -> BV:
    return binop("mul", a, b)


def udiv(a: BV, b: BV) -> BV:
    return binop("udiv", a, b)


def urem(a: BV, b: BV) -> BV:
    return binop("urem", a, b)


def sdiv(a: BV, b: BV) -> BV:
    return binop("sdiv", a, b)


def band(a: BV, b: BV) -> BV:
    return binop("and", a, b)


def bor(a: BV, b: BV) -> BV:
    return binop("or", a, b)


def bxor(a: BV, b: BV) -> BV:
    return binop("xor", a, b)


def shl(a: BV, b: BV) -> BV:
    return binop("shl", a, b)


def lshr(a: BV, b: BV) -> BV:
    return binop("lshr", a, b)


def eq(a: BV, b: BV) -> BV:
    return cmp("eq", a, b)


def ne(a: BV, b: BV) -> BV:
    return cmp("ne", a, b)


def ult(a: BV, b: BV) -> BV:
    return cmp("ult", a, b)


def ule(a: BV, b: BV) -> BV:
    return cmp("ule", a, b)


def ugt(a: BV, b: BV) -> BV:
    return cmp("ugt", a, b)


def uge(a: BV, b: BV) -> BV:
    return cmp("uge", a, b)


def slt(a: BV, b: BV) -> BV:
    return cmp("slt", a, b)


def sle(a: BV, b: BV) -> BV:
    return cmp("sle", a, b)


def sgt(a: BV, b: BV) -> BV:
    return cmp("sgt", a, b)


def sge(a: BV, b: BV) -> BV:
    return cmp("sge", a, b)


def bnot(a: BV) -> BV:
    """Boolean negation."""
    if a.width != 1:
        raise ValueError("bnot expects a width-1 expression")
    if isinstance(a, Const):
        return Const(1 - a.value, 1)
    if isinstance(a, Not):
        return a.a
    if isinstance(a, Cmp):
        negated = {
            "eq": "ne",
            "ne": "eq",
            "ult": "uge",
            "ule": "ugt",
            "ugt": "ule",
            "uge": "ult",
            "slt": "sge",
            "sle": "sgt",
            "sgt": "sle",
            "sge": "slt",
        }
        return Cmp(negated[a.op], a.a, a.b)
    return Not(a)


def _boolop(op: str, parts: Iterable[BV]) -> BV:
    flattened: list[BV] = []
    annihilator = 0 if op == "and" else 1
    identity = 1 - annihilator
    for part in parts:
        if part.width != 1:
            raise ValueError(f"boolean {op} expects width-1 operands")
        if isinstance(part, Const):
            if part.value == annihilator:
                return Const(annihilator, 1)
            continue  # identity element: drop
        if isinstance(part, BoolOp) and part.op == op:
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    if not flattened:
        return Const(identity, 1)
    if len(flattened) == 1:
        return flattened[0]
    return BoolOp(op, tuple(flattened))


def bool_and(*parts: BV) -> BV:
    """Boolean conjunction."""
    return _boolop("and", parts)


def bool_or(*parts: BV) -> BV:
    """Boolean disjunction."""
    return _boolop("or", parts)


def ite(cond: BV, then: BV, orelse: BV) -> BV:
    """If-then-else."""
    if cond.width != 1:
        raise ValueError("ite condition must have width 1")
    width = _check_same_width(then, orelse)
    if isinstance(cond, Const):
        return then if cond.value else orelse
    if then == orelse:
        return then
    return Ite(cond, then, orelse, width)


def extract(value: BV, lo: int, width: int) -> BV:
    """Extract ``width`` bits starting at bit ``lo`` (little-endian)."""
    if lo < 0 or width <= 0 or lo + width > value.width:
        raise ValueError(f"invalid extract [{lo}, {lo + width}) from width {value.width}")
    if lo == 0 and width == value.width:
        return value
    if isinstance(value, Const):
        return Const((value.value >> lo) & mask(width), width)
    if isinstance(value, ZExt):
        if lo + width <= value.value.width:
            return extract(value.value, lo, width)
        if lo >= value.value.width:
            return Const(0, width)
    if isinstance(value, Extract):
        return extract(value.value, value.lo + lo, width)
    if isinstance(value, Concat):
        # Extraction fully inside one part folds to extraction of that part.
        offset = 0
        for part in value.parts:
            if offset <= lo and lo + width <= offset + part.width:
                return extract(part, lo - offset, width)
            offset += part.width
    return Extract(value, lo, width)


def concat(parts: Sequence[BV]) -> BV:
    """Concatenate parts, least significant first."""
    if not parts:
        raise ValueError("concat requires at least one part")
    if len(parts) == 1:
        return parts[0]
    flat: list[BV] = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    # Fold adjacent constants.
    merged: list[BV] = []
    for part in flat:
        if merged and isinstance(part, Const) and isinstance(merged[-1], Const):
            prev = merged[-1]
            merged[-1] = Const(prev.value | (part.value << prev.width), prev.width + part.width)
        elif (
            merged
            and isinstance(part, Extract)
            and isinstance(merged[-1], Extract)
            and part.value == merged[-1].value
            and part.lo == merged[-1].lo + merged[-1].width
        ):
            prev = merged[-1]
            merged[-1] = extract(prev.value, prev.lo, prev.width + part.width)
        else:
            merged.append(part)
    if len(merged) == 1:
        return merged[0]
    width = sum(part.width for part in merged)
    return Concat(tuple(merged), width)


def zext(value: BV, width: int) -> BV:
    """Zero-extend ``value`` to ``width`` bits."""
    if width < value.width:
        raise ValueError("zext target width smaller than source width")
    if width == value.width:
        return value
    if isinstance(value, Const):
        return Const(value.value, width)
    return ZExt(value, width)


# --------------------------------------------------------------------------- #
# Evaluation and traversal
# --------------------------------------------------------------------------- #
def evaluate(expr: BV, env: Mapping[str, int] | None = None) -> int:
    """Evaluate ``expr`` under a concrete assignment of its symbols.

    Args:
        expr: expression to evaluate.
        env: mapping from symbol name to integer value; missing symbols
            default to 0 (useful for evaluating under partial models).

    Returns:
        The unsigned integer value of the expression, truncated to its width.
    """
    env = env or {}
    cache: Dict[int, int] = {}

    def walk(node: BV) -> int:
        key = id(node)
        if key in cache:
            return cache[key]
        if isinstance(node, Const):
            result = node.value
        elif isinstance(node, Sym):
            result = truncate(int(env.get(node.name, 0)), node.width)
        elif isinstance(node, BinOp):
            result = _BINOP_FUNCS[node.op](walk(node.a), walk(node.b), node.width)
        elif isinstance(node, Cmp):
            result = _CMP_FUNCS[node.op](walk(node.a), walk(node.b), node.a.width)
        elif isinstance(node, Not):
            result = 1 - walk(node.a)
        elif isinstance(node, BoolOp):
            if node.op == "and":
                result = int(all(walk(part) for part in node.parts))
            else:
                result = int(any(walk(part) for part in node.parts))
        elif isinstance(node, Ite):
            result = walk(node.then) if walk(node.cond) else walk(node.orelse)
        elif isinstance(node, Extract):
            result = (walk(node.value) >> node.lo) & mask(node.width)
        elif isinstance(node, Concat):
            result = 0
            shift = 0
            for part in node.parts:
                result |= walk(part) << shift
                shift += part.width
        elif isinstance(node, ZExt):
            result = walk(node.value)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot evaluate {type(node).__name__}")
        result = truncate(result, node.width)
        cache[key] = result
        return result

    return walk(expr)


def free_symbols(expr: BV) -> Dict[str, int]:
    """Return ``{symbol name: width}`` for every symbol in ``expr``."""
    symbols: Dict[str, int] = {}
    stack = [expr]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Sym):
            symbols[node.name] = node.width
        stack.extend(node.children())
    return symbols


# --------------------------------------------------------------------------- #
# Compilation to Python closures (the replay hot loop)
# --------------------------------------------------------------------------- #
# ``evaluate`` re-walks the expression tree per call; replaying 10^4+
# packets against the same contract makes that the dominant cost.  The
# compilers below translate a tree once into straight-line Python (one
# local per distinct node, so shared subtrees are computed once) and hand
# back a closure whose semantics match ``evaluate`` bit for bit —
# including truncation at every node, division-by-zero results, and
# missing symbols defaulting to 0.


class _Codegen:
    """Shared code emitter for :func:`compile_evaluator` and friends."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.names: Dict[int, str] = {}

    def walk(self, node: BV) -> str:
        key = id(node)
        cached = self.names.get(key)
        if cached is not None:
            return cached
        if isinstance(node, Const):
            # Literals are inlined; no assignment needed.
            self.names[key] = str(node.value)
            return self.names[key]
        code = self._emit(node)
        name = f"v{len(self.lines)}"
        self.lines.append(f"{name} = {code}")
        self.names[key] = name
        return name

    def _emit(self, node: BV) -> str:
        w = node.width
        m = mask(w)
        if isinstance(node, Sym):
            return f"env.get({node.name!r}, 0) & {m}"
        if isinstance(node, BinOp):
            a, b = self.walk(node.a), self.walk(node.b)
            if node.op in ("add", "sub", "mul"):
                sign = {"add": "+", "sub": "-", "mul": "*"}[node.op]
                return f"({a} {sign} {b}) & {m}"
            if node.op in ("and", "or", "xor"):
                sign = {"and": "&", "or": "|", "xor": "^"}[node.op]
                return f"{a} {sign} {b}"
            if node.op == "udiv":
                return f"({a} // {b} if {b} else {m})"
            if node.op == "urem":
                return f"({a} % {b} if {b} else {a})"
            if node.op == "sdiv":
                return f"_sdiv(_sgn({a}, {w}), _sgn({b}, {w})) & {m}"
            if node.op == "shl":
                return f"(({a} << {b}) & {m} if {b} < {w} else 0)"
            if node.op == "lshr":
                return f"({a} >> {b} if {b} < {w} else 0)"
            raise TypeError(f"cannot compile binop {node.op!r}")  # pragma: no cover
        if isinstance(node, Cmp):
            a, b = self.walk(node.a), self.walk(node.b)
            aw = node.a.width
            signs = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=", "ugt": ">", "uge": ">="}
            if node.op in signs:
                return f"(1 if {a} {signs[node.op]} {b} else 0)"
            sign = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}[node.op]
            return f"(1 if _sgn({a}, {aw}) {sign} _sgn({b}, {aw}) else 0)"
        if isinstance(node, Not):
            return f"1 - {self.walk(node.a)}"
        if isinstance(node, BoolOp):
            joiner = " and " if node.op == "and" else " or "
            return "(1 if " + joiner.join(self.walk(p) for p in node.parts) + " else 0)"
        if isinstance(node, Ite):
            cond = self.walk(node.cond)
            then, orelse = self.walk(node.then), self.walk(node.orelse)
            return f"({then} if {cond} else {orelse})"
        if isinstance(node, Extract):
            return f"({self.walk(node.value)} >> {node.lo}) & {m}"
        if isinstance(node, Concat):
            shift = 0
            parts = []
            for part in node.parts:
                code = self.walk(part)
                parts.append(code if shift == 0 else f"({code} << {shift})")
                shift += part.width
            return " | ".join(parts)
        if isinstance(node, ZExt):
            return self.walk(node.value)
        raise TypeError(f"cannot compile {type(node).__name__}")  # pragma: no cover

    def build(self, body: Sequence[str], name: str):
        lines = [f"def {name}(env):"]
        lines += [f"    {line}" for line in self.lines]
        lines += [f"    {line}" for line in body]
        namespace = {"_sdiv": _sdiv, "_sgn": to_signed}
        exec("\n".join(lines), namespace)  # noqa: S102 - generated from our own AST
        return namespace[name]


def compile_evaluator(expr: BV):
    """Compile ``expr`` into ``f(env) -> int`` equivalent to :func:`evaluate`.

    The returned closure accepts any mapping from symbol name to int
    (missing symbols read as 0, exactly like :func:`evaluate`) and is an
    order of magnitude faster on repeated calls, which is what the
    traffic replayer needs.
    """
    gen = _Codegen()
    result = gen.walk(expr)
    return gen.build([f"return {result}"], "_compiled_evaluator")


def compile_conjunction(constraints: Sequence[BV]):
    """Compile constraints into ``f(env) -> bool``: all evaluate to 1.

    Equivalent to ``all(evaluate(c, env) == 1 for c in constraints)`` (the
    :meth:`repro.sym.paths.Path.covers` loop), with shared subtrees
    computed once and later constraints skipped after the first failure.
    """
    gen = _Codegen()
    for constraint in constraints:
        value = gen.walk(constraint)
        # Emitted into the shared line stream, so each constraint's check
        # sits right after its assignments: the generated body evaluates
        # constraints in order and bails at the first failure.
        gen.lines.append(f"if {value} != 1: return False")
    return gen.build(["return True"], "_compiled_conjunction")


def render(expr: BV) -> str:
    """Render an expression as a compact string (for diagnostics)."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Sym):
        return expr.name
    if isinstance(expr, BinOp):
        return f"({render(expr.a)} {expr.op} {render(expr.b)})"
    if isinstance(expr, Cmp):
        return f"({render(expr.a)} {expr.op} {render(expr.b)})"
    if isinstance(expr, Not):
        return f"!{render(expr.a)}"
    if isinstance(expr, BoolOp):
        joiner = " && " if expr.op == "and" else " || "
        return "(" + joiner.join(render(part) for part in expr.parts) + ")"
    if isinstance(expr, Ite):
        return f"({render(expr.cond)} ? {render(expr.then)} : {render(expr.orelse)})"
    if isinstance(expr, Extract):
        return f"{render(expr.value)}[{expr.lo}:{expr.lo + expr.width}]"
    if isinstance(expr, Concat):
        return "concat(" + ", ".join(render(part) for part in expr.parts) + ")"
    if isinstance(expr, ZExt):
        return f"zext{expr.width}({render(expr.value)})"
    return repr(expr)  # pragma: no cover - defensive
