"""Per-path artefacts produced by the symbolic engine and consumed by BOLT.

A :class:`Path` is one feasible (or not-provably-infeasible) execution of
the stateless NF code: its path condition, the sequence of stateful calls it
made (:class:`CallRecord`), its exact stateless instruction/memory counts,
and a concrete input assignment that exercises it — which is what lets BOLT
replay the path through the concrete interpreter (§3.2–3.3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.sym.expr import BV, bool_and, evaluate, render

__all__ = ["CallRecord", "Path"]


@dataclass(frozen=True)
class CallRecord:
    """One extern (stateful library) call made along a path.

    Attributes:
        index: 0-based position of the call among all extern calls of the
            path (void calls included).  The concrete tracer numbers extern
            calls identically, which is how a concrete execution is matched
            back to its symbolic path.
        name: extern symbol called.
        args: symbolic argument expressions at the call site.
        result: the symbolic value the model produced, or None for void
            externs.  For the default model this is a fresh symbol named
            ``"{name}#{index}"``.
        cost: per-metric symbolic cost charged by the extern's contract —
            an opaque mapping (metric -> PerfExpr) that the symbolic layer
            carries through to BOLT without interpreting it.
        pcvs: names of the PCVs the cost expressions are written over.
        structure: data structure the extern belongs to (from its decl).
        method: method name within the structure (from its decl).
    """

    index: int
    name: str
    args: Tuple[BV, ...] = ()
    result: Optional[BV] = None
    cost: Mapping[Any, Any] = field(default_factory=dict)
    pcvs: Tuple[str, ...] = ()
    structure: str = ""
    method: str = ""

    @property
    def result_name(self) -> Optional[str]:
        """Canonical name of the model output symbol, if the call has one."""
        if self.result is None:
            return None
        return f"{self.name}#{self.index}"


@dataclass(frozen=True)
class Path:
    """One explored execution path through the stateless NF code.

    Attributes:
        pid: 0-based path id, in discovery order (deterministic).
        function: name of the analysed NFIL function.
        constraints: the path condition as a tuple of width-1 expressions
            (conjunction).
        calls: extern calls made along the path, in program order.
        returned: symbolic return value of the function, or None.
        instructions: exact dynamic NFIL instruction count of the stateless
            code along this path (a constant — PCV-dependent work lives
            behind the extern calls).
        memory_accesses: exact stateless load+store count along this path.
        model: a concrete assignment (symbol name -> value) satisfying the
            path condition, or None when the solver could not produce one
            (the path is still kept: the solver is conservative).
        feasibility: ``"sat"`` when the model is solver-verified,
            ``"unknown"`` when the path could not be proven feasible but
            also not refuted.
    """

    pid: int
    function: str
    constraints: Tuple[BV, ...] = ()
    calls: Tuple[CallRecord, ...] = ()
    returned: Optional[BV] = None
    instructions: int = 0
    memory_accesses: int = 0
    model: Optional[Dict[str, int]] = None
    feasibility: str = "unknown"

    def condition(self) -> BV:
        """Return the path condition as a single conjunction."""
        return bool_and(*self.constraints)

    def covers(self, env: Mapping[str, int]) -> bool:
        """Return True when the concrete assignment satisfies the path.

        ``env`` maps symbol names (input bytes, parameters and extern
        results named ``"{extern}#{index}"``) to concrete values; missing
        symbols default to 0, matching
        :func:`repro.sym.expr.evaluate`.
        """
        return all(evaluate(constraint, env) == 1 for constraint in self.constraints)

    def concrete_inputs(self, defaults: Mapping[str, int] | None = None) -> Dict[str, int]:
        """Return the solver model completed with defaults for free symbols.

        Raises:
            ValueError: the path has no model (feasibility unknown).
        """
        if self.model is None:
            raise ValueError(f"path {self.pid} has no concrete model")
        inputs = dict(defaults or {})
        inputs.update(self.model)
        return inputs

    def describe(self) -> str:
        """Render a human-readable multi-line description of the path."""
        lines = [
            f"path {self.pid} of {self.function} "
            f"[{self.feasibility}] instructions={self.instructions} "
            f"memory={self.memory_accesses}"
        ]
        for constraint in self.constraints:
            lines.append(f"  assume {render(constraint)}")
        for call in self.calls:
            result = f" -> {render(call.result)}" if call.result is not None else ""
            args = ", ".join(render(arg) for arg in call.args)
            lines.append(f"  call {call.name}({args}){result}")
        if self.returned is not None:
            lines.append(f"  return {render(self.returned)}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()
