"""Symbolic-execution substrate.

BOLT explores all feasible execution paths through the stateless NF code by
symbolic execution (§3.1 of the paper).  The original prototype builds on a
KLEE-derived engine and an SMT solver; this reproduction implements the
pieces it actually needs from scratch:

* :mod:`repro.sym.expr` — a bit-vector expression language with concrete
  evaluation and constant folding,
* :mod:`repro.sym.simplify` — algebraic simplification,
* :mod:`repro.sym.solver` — a small constraint solver (unit propagation,
  interval reasoning, bounded search) that is *conservative*: when it cannot
  decide satisfiability it answers "unknown" and BOLT keeps the path,
* :mod:`repro.sym.state` / :mod:`repro.sym.engine` — the symbolic machine
  state (registers, byte-addressable memory, path condition) and the path
  explorer for NFIL programs,
* :mod:`repro.sym.paths` — the per-path artefacts BOLT consumes (path
  constraints, stateful call records, concrete input assignments).
"""

from repro.sym.expr import (
    BV,
    Const,
    Sym,
    add,
    band,
    bool_and,
    bool_or,
    bnot,
    bor,
    bxor,
    concat,
    eq,
    evaluate,
    extract,
    ite,
    mul,
    ne,
    sdiv,
    shl,
    lshr,
    sub,
    udiv,
    uge,
    ugt,
    ule,
    ult,
    urem,
    zext,
)
from repro.sym.solver import CheckResult, Solver
from repro.sym.paths import CallRecord, Path
from repro.sym.state import SymbolicAddressError, SymbolicMemory, SymbolicState
from repro.sym.engine import (
    EngineError,
    ExplorationLimit,
    ModelOutcome,
    SymbolicEngine,
    SymbolicModel,
)

__all__ = [
    "BV",
    "CallRecord",
    "CheckResult",
    "Const",
    "EngineError",
    "ExplorationLimit",
    "ModelOutcome",
    "Path",
    "Solver",
    "Sym",
    "SymbolicAddressError",
    "SymbolicEngine",
    "SymbolicMemory",
    "SymbolicModel",
    "SymbolicState",
    "add",
    "band",
    "bnot",
    "bool_and",
    "bool_or",
    "bor",
    "bxor",
    "concat",
    "eq",
    "evaluate",
    "extract",
    "ite",
    "mul",
    "ne",
    "sdiv",
    "shl",
    "lshr",
    "sub",
    "udiv",
    "uge",
    "ugt",
    "ule",
    "ult",
    "urem",
    "zext",
]
