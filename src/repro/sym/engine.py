"""Symbolic path exploration over NFIL programs.

:class:`SymbolicEngine` enumerates the execution paths of the stateless NF
code (§3.1 of the paper).  At every symbolic branch it forks, asks the
:class:`repro.sym.solver.Solver` whether each side is feasible, and — being
conservative — keeps any side the solver cannot *prove* infeasible
(UNKNOWN counts as feasible, so contracts never silently drop a path).

Calls to externs (the stateful data-structure methods) are not executed;
they are abstracted by a :class:`SymbolicModel` (§3.2: the library's
contracts stand in for its code).  The default model havocs: it returns a
fresh symbol named ``"{extern}#{call index}"`` and charges no cost.  Real
models — :class:`repro.structures.StructureModel` over any set of library
structures — additionally constrain the output and charge the
PCV-parameterised cost the structure's operation contract promises, which
BOLT folds into the generated contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence, Tuple, Union

from repro.nfil.instructions import (
    BinOp,
    Br,
    Call,
    Cmp,
    ConstInstr,
    Imm,
    Instruction,
    Jmp,
    Load,
    Operand,
    Reg,
    Ret,
    Select,
    Store,
    WORD_BITS,
)
from repro.nfil.program import ExternDecl, Module
from repro.sym import expr as E
from repro.sym.expr import BV, Const, Sym
from repro.sym.paths import CallRecord, Path
from repro.sym.simplify import simplify
from repro.sym.solver import Solver
from repro.sym.state import Frame, SymbolicMemory, SymbolicState

__all__ = [
    "EngineError",
    "ExplorationLimit",
    "ModelOutcome",
    "SymbolicEngine",
    "SymbolicModel",
]


class EngineError(RuntimeError):
    """The engine met an ill-formed program or an unsupported construct."""


class ExplorationLimit(EngineError):
    """Exploration exceeded the configured path or step budget."""


@dataclass(frozen=True)
class ModelOutcome:
    """What a symbolic model produces for one extern call.

    Attributes:
        value: symbolic return value (None for void externs).
        constraints: assumptions about the output (conjoined to the path
            condition), e.g. "the returned port is valid or the sentinel".
        cost: per-metric symbolic cost of the call — an opaque mapping
            (metric -> PerfExpr) forwarded untouched to BOLT.
        pcvs: names of the PCVs the cost is written over.
    """

    value: Optional[BV] = None
    constraints: Tuple[BV, ...] = ()
    cost: Mapping[Any, Any] = field(default_factory=dict)
    pcvs: Tuple[str, ...] = ()


class SymbolicModel:
    """Base symbolic model for externs; subclass to add semantics and cost.

    The default behaviour havocs every call: value-returning externs yield
    a fresh 64-bit symbol named ``"{extern}#{index}"`` (the concrete tracer
    numbers extern calls identically, which is what lets a concrete
    execution be matched to its symbolic path), void externs yield nothing,
    and no cost is charged.
    """

    def fresh(self, decl: ExternDecl, index: int, width: int = WORD_BITS) -> Sym:
        """Return the canonical fresh output symbol for call ``index``."""
        return Sym(f"{decl.name}#{index}", width)

    def apply(
        self,
        decl: ExternDecl,
        args: Tuple[BV, ...],
        state: SymbolicState,
        index: int,
    ) -> ModelOutcome:
        """Model one extern call; override in subclasses."""
        if decl.returns_value:
            return ModelOutcome(value=self.fresh(decl, index))
        return ModelOutcome()


class SymbolicEngine:
    """Path explorer for NFIL functions."""

    def __init__(
        self,
        module: Module,
        *,
        model: Optional[SymbolicModel] = None,
        solver: Optional[Solver] = None,
        max_paths: int = 256,
        max_steps: int = 10_000,
    ) -> None:
        self.module = module
        self.model = model or SymbolicModel()
        self.solver = solver or Solver()
        self.max_paths = max_paths
        self.max_steps = max_steps
        # id(register value) -> (value, branch condition).  ``_as_bool`` is
        # pure, and forked states share register nodes, so memoising by
        # identity both skips re-simplification and maximises node sharing
        # across sibling states — which is what makes the solver's
        # canonical-key and verdict caches hit (see repro.sym.solver).
        self._bool_memo: dict[int, Tuple[BV, BV]] = {}
        # id(condition) -> (condition, negation), for the same reason.
        self._not_memo: dict[int, Tuple[BV, BV]] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def explore(
        self,
        function_name: str,
        args: Sequence[Union[BV, int]],
        *,
        memory: Optional[SymbolicMemory] = None,
        constraints: Sequence[BV] = (),
        solve_models: bool = True,
    ) -> List[Path]:
        """Explore every path of ``function_name`` from symbolic inputs.

        Args:
            function_name: entry function of the analysis.
            args: one initial value per parameter; ints become constants,
                narrower expressions are zero-extended to 64 bits.
            memory: initial symbolic memory (e.g. a symbolic packet buffer
                installed with
                :meth:`repro.sym.state.SymbolicMemory.write_symbolic`).
            constraints: initial assumptions (e.g. ``in_port < 64``).
            solve_models: when True (default), ask the solver for a concrete
                input assignment per completed path so the path can be
                replayed by the concrete interpreter.

        Returns:
            The completed paths in deterministic discovery order.
        """
        function = self.module.functions.get(function_name)
        if function is None:
            raise EngineError(f"unknown function {function_name!r}")
        if len(args) != len(function.params):
            raise EngineError(
                f"{function_name} expects {len(function.params)} args, got {len(args)}"
            )
        registers = {param.name: self._coerce(value) for param, value in zip(function.params, args)}
        state = SymbolicState(
            memory=memory if memory is not None else SymbolicMemory(),
            frames=[Frame(function, function.entry, 0, registers)],
        )
        for constraint in constraints:
            state.assume(constraint)

        worklist: List[SymbolicState] = [state]
        paths: List[Path] = []
        while worklist:
            current = worklist.pop()
            while not current.finished:
                if current.steps >= self.max_steps:
                    raise ExplorationLimit(
                        f"path exceeded {self.max_steps} steps in {function_name}"
                    )
                self._step(current, worklist, paths)
            if self._dropped(current):
                continue
            paths.append(self._finalise(current, function_name, len(paths), solve_models))
        return paths

    @staticmethod
    def _dropped(state: SymbolicState) -> bool:
        """True for states whose path condition collapsed to literal false."""
        return any(isinstance(c, Const) and c.value == 0 for c in state.path_condition)

    # ------------------------------------------------------------------ #
    # Machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(value: Union[BV, int]) -> BV:
        if isinstance(value, BV):
            return E.zext(value, WORD_BITS) if value.width < WORD_BITS else value
        return Const(int(value), WORD_BITS)

    def _operand(self, operand: Operand, state: SymbolicState) -> BV:
        if isinstance(operand, Imm):
            return Const(operand.value, WORD_BITS)
        if isinstance(operand, Reg):
            return state.get_reg(operand.name)
        raise EngineError(f"bad operand {operand!r}")  # pragma: no cover

    def _as_bool(self, value: BV) -> BV:
        """Turn a 64-bit register value into a width-1 branch condition."""
        memo = self._bool_memo.get(id(value))
        if memo is not None:
            return memo[1]
        condition = self._as_bool_uncached(value)
        self._bool_memo[id(value)] = (value, condition)
        return condition

    @staticmethod
    def _as_bool_uncached(value: BV) -> BV:
        condition = simplify(E.ne(value, Const(0, value.width)))
        # simplify() narrows `zext(x) != 0` to `x != 0`; for width-1 x that
        # comparison *is* x, which keeps path conditions readable.
        if (
            isinstance(condition, E.Cmp)
            and condition.op == "ne"
            and isinstance(condition.b, Const)
            and condition.b.value == 0
            and condition.a.width == 1
        ):
            return condition.a
        return condition

    def _fetch(self, state: SymbolicState) -> Instruction:
        frame = state.frame
        block = frame.function.blocks.get(frame.block)
        if block is None:
            raise EngineError(f"{frame.function.name}: unknown block {frame.block!r}")
        if frame.index >= len(block.instructions):
            raise EngineError(
                f"{frame.function.name}:{frame.block} fell through without terminator"
            )
        instruction = block.instructions[frame.index]
        frame.index += 1
        return instruction

    def _step(
        self,
        state: SymbolicState,
        worklist: List[SymbolicState],
        paths: List[Path],
    ) -> None:
        instruction = self._fetch(state)
        state.steps += 1
        state.instructions += 1
        frame = state.frame
        if isinstance(instruction, ConstInstr):
            state.set_reg(instruction.dest, Const(instruction.value, WORD_BITS))
        elif isinstance(instruction, BinOp):
            a = self._operand(instruction.a, state)
            b = self._operand(instruction.b, state)
            state.set_reg(instruction.dest, E.binop(instruction.op, a, b))
        elif isinstance(instruction, Cmp):
            a = self._operand(instruction.a, state)
            b = self._operand(instruction.b, state)
            state.set_reg(instruction.dest, E.zext(E.cmp(instruction.op, a, b), WORD_BITS))
        elif isinstance(instruction, Select):
            condition = self._as_bool(self._operand(instruction.cond, state))
            a = self._operand(instruction.a, state)
            b = self._operand(instruction.b, state)
            state.set_reg(instruction.dest, E.ite(condition, a, b))
        elif isinstance(instruction, Load):
            addr = self._operand(instruction.addr, state)
            state.set_reg(instruction.dest, state.load(addr, instruction.size))
        elif isinstance(instruction, Store):
            addr = self._operand(instruction.addr, state)
            value = self._operand(instruction.value, state)
            state.store(addr, value, instruction.size)
        elif isinstance(instruction, Br):
            self._branch(instruction, state, worklist, paths)
        elif isinstance(instruction, Jmp):
            frame.block = instruction.label
            frame.index = 0
        elif isinstance(instruction, Call):
            self._call(instruction, state)
        elif isinstance(instruction, Ret):
            self._return(instruction, state)
        else:  # pragma: no cover - defensive
            raise EngineError(f"cannot execute {type(instruction).__name__}")

    def _branch(
        self,
        instruction: Br,
        state: SymbolicState,
        worklist: List[SymbolicState],
        paths: List[Path],
    ) -> None:
        condition = self._as_bool(self._operand(instruction.cond, state))
        frame = state.frame
        if isinstance(condition, Const):
            frame.block = (
                instruction.then_label if condition.value else instruction.else_label
            )
            frame.index = 0
            return
        memo = self._not_memo.get(id(condition))
        if memo is not None:
            negated = memo[1]
        else:
            negated = E.bnot(condition)
            self._not_memo[id(condition)] = (condition, negated)
        # Conservative feasibility: keep a side unless the solver proves it
        # infeasible (UNKNOWN => keep).  Both queries flow through the
        # solver's memoisation layer: the shared path-condition prefix is
        # canonicalised once, a cached UNSAT prefix refutes a side without
        # solving, and the verdict cached here is what `_finalise` reuses
        # when it asks for the surviving side's model.
        then_ok = self.solver.is_feasible(state.path_condition + [condition])
        else_ok = self.solver.is_feasible(state.path_condition + [negated])
        if not then_ok and not else_ok:
            # Both sides refuted: the path condition itself is infeasible.
            # Drop the state entirely (it contributes no path).
            state.finished = True
            state.returned = None
            state.path_condition.append(Const(0, 1))
            return
        if then_ok and else_ok:
            if len(paths) + len(worklist) + 2 > self.max_paths:
                raise ExplorationLimit(
                    f"exceeded {self.max_paths} paths exploring "
                    f"{frame.function.name}"
                )
            fork = state.clone()
            fork.assume(negated)
            fork.frame.block = instruction.else_label
            fork.frame.index = 0
            worklist.append(fork)
            state.assume(condition)
            frame.block = instruction.then_label
        elif then_ok:
            state.assume(condition)
            frame.block = instruction.then_label
        else:
            state.assume(negated)
            frame.block = instruction.else_label
        frame.index = 0

    def _call(self, instruction: Call, state: SymbolicState) -> None:
        args = tuple(self._operand(arg, state) for arg in instruction.args)
        if self.module.is_extern(instruction.callee):
            decl = self.module.externs[instruction.callee]
            if len(args) != decl.arity:
                raise EngineError(f"extern {decl.name} expects {decl.arity} args, got {len(args)}")
            index = len(state.calls)
            outcome = self.model.apply(decl, args, state, index)
            state.calls.append(
                CallRecord(
                    index=index,
                    name=decl.name,
                    args=args,
                    result=outcome.value,
                    cost=outcome.cost,
                    pcvs=tuple(outcome.pcvs),
                    structure=decl.structure,
                    method=decl.method,
                )
            )
            for constraint in outcome.constraints:
                state.assume(constraint)
            if instruction.dest is not None:
                if outcome.value is None:
                    raise EngineError(
                        f"extern {decl.name} produced no value for %{instruction.dest}"
                    )
                state.set_reg(instruction.dest, outcome.value)
            return
        callee = self.module.functions.get(instruction.callee)
        if callee is None:
            raise EngineError(f"call to unknown symbol {instruction.callee!r}")
        if len(args) != len(callee.params):
            raise EngineError(f"{callee.name} expects {len(callee.params)} args, got {len(args)}")
        state.frame.ret_dest = instruction.dest
        registers = {param.name: value for param, value in zip(callee.params, args)}
        state.frames.append(Frame(callee, callee.entry, 0, registers))

    def _return(self, instruction: Ret, state: SymbolicState) -> None:
        value = (
            self._operand(instruction.value, state)
            if instruction.value is not None
            else None
        )
        state.frames.pop()
        if not state.frames:
            state.returned = value
            state.finished = True
            return
        caller = state.frame
        if caller.ret_dest is not None:
            if value is None:
                raise EngineError("void return into a destination register")
            caller.registers[caller.ret_dest] = value
            caller.ret_dest = None

    def _finalise(
        self,
        state: SymbolicState,
        function_name: str,
        pid: int,
        solve_models: bool,
    ) -> Path:
        model: Optional[dict] = None
        feasibility = "unknown"
        if solve_models:
            model = self.solver.model(state.path_condition)
            if model is not None:
                feasibility = "sat"
        return Path(
            pid=pid,
            function=function_name,
            constraints=tuple(state.path_condition),
            calls=tuple(state.calls),
            returned=state.returned,
            instructions=state.instructions,
            memory_accesses=state.memory_accesses,
            model=model,
            feasibility=feasibility,
        )
