"""A small constraint solver for path feasibility and input generation.

BOLT needs two things from a solver (§3.3):

1. decide whether a path condition is feasible, and
2. produce a concrete model (packet bytes, model outputs) that exercises a
   feasible path, so the path can be replayed through the instruction tracer.

The NF stateless code produced by the Vigor-style split branches on packet
header fields and on the outputs of data-structure models, so its path
conditions are conjunctions of (in)equalities over bit-vectors — a fragment
that the following combination handles well:

* constant folding / flattening,
* unit propagation of equalities ``sym == const``,
* interval propagation for comparisons against constants,
* a bounded DFS over candidate values mined from the constraints, with
  partial-evaluation pruning, followed by a seeded random phase.

The solver is **conservative**: it answers UNSAT only with a proof (a folded
contradiction or an empty interval), and SAT only with a verified model.
Everything else is UNKNOWN, which BOLT treats as "possibly feasible", so the
resulting contracts never silently drop a path.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.sym import expr as E
from repro.sym.expr import BV, BinOp, BoolOp, Cmp, Const, Sym, evaluate, free_symbols, render
from repro.sym.simplify import simplify, substitute

__all__ = ["CheckResult", "Solver", "SolverStats"]


class CheckResult(enum.Enum):
    """Outcome of a satisfiability check."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters describing the work a solver instance has performed.

    The memoisation counters make the caching layer observable:

    * ``cache_hits`` — conjunctions answered from the verdict cache,
    * ``prefix_pruned`` — conjunctions proven UNSAT because a previously
      refuted *prefix* (subset) of their constraints was cached,
    * ``cache_misses`` — conjunctions the solving pipeline actually ran on,
    * ``dedup_dropped`` — duplicate conjuncts dropped before solving,
    * ``simplify_reused`` — constraints whose normal form was reused by
      node identity instead of re-running :func:`simplify`.
    """

    checks: int = 0
    sat: int = 0
    unsat: int = 0
    unknown: int = 0
    search_nodes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    prefix_pruned: int = 0
    dedup_dropped: int = 0
    simplify_reused: int = 0

    def record(self, result: CheckResult) -> None:
        self.checks += 1
        if result is CheckResult.SAT:
            self.sat += 1
        elif result is CheckResult.UNSAT:
            self.unsat += 1
        else:
            self.unknown += 1


@dataclass
class _Interval:
    """A closed unsigned interval with excluded points."""

    lo: int
    hi: int
    excluded: set[int] = field(default_factory=set)

    def is_empty(self) -> bool:
        if self.lo > self.hi:
            return True
        # Only treat the interval as empty when exclusions provably cover it
        # (cheap check for small intervals).
        size = self.hi - self.lo + 1
        if size <= len(self.excluded) + 1 and size <= 4096:
            return all(value in self.excluded for value in range(self.lo, self.hi + 1))
        return False

    def clamp(self, value: int) -> int:
        return min(max(value, self.lo), self.hi)


class Solver:
    """Constraint solver over the :mod:`repro.sym.expr` language.

    Repeated queries dominate symbolic exploration: every branch checks
    ``pc + [cond]`` and ``pc + [¬cond]`` where ``pc`` is a shared prefix,
    and finalisation re-solves the exact conjunction of the last branch.
    The solver therefore memoises (after DiSCo's ``PathChecker`` pattern —
    its ``infeasible_path_pres`` / ``pushed_exp`` sets):

    * constraints are canonicalised once per node identity (the engine
      shares nodes along path conditions) and duplicates are dropped,
    * verdicts (and verified SAT models) are cached per constraint keyset,
    * UNSAT keysets are kept as *prefixes*: any superset conjunction is
      UNSAT by monotonicity, so one refuted branch prunes every path that
      shares it.  SAT verdicts are only ever reused for exact keysets.

    Set ``cache=False`` (or flip :attr:`CACHE_DEFAULT`) to disable the
    verdict cache — contracts generated either way must be identical,
    which the test suite asserts.
    """

    #: Default for the ``cache`` argument; tests flip this to compare
    #: memoised against from-scratch contract generation.
    CACHE_DEFAULT: bool = True

    #: Process-wide aggregate of every instance's check and cache counters
    #: (``search_nodes`` stays per-instance).  Contract generators build
    #: their solvers internally, so callers like the CLI smoke run report
    #: cache effectiveness from before/after snapshots of this aggregate.
    TOTALS: ClassVar[SolverStats] = SolverStats()

    def __init__(
        self,
        *,
        max_search_nodes: int = 50_000,
        max_candidates_per_symbol: int = 16,
        random_tries: int = 2_000,
        seed: int = 0,
        cache: Optional[bool] = None,
    ) -> None:
        self.max_search_nodes = max_search_nodes
        self.max_candidates_per_symbol = max_candidates_per_symbol
        self.random_tries = random_tries
        self._rng = random.Random(seed)
        self.stats = SolverStats()
        self.cache_enabled = self.CACHE_DEFAULT if cache is None else cache
        # id(node) -> (node, normal form); nodes are immutable and shared
        # along path conditions, so identity is a sound (and cheap) key.
        # The node reference keeps the id from being recycled.
        self._norm: Dict[int, Tuple[BV, BV]] = {}
        # id(normal form) -> (node, canonical key string).
        self._canon: Dict[int, Tuple[BV, str]] = {}
        # keyset -> (verdict, verified model or None).
        self._verdicts: Dict[frozenset, Tuple[CheckResult, Optional[Dict[str, int]]]] = {}
        # Refuted keysets; any superset is UNSAT by conjunction monotonicity.
        self._unsat_prefixes: List[frozenset] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def check(self, constraints: Iterable[BV]) -> CheckResult:
        """Return SAT/UNSAT/UNKNOWN for the conjunction of ``constraints``."""
        result, _ = self._cached_solve(list(constraints))
        self._record(result)
        return result

    def model(self, constraints: Iterable[BV]) -> Optional[Dict[str, int]]:
        """Return a satisfying assignment, or None if none was found.

        A returned model is always verified against the original constraints.
        """
        result, model = self._cached_solve(list(constraints))
        self._record(result)
        if result is CheckResult.SAT:
            return model
        return None

    def is_feasible(self, constraints: Iterable[BV]) -> bool:
        """Return True unless the constraints are provably unsatisfiable.

        This is the conservative interpretation BOLT uses when exploring
        paths: UNKNOWN counts as feasible.
        """
        return self.check(constraints) is not CheckResult.UNSAT

    def implied(self, constraints: Sequence[BV], hypothesis: BV) -> bool:
        """Return True when ``constraints`` provably imply ``hypothesis``.

        Implemented as "constraints AND NOT hypothesis is UNSAT"; UNKNOWN
        means "not proven", hence False.
        """
        negated = E.bnot(hypothesis)
        result, _ = self._cached_solve(list(constraints) + [negated])
        self._record(result)
        return result is CheckResult.UNSAT

    # ------------------------------------------------------------------ #
    # Memoisation layer
    # ------------------------------------------------------------------ #
    def _record(self, result: CheckResult) -> None:
        self.stats.record(result)
        Solver.TOTALS.record(result)

    def _count(self, counter: str, amount: int = 1) -> None:
        """Bump one cache counter on the instance and the class aggregate."""
        setattr(self.stats, counter, getattr(self.stats, counter) + amount)
        setattr(Solver.TOTALS, counter, getattr(Solver.TOTALS, counter) + amount)

    def _normalise(self, node: BV) -> BV:
        """Return ``simplify(node)``, reusing the normal form by identity."""
        entry = self._norm.get(id(node))
        if entry is not None:
            self._count("simplify_reused")
            return entry[1]
        simplified = simplify(node)
        if id(simplified) not in self._norm:
            # Register the normal form as its own fixed point so flattening
            # the same conjunction never simplifies it a second time.
            self._norm[id(simplified)] = (simplified, simplified)
        self._norm[id(node)] = (node, simplified)
        return simplified

    def _canonical_key(self, node: BV) -> str:
        """Render a normal-form node once; reuse the string by identity."""
        entry = self._canon.get(id(node))
        if entry is None:
            entry = (node, render(node))
            self._canon[id(node)] = entry
        return entry[1]

    def _cached_solve(
        self, constraints: List[BV]
    ) -> Tuple[CheckResult, Optional[Dict[str, int]]]:
        if not self.cache_enabled:
            return self._solve(constraints)
        deduped: List[BV] = []
        keys: set[str] = set()
        for constraint in constraints:
            normal = self._normalise(constraint)
            key = self._canonical_key(normal)
            if key in keys:
                self._count("dedup_dropped")
                continue
            keys.add(key)
            deduped.append(normal)
        keyset = frozenset(keys)
        cached = self._verdicts.get(keyset)
        if cached is not None:
            self._count("cache_hits")
            result, model = cached
            return result, dict(model) if model is not None else None
        for prefix in self._unsat_prefixes:
            if prefix <= keyset:
                self._count("cache_hits")
                self._count("prefix_pruned")
                self._verdicts[keyset] = (CheckResult.UNSAT, None)
                return CheckResult.UNSAT, None
        self._count("cache_misses")
        result, model = self._solve(deduped)
        self._verdicts[keyset] = (result, dict(model) if model is not None else None)
        if result is CheckResult.UNSAT:
            self._unsat_prefixes.append(keyset)
        return result, model

    # ------------------------------------------------------------------ #
    # Core solving pipeline
    # ------------------------------------------------------------------ #
    def _solve(self, constraints: List[BV]) -> Tuple[CheckResult, Optional[Dict[str, int]]]:
        # The top-level flatten reuses cached normal forms (public callers
        # re-check shared path-condition nodes constantly); the flattens on
        # freshly substituted nodes inside propagation/search do not, so the
        # identity cache only ever holds long-lived constraint nodes.
        flat = self._flatten(constraints, use_cache=True)
        if flat is None:
            return CheckResult.UNSAT, None
        if not flat:
            return CheckResult.SAT, {}

        assignment: Dict[str, int] = {}
        flat = self._unit_propagate(flat, assignment)
        if flat is None:
            return CheckResult.UNSAT, None

        symbols = self._collect_symbols(flat)
        if not symbols:
            # All constraints reduced to constants during propagation.
            if all(isinstance(c, Const) and c.value == 1 for c in flat):
                return CheckResult.SAT, assignment
            return CheckResult.UNSAT, None

        intervals = self._intervals(flat, symbols)
        if intervals is None:
            return CheckResult.UNSAT, None

        model = self._search(flat, symbols, intervals, assignment, constraints)
        if model is not None:
            return CheckResult.SAT, model
        model = self._random_phase(symbols, intervals, assignment, constraints)
        if model is not None:
            return CheckResult.SAT, model
        return CheckResult.UNKNOWN, None

    def _flatten(
        self, constraints: Sequence[BV], *, use_cache: bool = False
    ) -> Optional[List[BV]]:
        """Simplify, flatten conjunctions, drop tautologies; None on contradiction."""
        flat: List[BV] = []
        queue = list(constraints)
        while queue:
            node = queue.pop()
            constraint = self._normalise(node) if use_cache else simplify(node)
            if isinstance(constraint, Const):
                if constraint.value == 0:
                    return None
                continue
            if isinstance(constraint, BoolOp) and constraint.op == "and":
                queue.extend(constraint.parts)
                continue
            flat.append(constraint)
        return flat

    def _unit_propagate(
        self, constraints: List[BV], assignment: Dict[str, int]
    ) -> Optional[List[BV]]:
        """Repeatedly apply ``sym == const`` facts; None on contradiction."""
        changed = True
        current = constraints
        while changed:
            changed = False
            units: Dict[str, int] = {}
            for constraint in current:
                if isinstance(constraint, Cmp) and constraint.op == "eq":
                    sym, value = self._as_sym_const(constraint)
                    if sym is not None and sym.name not in units:
                        units[sym.name] = value
            new_units = {name: value for name, value in units.items() if name not in assignment}
            if not new_units:
                break
            assignment.update(new_units)
            substituted = [substitute(constraint, new_units) for constraint in current]
            current = self._flatten(substituted)
            if current is None:
                return None
            changed = True
        return current

    @staticmethod
    def _as_sym_const(constraint: Cmp) -> Tuple[Optional[Sym], int]:
        if isinstance(constraint.a, Sym) and isinstance(constraint.b, Const):
            return constraint.a, constraint.b.value
        if isinstance(constraint.b, Sym) and isinstance(constraint.a, Const):
            return constraint.b, constraint.a.value
        return None, 0

    @staticmethod
    def _collect_symbols(constraints: Sequence[BV]) -> Dict[str, int]:
        symbols: Dict[str, int] = {}
        for constraint in constraints:
            symbols.update(free_symbols(constraint))
        return symbols

    def _intervals(
        self, constraints: Sequence[BV], symbols: Mapping[str, int]
    ) -> Optional[Dict[str, _Interval]]:
        """Derive per-symbol intervals from comparisons against constants."""
        intervals = {name: _Interval(0, E.mask(width)) for name, width in symbols.items()}
        for constraint in constraints:
            if isinstance(constraint, Cmp):
                self._narrow(intervals, constraint)
        for interval in intervals.values():
            if interval.is_empty():
                return None
        return intervals

    @staticmethod
    def _narrow(intervals: Dict[str, _Interval], constraint: Cmp) -> None:
        sym: Optional[Sym] = None
        value = 0
        flipped = False
        if isinstance(constraint.a, Sym) and isinstance(constraint.b, Const):
            sym, value = constraint.a, constraint.b.value
        elif isinstance(constraint.b, Sym) and isinstance(constraint.a, Const):
            sym, value = constraint.b, constraint.a.value
            flipped = True
        if sym is None or sym.name not in intervals:
            return
        interval = intervals[sym.name]
        op = constraint.op
        if flipped:
            flip = {"ult": "ugt", "ule": "uge", "ugt": "ult", "uge": "ule"}
            op = flip.get(op, op)
        if op == "eq":
            interval.lo = max(interval.lo, value)
            interval.hi = min(interval.hi, value)
        elif op == "ne":
            interval.excluded.add(value)
        elif op == "ult":
            interval.hi = min(interval.hi, value - 1)
        elif op == "ule":
            interval.hi = min(interval.hi, value)
        elif op == "ugt":
            interval.lo = max(interval.lo, value + 1)
        elif op == "uge":
            interval.lo = max(interval.lo, value)

    def _candidate_values(
        self,
        name: str,
        width: int,
        interval: _Interval,
        mentioned: Sequence[int],
    ) -> List[int]:
        """Turn mined constants into candidate values for one symbol."""
        candidates: List[int] = []
        seeds = [interval.lo, interval.hi, 0, 1]
        for value in mentioned:
            seeds.extend((value, value + 1, value - 1))
        seen: set[int] = set()
        for value in seeds:
            value = interval.clamp(value)
            if value in interval.excluded:
                for bumped in (value + 1, value - 1, value + 2):
                    bumped = interval.clamp(bumped)
                    if bumped not in interval.excluded:
                        value = bumped
                        break
            if 0 <= value <= E.mask(width) and value not in seen:
                seen.add(value)
                candidates.append(value)
            if len(candidates) >= self.max_candidates_per_symbol:
                break
        if not candidates:
            candidates.append(interval.clamp(0))
        return candidates

    @staticmethod
    def _mine_constants(constraints: Sequence[BV]) -> Dict[str, List[int]]:
        """Collect, per symbol, the constants compared/combined with it.

        One pass over all constraints with per-node symbol-set memoisation,
        so mining stays linear in the constraint size instead of quadratic
        per symbol.
        """
        found: Dict[str, List[int]] = {}
        memo: Dict[int, frozenset] = {}

        def names(node: BV) -> frozenset:
            key = id(node)
            cached = memo.get(key)
            if cached is not None:
                return cached
            if isinstance(node, Sym):
                result = frozenset((node.name,))
            else:
                result = frozenset()
                for child in node.children():
                    result |= names(child)
            memo[key] = result
            return result

        for constraint in constraints:
            stack = [constraint]
            while stack:
                node = stack.pop()
                if isinstance(node, (Cmp, BinOp)):
                    a, b = node.a, node.b
                    if isinstance(b, Const):
                        for symbol in names(a):
                            found.setdefault(symbol, []).append(b.value)
                    if isinstance(a, Const):
                        for symbol in names(b):
                            found.setdefault(symbol, []).append(a.value)
                stack.extend(node.children())
        return found

    def _verify(
        self, original: Sequence[BV], model: Mapping[str, int]
    ) -> bool:
        return all(evaluate(constraint, model) == 1 for constraint in original)

    def _search(
        self,
        constraints: List[BV],
        symbols: Dict[str, int],
        intervals: Dict[str, _Interval],
        assignment: Dict[str, int],
        original: Sequence[BV],
    ) -> Optional[Dict[str, int]]:
        """Bounded DFS over mined candidate values with pruning.

        Two refinements make the search effective on the equality-heavy
        path conditions BOLT produces: symbols with narrow intervals are
        assigned first, and after every assignment the newly exposed
        ``sym == const`` units are propagated, so derived symbols (e.g.
        ``y == x + 1``) never need to be guessed at all.
        """
        names = sorted(symbols)
        mined = self._mine_constants(constraints)
        candidates = {
            name: self._candidate_values(name, symbols[name], intervals[name], mined.get(name, ()))
            for name in names
        }
        names.sort(
            key=lambda name: (intervals[name].hi - intervals[name].lo, len(candidates[name]))
        )
        budget = [self.max_search_nodes]

        def propagate(
            remaining: List[BV], partial: Dict[str, int]
        ) -> Optional[List[BV]]:
            """Apply exposed sym == const units; None on contradiction."""
            while True:
                units: Dict[str, int] = {}
                for constraint in remaining:
                    if isinstance(constraint, Cmp) and constraint.op == "eq":
                        sym, value = self._as_sym_const(constraint)
                        if sym is not None and sym.name not in partial and sym.name not in units:
                            units[sym.name] = value
                if not units:
                    return remaining
                partial.update(units)
                flat = self._flatten([substitute(constraint, units) for constraint in remaining])
                if flat is None:
                    return None
                remaining = flat

        def recurse(remaining: List[BV], partial: Dict[str, int]) -> Optional[Dict[str, int]]:
            if budget[0] <= 0:
                return None
            partial = dict(partial)
            propagated = propagate(remaining, partial)
            if propagated is None:
                return None
            remaining = propagated
            name = next((n for n in names if n not in partial), None)
            if name is None:
                model = dict(assignment)
                model.update(partial)
                if self._verify(original, model):
                    return model
                return None
            for value in candidates[name]:
                budget[0] -= 1
                self.stats.search_nodes += 1
                if budget[0] <= 0:
                    return None
                substituted = [substitute(constraint, {name: value}) for constraint in remaining]
                flat = self._flatten(substituted)
                if flat is None:
                    continue
                next_partial = dict(partial)
                next_partial[name] = value
                found = recurse(flat, next_partial)
                if found is not None:
                    return found
            return None

        return recurse(constraints, {})

    def _random_phase(
        self,
        symbols: Dict[str, int],
        intervals: Dict[str, _Interval],
        assignment: Dict[str, int],
        original: Sequence[BV],
    ) -> Optional[Dict[str, int]]:
        """Last-resort randomized assignment within the derived intervals."""
        names = sorted(symbols)
        for _ in range(self.random_tries):
            model = dict(assignment)
            for name in names:
                interval = intervals[name]
                span = interval.hi - interval.lo
                if span <= 0:
                    value = interval.lo
                else:
                    value = interval.lo + self._rng.randrange(span + 1)
                model[name] = value
            if self._verify(original, model):
                return model
        return None
