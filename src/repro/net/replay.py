"""End-to-end graph replay: every hop scored, every journey re-scored.

:class:`GraphReplayer` drives one packet stream through a whole
:class:`~repro.net.graph.Graph` and checks the contract story at *two*
levels on every packet:

1. **Per hop** — each node execution is scored by that node's own
   :class:`~repro.traffic.replayer.Replayer` (via its per-packet
   :meth:`~repro.traffic.replayer.Replayer.score` primitive) against the
   node's generated contract: classification, count bounds, cycle bounds
   under every hardware model.
2. **End to end** — the hops a packet actually traversed name a route
   (:func:`repro.core.composition.route_class_name`), the composed
   contract (:meth:`~repro.net.graph.Graph.compose`) holds one entry per
   reachable route, and the packet's *cumulative* measured cost is
   checked against that entry evaluated at the union of the hops'
   observed PCVs.

The end-to-end comparison is exact: the composed expression is evaluated
as a scaled integer (one clearing denominator per entry) and compared
against the raw measured totals — never against per-hop ceilings, whose
sum can legitimately exceed the ceiling of the sum.  Measured cycles are
summed as :class:`~fractions.Fraction` for the same reason.

Churn (:mod:`repro.net.churn`) interleaves with the stream: events fire
between packets, injected control frames are scored at their node like
any stimulus (their cost is part of the deployment's story), host-side
mutations and clock jumps take effect before the next packet replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.composition import route_class_name
from repro.core.contract import ContractEntry, Metric, PerformanceContract
from repro.core.report import format_table
from repro.hw.model import CycleModel
from repro.net.churn import ChurnSchedule
from repro.net.graph import Graph
from repro.traffic.replayer import ClassSummary, PacketOutcome, Replayer

__all__ = ["GraphFrame", "GraphPacketOutcome", "GraphReplayResult", "GraphReplayer", "RouteSummary"]


@dataclass(frozen=True)
class GraphFrame:
    """One stream packet entering the graph: bytes plus stream metadata."""

    packet: bytes
    time: int
    note: str = ""
    #: Extra entry-node scalars (e.g. the NAT's ``in_port`` when a NAT is
    #: the entry); merged into the metadata handed to every ingress.
    scalars: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class GraphPacketOutcome:
    """One packet's full journey: per-hop outcomes plus the composed check."""

    index: int
    note: str
    #: ``(node name, hop outcome)`` in traversal order.
    hops: Tuple[Tuple[str, PacketOutcome], ...]
    #: Composed-entry name of the traversed route (None when a hop failed
    #: to classify, so no route exists to check).
    route_name: Optional[str]
    #: Cumulative counts over all hops.
    measured: Mapping[Metric, int]
    #: The composed entry's exact per-metric bound at the merged PCVs.
    predicted: Mapping[Metric, Fraction]
    #: model name -> (summed measured cycles, composed predicted cycles).
    cycles: Mapping[str, Tuple[Fraction, Fraction]]
    #: Every violation of this packet: per-hop ones prefixed with the node
    #: name, then the end-to-end ones.
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def hop_count(self) -> int:
        return len(self.hops)


@dataclass
class RouteSummary:
    """Aggregate over every packet that traversed one route."""

    route_name: str
    packets: int = 0
    max_measured: Dict[Metric, int] = field(default_factory=dict)
    max_predicted: Dict[Metric, Fraction] = field(default_factory=dict)
    max_cycles: Dict[str, Tuple[Fraction, Fraction]] = field(default_factory=dict)
    violations: int = 0

    def absorb(self, outcome: GraphPacketOutcome) -> None:
        self.packets += 1
        if not outcome.ok:
            self.violations += 1
        for metric, value in outcome.measured.items():
            self.max_measured[metric] = max(self.max_measured.get(metric, 0), value)
        for metric, value in outcome.predicted.items():
            self.max_predicted[metric] = max(
                self.max_predicted.get(metric, Fraction(0)), value
            )
        for model, (measured, predicted) in outcome.cycles.items():
            prev = self.max_cycles.get(model, (Fraction(0), Fraction(0)))
            self.max_cycles[model] = (max(prev[0], measured), max(prev[1], predicted))


def _summary_json(summary: ClassSummary) -> Dict[str, object]:
    return {
        "packets": summary.packets,
        "violations": summary.violations,
        "max_measured": {str(m): v for m, v in summary.max_measured.items()},
        "max_predicted": {str(m): v for m, v in summary.max_predicted.items()},
        "max_cycles": {
            model: {"measured": float(meas), "predicted": float(pred)}
            for model, (meas, pred) in summary.max_cycles.items()
        },
    }


@dataclass
class GraphReplayResult:
    """Everything one graph replay produced."""

    graph_name: str
    workload: str
    outcomes: List[GraphPacketOutcome]
    #: Churn-injected control executions: ``(node name, outcome)``.
    control_outcomes: List[Tuple[str, PacketOutcome]]
    #: node name -> input class -> per-hop aggregate (includes injected
    #: control executions at their node).
    hop_summaries: Dict[str, Dict[str, ClassSummary]]
    #: composed route name -> end-to-end aggregate.
    route_summaries: Dict[str, RouteSummary]
    #: Human-readable record of every churn event, in firing order.
    churn_log: List[str]
    #: Largest observation of each instance-qualified PCV, graph-wide.
    max_pcvs: Dict[str, int]

    @property
    def packets(self) -> int:
        return len(self.outcomes)

    @property
    def hop_executions(self) -> int:
        return sum(outcome.hop_count for outcome in self.outcomes) + len(self.control_outcomes)

    @property
    def violations(self) -> List[str]:
        messages = [m for o in self.outcomes for m in o.violations]
        messages += [
            f"{node}: {m}" for node, o in self.control_outcomes for m in o.violations
        ]
        return messages

    @property
    def ok(self) -> bool:
        return not self.violations

    def hop_classes_seen(self) -> Dict[str, List[str]]:
        """Input classes each node's executions actually fell into."""
        return {node: sorted(classes) for node, classes in self.hop_summaries.items()}

    def routes_seen(self) -> List[str]:
        return sorted(self.route_summaries)

    def table(self) -> str:
        """Render the per-route end-to-end summary table."""
        models = sorted(
            {model for s in self.route_summaries.values() for model in s.max_cycles}
        )
        headers = ["route", "packets", "instr max meas≤pred", "mem max meas≤pred"]
        headers += [f"{model} cycles" for model in models]
        rows: List[List[str]] = []
        for name in sorted(self.route_summaries):
            summary = self.route_summaries[name]
            row = [name, str(summary.packets)]
            for metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
                row.append(
                    f"{summary.max_measured.get(metric, 0)} ≤ "
                    f"{float(summary.max_predicted.get(metric, Fraction(0))):.0f}"
                )
            for model in models:
                measured, predicted = summary.max_cycles.get(
                    model, (Fraction(0), Fraction(0))
                )
                row.append(f"{float(measured):.0f} ≤ {float(predicted):.0f}")
            rows.append(row)
        title = (
            f"{self.graph_name} / {self.workload}: {self.packets} packets, "
            f"{self.hop_executions} hop executions, "
            f"{len(self.churn_log)} churn events, "
        )
        title += "no violations" if self.ok else f"{len(self.violations)} VIOLATIONS"
        lines = [title, format_table(headers, rows)]
        coverage = "; ".join(
            f"{node}: {', '.join(classes)}"
            for node, classes in sorted(self.hop_classes_seen().items())
        )
        lines.append(f"per-hop coverage — {coverage}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """Serialise for the ``BENCH_*.json`` report."""
        routes: Dict[str, object] = {}
        for name, summary in self.route_summaries.items():
            routes[name] = {
                "packets": summary.packets,
                "violations": summary.violations,
                "max_measured": {str(m): v for m, v in summary.max_measured.items()},
                "max_predicted": {
                    str(m): float(v) for m, v in summary.max_predicted.items()
                },
                "max_cycles": {
                    model: {"measured": float(meas), "predicted": float(pred)}
                    for model, (meas, pred) in summary.max_cycles.items()
                },
            }
        hops: Dict[str, object] = {
            node: {name: _summary_json(summary) for name, summary in classes.items()}
            for node, classes in self.hop_summaries.items()
        }
        return {
            "packets": self.packets,
            "hop_executions": self.hop_executions,
            "ok": self.ok,
            "violations": self.violations[:20],
            "routes": routes,
            "hops": hops,
            "max_pcvs": dict(self.max_pcvs),
            "churn": {"events": len(self.churn_log), "log": list(self.churn_log)},
        }


class GraphReplayer:
    """Replays packet streams through a service graph, checking both levels.

    Args:
        graph: the validated topology.
        models: hardware models per-hop *and* end-to-end cycles are
            priced under.  The composed cycle expressions are derived
            with every structure of the graph in scope, so the composed
            bound dominates the sum of per-hop measurements (constant
            monomials price at the most expensive structure in scope).
    """

    def __init__(self, graph: Graph, *, models: Sequence[CycleModel] = ()) -> None:
        self.graph = graph
        self.models = tuple(models)
        self.replayers: Dict[str, Replayer] = {
            name: Replayer(node.harness, node.contract, models=models)
            for name, node in graph.nodes.items()
        }
        self.composed: PerformanceContract = graph.compose()
        self._structures = graph.structures()
        self._entries_by_route: Dict[str, ContractEntry] = {
            entry.input_class.name: entry for entry in self.composed.entries
        }
        self._zero_pcvs = {name: 0 for name in self.composed.variables()}
        # Composed entries are numerous (every reachable route) but a
        # replay only traverses a handful, so their evaluators compile
        # lazily, memoised by route name.
        self._count_cache: Dict[str, List[Tuple[Metric, Callable[..., int], int]]] = {}
        self._cycle_cache: Dict[str, List[Tuple[str, Callable[..., int], int]]] = {}

    # ------------------------------------------------------------------ #
    # Composed-entry evaluators
    # ------------------------------------------------------------------ #
    def _count_programs(self, entry: ContractEntry) -> List[Tuple[Metric, Callable[..., int], int]]:
        name = entry.input_class.name
        programs = self._count_cache.get(name)
        if programs is None:
            programs = []
            for metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
                expr = entry.expr(metric)
                denom = expr.denominator_lcm()
                programs.append((metric, expr.compile_scaled(denom), denom))
            self._count_cache[name] = programs
        return programs

    def _cycle_programs(self, entry: ContractEntry) -> List[Tuple[str, Callable[..., int], int]]:
        name = entry.input_class.name
        programs = self._cycle_cache.get(name)
        if programs is None:
            programs = []
            for model in self.models:
                expr = model.cycles_expr(entry, structures=self._structures)
                denom = expr.denominator_lcm()
                programs.append((model.name, expr.compile_scaled(denom), denom))
            self._cycle_cache[name] = programs
        return programs

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def replay(
        self,
        stream: Sequence[GraphFrame],
        *,
        schedule: Optional[ChurnSchedule] = None,
        workload: str = "stream",
    ) -> GraphReplayResult:
        """Replay the stream, firing churn events between packets.

        Never raises on a violation — every check failure is recorded on
        its packet's outcome, mirroring the single-NF replayer.
        """
        schedule = schedule if schedule is not None else ChurnSchedule()
        outcomes: List[GraphPacketOutcome] = []
        control_outcomes: List[Tuple[str, PacketOutcome]] = []
        hop_summaries: Dict[str, Dict[str, ClassSummary]] = {}
        route_summaries: Dict[str, RouteSummary] = {}
        churn_log: List[str] = []
        max_pcvs: Dict[str, int] = dict(self._zero_pcvs)

        def absorb_hop(node: str, outcome: PacketOutcome) -> None:
            key = outcome.class_name if outcome.class_name is not None else "<unclassified>"
            hop_summaries.setdefault(node, {}).setdefault(key, ClassSummary(key)).absorb(
                outcome
            )
            for name, value in outcome.pcvs.items():
                if value > max_pcvs.get(name, 0):
                    max_pcvs[name] = value

        clock_offset = 0
        for index, frame in enumerate(stream):
            for event in schedule.at(index):
                if event.jump:
                    clock_offset += event.jump
                if event.mutate is not None:
                    event.mutate(self.graph.nodes[event.node])
                if event.inject is not None:
                    stimulus = event.inject(frame.time + clock_offset)
                    outcome = self.replayers[event.node].score(stimulus, index)
                    control_outcomes.append((event.node, outcome))
                    absorb_hop(event.node, outcome)
                churn_log.append(f"@{index}: {event.describe}")

            meta: Dict[str, int] = dict(frame.scalars)
            meta["time"] = frame.time + clock_offset
            node_name: Optional[str] = self.graph.entry
            packet = frame.packet
            hops: List[Tuple[str, PacketOutcome]] = []
            violations: List[str] = []
            classified = True
            while node_name is not None:
                node = self.graph.nodes[node_name]
                stimulus = node.make_stimulus(packet, meta)
                outcome = self.replayers[node_name].score(stimulus, index)
                hops.append((node_name, outcome))
                absorb_hop(node_name, outcome)
                violations.extend(f"{node_name}: {m}" for m in outcome.violations)
                if outcome.class_name is None:
                    classified = False
                    break
                packet = node.harness.last_packet
                node_name = self.graph.next_hop(node_name, outcome.class_name)

            measured: Dict[Metric, int] = {
                Metric.INSTRUCTIONS: 0,
                Metric.MEMORY_ACCESSES: 0,
            }
            cycle_sums: Dict[str, Fraction] = {model.name: Fraction(0) for model in self.models}
            bindings = dict(self._zero_pcvs)
            for _, hop_outcome in hops:
                for metric in measured:
                    measured[metric] += hop_outcome.measured.get(metric, 0)
                for model_name, (meas, _) in hop_outcome.cycles.items():
                    cycle_sums[model_name] += meas
                bindings.update(hop_outcome.pcvs)

            route_name: Optional[str] = None
            predicted: Dict[Metric, Fraction] = {}
            cycles: Dict[str, Tuple[Fraction, Fraction]] = {}
            if classified:
                route = tuple((node, o.class_name) for node, o in hops)
                route_name = route_class_name(route)  # type: ignore[arg-type]
                entry = self._entries_by_route.get(route_name)
                if entry is None:
                    violations.append(
                        f"packet {index}: route {route_name!r} has no composed entry"
                    )
                else:
                    for metric, evaluate, denom in self._count_programs(entry):
                        scaled = evaluate(bindings)
                        predicted[metric] = Fraction(scaled, denom)
                        if measured[metric] * denom > scaled:
                            violations.append(
                                f"packet {index} ({route_name}): end-to-end measured "
                                f"{metric} {measured[metric]} exceeds composed bound "
                                f"{float(predicted[metric]):.1f}"
                            )
                    for model_name, evaluate, denom in self._cycle_programs(entry):
                        bound = Fraction(evaluate(bindings), denom)
                        total = cycle_sums[model_name]
                        cycles[model_name] = (total, bound)
                        if total > bound:
                            violations.append(
                                f"packet {index} ({route_name}): end-to-end {model_name} "
                                f"measured {float(total):.1f} cycles exceeds composed "
                                f"bound {float(bound):.1f}"
                            )

            graph_outcome = GraphPacketOutcome(
                index=index,
                note=frame.note,
                hops=tuple(hops),
                route_name=route_name,
                measured=measured,
                predicted=predicted,
                cycles=cycles,
                violations=tuple(violations),
            )
            outcomes.append(graph_outcome)
            if route_name is not None:
                route_summaries.setdefault(route_name, RouteSummary(route_name)).absorb(
                    graph_outcome
                )

        return GraphReplayResult(
            graph_name=self.graph.name,
            workload=workload,
            outcomes=outcomes,
            control_outcomes=control_outcomes,
            hop_summaries=hop_summaries,
            route_summaries=route_summaries,
            churn_log=churn_log,
            max_pcvs=max_pcvs,
        )
