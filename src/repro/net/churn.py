"""Mid-stream churn: control-plane events injected DURING a graph replay.

Deployments are never static: backends drain and return, routes change,
idle flow state expires.  A :class:`ChurnSchedule` pins such events to
packet indices of the replayed stream, so the same (seed, schedule) pair
always produces the same interleaving — the property the determinism
tests and the bit-identical-across-workers bench depend on.

Three event shapes exist, and they deliberately differ in *where* the
cost lands:

* **Injected stimuli** (backend add/remove) go through the traced
  datapath of their node: the LB's repopulation cost (``lb_tbl.f``) must
  appear in a trace and be classified (class ``reconfig``) against the
  node's contract, exactly like the paper's control-plane entries.  No
  link forwards ``reconfig``, so control frames terminate at their node.
* **Host mutations** (route updates) model out-of-band configuration: a
  :class:`~repro.structures.LpmTrie` route install is a control-plane
  RPC in a real router, not a packet, so it mutates state untraced and
  is only recorded in the churn log.  Its *effect* is still observable:
  subsequent packets classify ``routed`` where they classified
  ``no_route``.
* **Time jumps** advance the stream clock past expiry deadlines, so the
  next packet's structure operations sweep expired state (the ``w`` /
  ``e`` PCVs) — churn whose cost is charged to whatever data packet
  happens to arrive after the idle period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.nf import lb as lb_nf
from repro.nf.workloads import lb_control_stimulus
from repro.structures.lpm import LpmTrie
from repro.traffic.generators import Stimulus

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "backend_add",
    "backend_remove",
    "expiry_jump",
    "route_update",
]


@dataclass(frozen=True)
class ChurnEvent:
    """One control-plane event, fired before stream packet ``at`` replays.

    Attributes:
        at: index of the stream packet this event precedes.
        node: name of the graph node the event targets.
        kind: event kind (``backend_add`` / ``backend_remove`` /
            ``route_update`` / ``expiry_jump``), for logs and reports.
        describe: human-readable summary for the churn log.
        inject: when set, ``inject(time)`` builds a stimulus replayed
            *through the traced datapath* of ``node`` at the stream's
            current clock — the event's cost is classified against the
            node's contract like any packet.
        mutate: when set, called with the target :class:`~repro.net.
            graph.Node` for an untraced host-side state change.
        jump: ticks added to the stream clock (0 for non-time events).
    """

    at: int
    node: str
    kind: str
    describe: str
    inject: Optional[Callable[[int], Stimulus]] = None
    mutate: Optional[Callable[..., None]] = None
    jump: int = 0


@dataclass
class ChurnSchedule:
    """Events of one replay, ordered by stream index (stable within one).

    The schedule is data, not behaviour: building it is deterministic in
    its inputs, so two replays of the same (stream, schedule) pair are
    byte-identical regardless of worker count or wall clock.
    """

    events: List[ChurnEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda event: event.at)
        self._by_index: Dict[int, List[ChurnEvent]] = {}
        for event in self.events:
            self._by_index.setdefault(event.at, []).append(event)

    def __len__(self) -> int:
        return len(self.events)

    def at(self, index: int) -> Sequence[ChurnEvent]:
        """Events firing immediately before stream packet ``index``."""
        return self._by_index.get(index, ())

    def merged(self, other: "ChurnSchedule") -> "ChurnSchedule":
        return ChurnSchedule(self.events + other.events)


# --------------------------------------------------------------------------- #
# Event builders
# --------------------------------------------------------------------------- #
def backend_add(at: int, node: str, backend: int) -> ChurnEvent:
    """Activate a backend on an LB node via a traced control frame."""
    return ChurnEvent(
        at=at,
        node=node,
        kind="backend_add",
        describe=f"add backend {backend} at {node}",
        inject=lambda time: lb_control_stimulus(
            lb_nf.CMD_ADD, backend, time, f"churn:add:{backend}"
        ),
    )


def backend_remove(at: int, node: str, backend: int) -> ChurnEvent:
    """Drain a backend on an LB node via a traced control frame."""
    return ChurnEvent(
        at=at,
        node=node,
        kind="backend_remove",
        describe=f"drain backend {backend} at {node}",
        inject=lambda time: lb_control_stimulus(
            lb_nf.CMD_REMOVE, backend, time, f"churn:remove:{backend}"
        ),
    )


def route_update(
    at: int, node: str, prefix: int, length: int, port: int
) -> ChurnEvent:
    """Install a route into a router node's FIB, host-side (untraced)."""

    def mutate(node) -> None:
        for structure in node.harness.structures:
            if isinstance(structure, LpmTrie):
                structure.add_route(prefix, length, port)
                return
        raise ValueError(f"node {node.name!r} has no LpmTrie to route into")

    return ChurnEvent(
        at=at,
        node=node,
        kind="route_update",
        describe=f"route {prefix:#010x}/{length} -> port {port} at {node}",
        mutate=mutate,
    )


def expiry_jump(at: int, node: str, jump: int) -> ChurnEvent:
    """Idle the stream ``jump`` ticks so expiry sweeps fire at ``node``.

    The jump advances the *stream* clock (every node sees it — expiry is
    a property of time, not topology); ``node`` names the hop whose
    sweep the schedule means to provoke, for the churn log.
    """
    return ChurnEvent(
        at=at,
        node=node,
        kind="expiry_jump",
        describe=f"clock +{jump} ticks (expiry sweep at {node})",
        jump=jump,
    )
