"""Deployable service graphs: topology, composition, end-to-end replay.

The paper composes contracts for linear chains (§6); this package carries
the idea to deployment shape: NF instances become :class:`Node` objects
in a directed :class:`Graph` whose links forward by input class, the
composed contract enumerates every reachable route
(:meth:`Graph.compose`), and :class:`GraphReplayer` replays one packet
stream end-to-end — scoring every hop against its own contract and every
complete journey against the composed one — while a
:class:`~repro.net.churn.ChurnSchedule` reconfigures the deployment
mid-stream (backend churn, route installs, expiry sweeps).

The shipped deployment (:mod:`repro.net.workloads`) wires the Maglev-style
LB, the VigNAT-style NAT and the LPM router into a 3-hop ingress pipeline
fed from a checked-in pcap fixture (``captures/graph_mix.pcap``).
"""

from repro.net.churn import (
    ChurnEvent,
    ChurnSchedule,
    backend_add,
    backend_remove,
    expiry_jump,
    route_update,
)
from repro.net.graph import Graph, GraphError, Link, Node
from repro.net.replay import (
    GraphFrame,
    GraphPacketOutcome,
    GraphReplayResult,
    GraphReplayer,
    RouteSummary,
)
from repro.net.workloads import (
    GraphWorkload,
    graph_churn_schedule,
    graph_mix_capture,
    graph_stream,
    lb_nat_router_graph,
    lb_nat_router_workloads,
    load_graph_capture,
)

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "Graph",
    "GraphError",
    "GraphFrame",
    "GraphPacketOutcome",
    "GraphReplayResult",
    "GraphReplayer",
    "GraphWorkload",
    "Link",
    "Node",
    "RouteSummary",
    "backend_add",
    "backend_remove",
    "expiry_jump",
    "graph_churn_schedule",
    "graph_mix_capture",
    "graph_stream",
    "lb_nat_router_graph",
    "lb_nat_router_workloads",
    "load_graph_capture",
    "route_update",
]
