"""Checked-in capture fixtures for the service-graph workloads.

The ``.pcap`` files here are synthetic, generated deterministically by
``tools/make_captures.py`` from the builders in
:mod:`repro.net.workloads`; a test regenerates each fixture and asserts
byte-identity, so the binary blobs cannot drift from the code that
explains them.
"""
