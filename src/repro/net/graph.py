"""Deployable service graphs: NF instances wired into directed topologies.

A :class:`Graph` is the deployment artifact the paper's composition story
(§6) stops short of: concrete NF instances (each a
:class:`~repro.nf.replay.NFHarness` plus its generated contract) as
:class:`Node` objects, connected by :class:`Link` edges whose *forwarding
predicate* is a set of the source NF's input classes — a packet classified
``new_flow`` at the LB follows the ``lb → nat`` link, a packet classified
``short`` matches no link and terminates at the LB.  Because forwarding is
decided by input class, the set of possible end-to-end routes is known
statically, and :meth:`Graph.compose` hands the topology to
:func:`repro.core.composition.compose_graph_contracts` to derive the
composed contract with one entry per reachable route.

Validation at construction time (all are deployment bugs, not traffic
properties, so they fail fast):

* the entry node exists and every link references known nodes;
* forwarding is deterministic: no two links out of one node claim the
  same input class, and every claimed class exists in that node's
  contract;
* the node-level topology is acyclic (a cyclic route has no finite
  composed bound);
* structure instance names are globally unique across nodes, so the
  instance-qualified PCVs of different hops can never collide when a
  route's observations are merged into one binding environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.core.composition import compose_graph_contracts
from repro.core.contract import PerformanceContract
from repro.nf.replay import NFHarness
from repro.structures.base import Structure
from repro.traffic.generators import Stimulus

__all__ = ["Graph", "GraphError", "IngressFn", "Link", "Node"]


class GraphError(ValueError):
    """The service graph is ill-formed (topology or wiring)."""


#: Builds the stimulus one node consumes from the (possibly rewritten)
#: packet bytes arriving on its ingress link plus the stream metadata
#: (``time`` always; entry-node extras like ``in_port`` as the workload
#: defines them).  A wire carries bytes, not scalars — this is where each
#: NF's non-packet inputs are materialised per hop.
IngressFn = Callable[[bytes, Mapping[str, int]], Stimulus]


def _default_ingress(packet: bytes, meta: Mapping[str, int]) -> Stimulus:
    """Default adapter: packet bytes only (NFs whose sole scalar is len)."""
    return Stimulus(packet=packet, note=str(meta.get("note", "")))


@dataclass(frozen=True)
class Node:
    """One deployed NF instance.

    Attributes:
        name: unique node name (also the hop label in composed entries).
        harness: the NF wired for replay; the graph switches it to
            ``capture_output`` mode so egress bytes can cross links.
        contract: the NF's generated contract *at this instance's
            geometry* — per-hop classification happens against it.
        ingress: stimulus adapter (see :data:`IngressFn`).
    """

    name: str
    harness: NFHarness
    contract: PerformanceContract
    ingress: IngressFn = _default_ingress

    def make_stimulus(self, packet: bytes, meta: Mapping[str, int]) -> Stimulus:
        return self.ingress(packet, meta)


@dataclass(frozen=True)
class Link:
    """A directed edge: which source classes forward to which node."""

    src: str
    dst: str
    #: Input classes of ``src``'s contract that forward along this link.
    classes: FrozenSet[str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "classes", frozenset(self.classes))
        if not self.classes:
            raise GraphError(f"link {self.src} -> {self.dst} forwards no classes")


class Graph:
    """A validated service graph, ready to compose and replay.

    Args:
        name: graph name (bench report key, composed-contract name).
        nodes: the deployed NF instances, entry-first or not (order only
            affects rendering).
        links: directed class-predicated edges.
        entry: name of the node every stream packet enters at.
    """

    def __init__(
        self,
        name: str,
        nodes: Iterable[Node],
        links: Iterable[Link],
        *,
        entry: str,
    ) -> None:
        self.name = name
        self.nodes: Dict[str, Node] = {}
        for node in nodes:
            if node.name in self.nodes:
                raise GraphError(f"duplicate node name {node.name!r}")
            self.nodes[node.name] = node
        self.links: Tuple[Link, ...] = tuple(links)
        self.entry = entry
        self._forward: Dict[Tuple[str, str], str] = {}
        self._validate()
        # Egress bytes must survive each hop to feed the next one.
        for node in self.nodes.values():
            node.harness.capture_output = True

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if self.entry not in self.nodes:
            raise GraphError(f"entry node {self.entry!r} is not a node")
        for link in self.links:
            for end in (link.src, link.dst):
                if end not in self.nodes:
                    raise GraphError(f"link references unknown node {end!r}")
            known = set(self.nodes[link.src].contract.class_names())
            bogus = sorted(link.classes - known)
            if bogus:
                raise GraphError(
                    f"link {link.src} -> {link.dst} forwards classes {bogus} "
                    f"that {link.src!r}'s contract does not define"
                )
            for class_name in link.classes:
                key = (link.src, class_name)
                if key in self._forward:
                    raise GraphError(
                        f"non-deterministic forwarding: class {class_name!r} of "
                        f"{link.src!r} claimed by links to {self._forward[key]!r} "
                        f"and {link.dst!r}"
                    )
                self._forward[key] = link.dst
        self._check_acyclic()
        self._check_disjoint_instances()

    def _check_acyclic(self) -> None:
        edges: Dict[str, List[str]] = {}
        for link in self.links:
            edges.setdefault(link.src, []).append(link.dst)
        state: Dict[str, int] = {}  # 0 visiting, 1 done

        def visit(node: str, trail: Tuple[str, ...]) -> None:
            if state.get(node) == 1:
                return
            if state.get(node) == 0:
                cycle = trail[trail.index(node) :] + (node,)
                raise GraphError(f"cyclic topology: {' -> '.join(cycle)}")
            state[node] = 0
            for nxt in edges.get(node, ()):
                visit(nxt, trail + (node,))
            state[node] = 1

        for name in self.nodes:
            visit(name, ())

    def _check_disjoint_instances(self) -> None:
        owners: Dict[str, str] = {}
        for node in self.nodes.values():
            for structure in node.harness.structures:
                if structure.name in owners:
                    raise GraphError(
                        f"structure instance {structure.name!r} deployed by both "
                        f"{owners[structure.name]!r} and {node.name!r}; rename one "
                        "so the instance-qualified PCVs of different hops cannot "
                        "collide"
                    )
                owners[structure.name] = node.name

    # ------------------------------------------------------------------ #
    # Topology queries
    # ------------------------------------------------------------------ #
    def next_hop(self, node: str, class_name: str) -> Optional[str]:
        """The node a packet classified ``class_name`` at ``node`` goes to."""
        return self._forward.get((node, class_name))

    def structures(self) -> Tuple[Structure, ...]:
        """Every structure instance deployed anywhere in the graph."""
        return tuple(
            structure for node in self.nodes.values() for structure in node.harness.structures
        )

    def hop_names(self) -> List[str]:
        """Node names, entry first, then the rest in insertion order."""
        return [self.entry] + [name for name in self.nodes if name != self.entry]

    # ------------------------------------------------------------------ #
    # Composition
    # ------------------------------------------------------------------ #
    def compose(self, name: Optional[str] = None) -> PerformanceContract:
        """Derive the composed contract: one entry per reachable route."""
        return compose_graph_contracts(
            name if name is not None else self.name,
            {node.name: node.contract for node in self.nodes.values()},
            self.entry,
            self.next_hop,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Graph {self.name!r} nodes={list(self.nodes)} "
            f"links={[(l.src, l.dst) for l in self.links]} entry={self.entry!r}>"
        )
