"""Shared glue for replaying concrete executions against contracts.

Every NF replays the same way: the packet bytes map onto the ``pkt[i]``
byte symbols of the symbolic initial state, the scalar inputs map onto
their parameter symbols, and each value-returning extern call maps onto
the model-output symbol ``"{extern}#{index}"`` (the symbolic engine and
the concrete tracer number extern calls identically).  NFs wrap this in a
thin, NF-specific function naming their scalars.

:class:`NFHarness` packages the replay convention into the object the
:class:`repro.traffic.replayer.Replayer` drives: it owns the interpreter,
writes each stimulus packet into NF memory, builds the argument list from
the NF's declared scalar order, and reconstructs the replay environment
that matches the execution back to a symbolic path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.nfil.interpreter import ExternHandler, Interpreter, Memory
from repro.nfil.program import Module
from repro.nfil.tracer import ExecutionTrace
from repro.structures.base import Structure, check_extern_collisions
from repro.traffic.generators import Stimulus

__all__ = ["NFHarness", "replay_env"]

# The ``pkt[i]`` symbol names, interned once: replay builds one env per
# packet, and formatting the same key strings 10^4+ times per workload is
# measurable.  The list only ever grows.
_PKT_KEYS: List[str] = []


def _pkt_keys(count: int) -> List[str]:
    while len(_PKT_KEYS) < count:
        _PKT_KEYS.append(f"pkt[{len(_PKT_KEYS)}]")
    return _PKT_KEYS


def replay_env(
    packet: bytes,
    sym_bytes: int,
    trace: ExecutionTrace,
    **scalars: int,
) -> Dict[str, int]:
    """Build the symbol assignment a concrete execution corresponds to.

    Args:
        packet: the concrete packet buffer (only the first ``sym_bytes``
            bytes were symbolic during analysis).
        sym_bytes: how many leading packet bytes the NF made symbolic.
        trace: the execution's trace; extern results become the
            ``"{extern}#{index}"`` model-output bindings.
        **scalars: concrete values of the NF's scalar inputs, keyed by
            their symbol names (e.g. ``len=60, in_port=3``).
    """
    env: Dict[str, int] = dict(zip(_pkt_keys(sym_bytes), packet[:sym_bytes]))
    env.update(scalars)
    for call in trace.extern_calls:
        if call.result is not None:
            env[f"{call.name}#{call.index}"] = call.result
    return env


class NFHarness:
    """One NF wired for concrete replay: module, state, and input layout.

    Args:
        name: NF name used in replay results and bench reports.
        module: the NF's (validated) NFIL module.
        function: entry function to invoke per stimulus.
        handler: the extern handler backing the NF's state (usually a
            :class:`~repro.structures.base.Structure` or a merge of them).
        structures: the structure instances behind ``handler`` — the
            hardware models use them to attribute extern memory accesses.
        pkt_base: address the packet buffer is written to.
        sym_bytes: how many leading packet bytes were symbolic during
            contract generation (the replay environment covers exactly
            those).
        scalar_order: the function's scalar parameters in call order,
            following the packet pointer (e.g. ``("len", "in_port",
            "time")``).  A stimulus that omits ``len`` gets the literal
            packet length.
        capture_output: when True, each :meth:`run` also reads the packet
            buffer back out of NF memory into :attr:`last_packet` — the
            post-rewrite bytes a downstream hop of a service graph
            receives.  Off by default: single-NF replay never looks at
            the egress bytes and the copy would cost on the bench's hot
            loop.
    """

    def __init__(
        self,
        name: str,
        module: Module,
        function: str,
        *,
        handler: ExternHandler,
        structures: Tuple[Structure, ...] = (),
        pkt_base: int,
        sym_bytes: int,
        scalar_order: Tuple[str, ...] = ("len",),
        capture_output: bool = False,
    ) -> None:
        self.name = name
        self.module = module
        self.function = function
        self.handler = handler
        # Refuse ambiguous extern manglings up front (`a_b`+`c` vs `a`+`b_c`):
        # a collision here would cross-wire cost attribution silently.
        check_extern_collisions(structures)
        self.structures = structures
        self.pkt_base = pkt_base
        self.sym_bytes = sym_bytes
        self.scalar_order = scalar_order
        self.capture_output = capture_output
        #: Egress packet bytes of the last :meth:`run` (post NF rewrites);
        #: only populated when ``capture_output`` is on.
        self.last_packet: bytes = b""
        #: Whether :meth:`run` materialises the per-access address stream
        #: (``ExecutionTrace.accesses``).  Off by default — counts are all
        #: plain replay needs — and switched on by the replayer when a
        #: cache-simulating hardware model is in the model set.
        self.record_accesses: bool = False
        self._interpreter = Interpreter(module, handler=handler)
        self._scalar_memo: Optional[Tuple[Stimulus, Dict[str, int]]] = None

    def scalars_for(self, stimulus: Stimulus) -> Dict[str, int]:
        """Resolve the stimulus scalars, defaulting ``len`` to the buffer.

        The replayer resolves the same stimulus twice per packet (once to
        run it, once to build its replay environment), so the last
        resolution is memoised by stimulus identity.
        """
        memo = self._scalar_memo
        if memo is not None and memo[0] is stimulus:
            return memo[1]
        scalars = dict(stimulus.scalars)
        if "len" in self.scalar_order:
            scalars.setdefault("len", len(stimulus.packet))
        missing = [name for name in self.scalar_order if name not in scalars]
        if missing:
            raise KeyError(f"{self.name}: stimulus missing scalars {missing}")
        self._scalar_memo = (stimulus, scalars)
        return scalars

    def run(self, stimulus: Stimulus) -> Tuple[Optional[int], ExecutionTrace]:
        """Execute one stimulus against the live NF state."""
        scalars = self.scalars_for(stimulus)
        memory = Memory()
        memory.write_bytes(self.pkt_base, stimulus.packet)
        args = [self.pkt_base] + [scalars[name] for name in self.scalar_order]
        # Plain replay only consumes aggregate counts; the address stream
        # is materialised only when a cache simulator will consume it.
        trace = ExecutionTrace(record_accesses=self.record_accesses)
        result = self._interpreter.run(self.function, args, memory=memory, trace=trace)
        if self.capture_output:
            self.last_packet = memory.read_bytes(self.pkt_base, len(stimulus.packet))
        return result

    def env(self, stimulus: Stimulus, trace: ExecutionTrace) -> Dict[str, int]:
        """Build the replay environment of one executed stimulus."""
        scalars = self.scalars_for(stimulus)
        return replay_env(stimulus.packet, self.sym_bytes, trace, **scalars)
