"""Shared glue for matching concrete executions back to symbolic paths.

Every NF replays the same way: the packet bytes map onto the ``pkt[i]``
byte symbols of the symbolic initial state, the scalar inputs map onto
their parameter symbols, and each value-returning extern call maps onto
the model-output symbol ``"{extern}#{index}"`` (the symbolic engine and
the concrete tracer number extern calls identically).  NFs wrap this in a
thin, NF-specific function naming their scalars.
"""

from __future__ import annotations

from typing import Dict

from repro.nfil.tracer import ExecutionTrace

__all__ = ["replay_env"]


def replay_env(
    packet: bytes,
    sym_bytes: int,
    trace: ExecutionTrace,
    **scalars: int,
) -> Dict[str, int]:
    """Build the symbol assignment a concrete execution corresponds to.

    Args:
        packet: the concrete packet buffer (only the first ``sym_bytes``
            bytes were symbolic during analysis).
        sym_bytes: how many leading packet bytes the NF made symbolic.
        trace: the execution's trace; extern results become the
            ``"{extern}#{index}"`` model-output bindings.
        **scalars: concrete values of the NF's scalar inputs, keyed by
            their symbol names (e.g. ``len=60, in_port=3``).
    """
    env: Dict[str, int] = {f"pkt[{i}]": byte for i, byte in enumerate(packet[:sym_bytes])}
    env.update(scalars)
    for call in trace.extern_calls:
        if call.result is not None:
            env[f"{call.name}#{call.index}"] = call.result
    return env
