"""A VigNAT-style NAT: the first multi-instance NF of the reproduction.

The NAT is the forcing function for per-instance PCV namespacing: it keeps
**two** :class:`~repro.structures.ExpiringMap` instances — the forward
flow table ``fwd`` (internal endpoint → leased external port) and the
reverse table ``rev`` (external port → internal endpoint) — plus a
:class:`~repro.structures.PortAllocator` ``ports`` for the lease pool.
Because every structure instance emits instance-qualified PCVs, the
generated contract distinguishes ``fwd.t`` from ``rev.t`` (and ``fwd.w`` /
``fwd.e`` from ``rev.w`` / ``rev.e``): the two tables' chain walks, expiry
sweeps and adversarial bounds never alias.

State behind externs (the Vigor-style split):

* ``fwd_expire`` / ``fwd_put`` / ``fwd_get`` — forward flow table,
  PCVs ``fwd.w`` / ``fwd.e`` / ``fwd.t``;
* ``rev_expire`` / ``rev_put`` / ``rev_get`` — reverse flow table,
  PCVs ``rev.w`` / ``rev.e`` / ``rev.t``;
* ``ports_alloc`` (and host-side ``ports_release``) — constant-time port
  leasing, no PCVs.

Packet layout assumed (classic Ethernet + IPv4 + L4 ports, no VLANs):

========  =========================================
offset    field
========  =========================================
12..13    EtherType (0x0800 for IPv4, big-endian)
26..29    IPv4 source address (big-endian)
30..33    IPv4 destination address (big-endian)
34..35    L4 source port (big-endian)
36..37    L4 destination port (big-endian)
========  =========================================

Input classes of the generated contract:

=====================  ====================================================
``short``              frame shorter than Ethernet+IPv4+ports: dropped
``non_ip``             EtherType is not IPv4: dropped
``internal_new``       LAN flow without a lease: port allocated, both
                       tables installed, source port rewritten, forwarded
``internal_existing``  LAN flow with a live lease: both leases refreshed,
                       source port rewritten, forwarded
``no_ports``           LAN flow without a lease and the pool exhausted:
                       dropped
``external_hit``       WAN frame to a leased port: leases refreshed,
                       destination rewritten to the internal endpoint,
                       forwarded
``external_miss``      WAN frame to an unleased port: dropped
=====================  ====================================================

Worst-case workload: :func:`repro.nf.workloads.nat_adversarial` pins all
six map PCVs to their registry bounds at once — colliding flow keys build
a maximal ``fwd`` chain, a crafted (colliding) port pool builds a maximal
``rev`` chain, and a full-revolution time jump expires both tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.bolt import Bolt, BoltConfig
from repro.core.contract import PerformanceContract
from repro.core.input_class import InputClass
from repro.core.pcv import PCVRegistry
from repro.nf.replay import replay_env
from repro.nfil.builder import FunctionBuilder
from repro.nfil.program import Module
from repro.nfil.tracer import ExecutionTrace
from repro.nfil.validate import validate_module
from repro.structures import NOT_FOUND, ExpiringMap, PortAllocator, StructureModel
from repro.sym import expr as E
from repro.sym.expr import BV, Const, Sym
from repro.sym.paths import Path
from repro.sym.state import SymbolicMemory

__all__ = [
    "DROP_NO_PORTS",
    "DROP_NON_IP",
    "DROP_SHORT",
    "DROP_UNKNOWN_FLOW",
    "FWD_NAME",
    "LAN_PORT",
    "MAX_PORTS",
    "MIN_NAT_FRAME",
    "NAT_FUNCTION",
    "NOT_FOUND",
    "PKT_BASE",
    "PORT_BASE",
    "PORTS_NAME",
    "REV_NAME",
    "build_nat_module",
    "classify_nat_path",
    "generate_nat_contract",
    "make_nat_tables",
    "nat_registry",
    "nat_replay_env",
    "nat_symbolic_inputs",
]

#: Entry function of the NAT.
NAT_FUNCTION = "nat_process"

#: Where the packet buffer lives in NF memory.
PKT_BASE = 0x1000
#: Ethernet + minimal IPv4 header + the two L4 port fields.
MIN_NAT_FRAME = 38
#: How many leading packet bytes are made symbolic during analysis.
PKT_SYM_BYTES = MIN_NAT_FRAME

#: EtherType 0x0800 (IPv4) as read by a little-endian 16-bit load.
ETHERTYPE_IPV4_LE = 0x0008

#: The LAN-facing device: frames arriving here are translated outbound.
LAN_PORT = 0
#: Valid device ids are [0, MAX_PORTS).
MAX_PORTS = 64

#: First port of the default lease pool (the IANA dynamic-port floor).
PORT_BASE = 49152

#: Structure instance names (also the PCV namespaces: ``fwd.t``, ``rev.t``).
FWD_NAME = "fwd"
REV_NAME = "rev"
PORTS_NAME = "ports"

#: Drop reason codes returned by the NAT.
DROP_SHORT = 0xFFE0
DROP_NON_IP = 0xFFE1
DROP_NO_PORTS = 0xFFE2
DROP_UNKNOWN_FLOW = 0xFFE3


def make_nat_tables(
    capacity: int = 64,
    timeout: int = 300,
    *,
    pool: Optional[Iterable[int]] = None,
) -> Tuple[ExpiringMap, ExpiringMap, PortAllocator]:
    """Build the NAT's state: forward table, reverse table, port pool.

    Args:
        capacity: live-flow capacity of each flow table.
        timeout: flow-lease timeout in ticks (both tables).
        pool: explicit external-port pool; defaults to ``capacity`` ports
            from :data:`PORT_BASE` up.
    """
    fwd = ExpiringMap(
        FWD_NAME, capacity=capacity, timeout=timeout, value_bound=1 << 16
    )
    rev = ExpiringMap(
        REV_NAME, capacity=capacity, timeout=timeout, value_bound=1 << 48
    )
    if pool is None:
        pool = range(PORT_BASE, PORT_BASE + capacity)
    ports = PortAllocator(PORTS_NAME, pool=pool)
    return fwd, rev, ports


def nat_registry(capacity: int = 64, timeout: int = 300) -> PCVRegistry:
    """PCVs of the NAT contract: both tables' namespaced registries."""
    return StructureModel(*make_nat_tables(capacity, timeout)).registry()


# --------------------------------------------------------------------------- #
# Stateless NFIL code
# --------------------------------------------------------------------------- #
def build_nat_module() -> Module:
    """Build (and validate) the NAT NFIL module."""
    module = Module("nat")
    fwd, rev, ports = make_nat_tables()
    for structure in (fwd, rev, ports):
        structure.declare(module)

    b = FunctionBuilder(NAT_FUNCTION, params=("pkt", "len", "in_port", "time"))
    b.call(fwd.extern_name("expire"), b.param("time"), void=True)
    b.call(rev.extern_name("expire"), b.param("time"), void=True)
    short = b.ult(b.param("len"), MIN_NAT_FRAME)
    b.br(short, "drop_short", "check_ethertype")

    b.block("drop_short")
    b.ret(DROP_SHORT)

    b.block("check_ethertype")
    pkt = b.param("pkt")
    ethertype = b.load(b.add(pkt, 12), size=2)
    is_ip = b.eq(ethertype, ETHERTYPE_IPV4_LE)
    b.br(is_ip, "direction", "drop_non_ip")

    b.block("drop_non_ip")
    b.ret(DROP_NON_IP)

    b.block("direction")
    internal = b.eq(b.param("in_port"), LAN_PORT)
    b.br(internal, "internal", "external")

    # -- LAN -> WAN: translate the source endpoint ----------------------- #
    b.block("internal")
    s3 = b.load(b.add(pkt, 26), size=1)
    s2 = b.load(b.add(pkt, 27), size=1)
    s1 = b.load(b.add(pkt, 28), size=1)
    s0 = b.load(b.add(pkt, 29), size=1)
    src_ip = b.or_(
        b.or_(b.shl(s3, 24), b.shl(s2, 16)),
        b.or_(b.shl(s1, 8), s0),
        name="src_ip",
    )
    p1 = b.load(b.add(pkt, 34), size=1)
    p0 = b.load(b.add(pkt, 35), size=1)
    src_port = b.or_(b.shl(p1, 8), p0, name="src_port")
    flow = b.or_(b.shl(src_ip, 16), src_port, name="flow")
    ext = b.call(fwd.extern_name("get"), flow, name="ext")
    leased = b.ne(ext, NOT_FOUND)
    b.br(leased, "refresh", "allocate")

    b.block("refresh")
    b.call(fwd.extern_name("put"), flow, ext, void=True)
    b.call(rev.extern_name("put"), ext, flow, void=True)
    b.store(b.add(pkt, 34), ext, size=2)  # rewrite the source port
    b.ret(ext)

    b.block("allocate")
    fresh = b.call(ports.extern_name("alloc"), name="fresh")
    got = b.ne(fresh, NOT_FOUND)
    b.br(got, "install", "drop_no_ports")

    b.block("drop_no_ports")
    b.ret(DROP_NO_PORTS)

    b.block("install")
    b.call(fwd.extern_name("put"), flow, fresh, void=True)
    b.call(rev.extern_name("put"), fresh, flow, void=True)
    b.store(b.add(pkt, 34), fresh, size=2)  # rewrite the source port
    b.ret(fresh)

    # -- WAN -> LAN: translate the destination endpoint ------------------ #
    b.block("external")
    d1 = b.load(b.add(pkt, 36), size=1)
    d0 = b.load(b.add(pkt, 37), size=1)
    dst_port = b.or_(b.shl(d1, 8), d0, name="dst_port")
    owner = b.call(rev.extern_name("get"), dst_port, name="owner")
    known = b.ne(owner, NOT_FOUND)
    b.br(known, "rewrite", "drop_unknown")

    b.block("drop_unknown")
    b.ret(DROP_UNKNOWN_FLOW)

    b.block("rewrite")
    b.call(rev.extern_name("put"), dst_port, owner, void=True)
    b.call(fwd.extern_name("put"), owner, dst_port, void=True)
    # Rewrite the destination port to the internal endpoint's port (the
    # low 16 bits of the flow id; a 2-byte store keeps exactly those).
    b.store(b.add(pkt, 36), owner, size=2)
    b.ret(owner)

    module.add_function(b.build())
    return validate_module(module)


# --------------------------------------------------------------------------- #
# Contract generation and concrete replay glue
# --------------------------------------------------------------------------- #
def nat_symbolic_inputs() -> Tuple[List[BV], SymbolicMemory, List[BV]]:
    """Symbolic initial state of one NAT invocation.

    The packet bytes are fresh symbols at :data:`PKT_BASE`, the scalars
    are ``len`` / ``in_port`` / ``time``, and the ingress device id is
    assumed valid.
    """
    memory = SymbolicMemory()
    memory.write_symbolic(PKT_BASE, PKT_SYM_BYTES, "pkt")
    in_port = Sym("in_port", 64)
    args: List[BV] = [
        Const(PKT_BASE, 64),
        Sym("len", 64),
        in_port,
        Sym("time", 64),
    ]
    constraints = [E.ult(in_port, Const(MAX_PORTS, 64))]
    return args, memory, constraints


_CLASS_DESCRIPTIONS = {
    "short": "frame shorter than Ethernet+IPv4+ports; dropped unparsed",
    "non_ip": "EtherType is not IPv4; frame dropped",
    "internal_new": "LAN flow without a lease; port allocated, forwarded",
    "internal_existing": "LAN flow with a live lease; refreshed, forwarded",
    "no_ports": "LAN flow without a lease and the pool exhausted; dropped",
    "external_hit": "WAN frame to a leased port; rewritten, forwarded",
    "external_miss": "WAN frame to an unleased port; dropped",
}

_DROP_CLASSES = {
    DROP_SHORT: "short",
    DROP_NON_IP: "non_ip",
    DROP_NO_PORTS: "no_ports",
    DROP_UNKNOWN_FLOW: "external_miss",
}


def classify_nat_path(path: Path) -> InputClass:
    """Map one explored NAT path to its input class."""
    if isinstance(path.returned, Const) and path.returned.value in _DROP_CLASSES:
        name = _DROP_CLASSES[path.returned.value]
    else:
        called = {call.name for call in path.calls}
        if f"{PORTS_NAME}_alloc" in called:
            name = "internal_new"
        elif f"{FWD_NAME}_get" in called:
            name = "internal_existing"
        else:
            name = "external_hit"
    return InputClass(name, description=_CLASS_DESCRIPTIONS[name])


def generate_nat_contract(
    capacity: int = 64,
    timeout: int = 300,
    *,
    config: Optional[BoltConfig] = None,
) -> PerformanceContract:
    """Run BOLT end-to-end on the NAT and return its contract."""
    module = build_nat_module()
    if config is None:
        config = BoltConfig(classifier=classify_nat_path)
    elif config.classifier is None:
        config.classifier = classify_nat_path
    model = StructureModel(*make_nat_tables(capacity, timeout))
    bolt = Bolt(
        module,
        NAT_FUNCTION,
        model=model,
        registry=model.registry(),
        config=config,
    )
    args, memory, constraints = nat_symbolic_inputs()
    return bolt.generate(args, memory=memory, constraints=constraints)


def nat_replay_env(
    packet: bytes,
    length: int,
    in_port: int,
    time: int,
    trace: ExecutionTrace,
) -> Dict[str, int]:
    """Build the symbol assignment a concrete NAT execution matches."""
    return replay_env(packet, PKT_SYM_BYTES, trace, len=length, in_port=in_port, time=time)
