"""A connection-tracking stateful firewall.

The fifth NF of the reproduction, closing the Vigor-style matrix's
enforcement column: stateless rule checks plus a connection table.  The
firewall sits between a LAN (ingress device :data:`LAN_PORT`) and the
WAN; outbound traffic is admitted by policy and *remembered*, inbound
traffic is admitted only when it matches a remembered connection — the
classic stateful default-deny.

State, per the :doc:`docs/NF_AUTHORING.md` recipe, lives behind two
library structures:

* ``fw_conn`` — an :class:`~repro.structures.ExpiringMap` tracking
  established connections by internal endpoint (``(ip << 16) | port``);
  idle connections expire after ``timeout`` ticks.
* ``fw_slots`` — a :class:`~repro.structures.PortAllocator` leasing
  connection slots: a new connection must win a slot before it is
  installed, so table exhaustion is an *observable* NFIL branch (the
  allocator returns ``NOT_FOUND``) rather than a silent insert drop —
  mirroring the NAT's port-pool pattern.

The one static rule is an egress filter: outbound frames to destination
port :data:`DENY_PORT` are dropped before any connection-table work
(the classic block-outbound-SMTP policy).  Rule checks are stateless
header compares; only tracking costs state.

Input classes of the generated contract:

========================  =============================================
``short``                 frame shorter than headers + ports: dropped
``non_ip``                EtherType is not IPv4: dropped
``denied``                outbound frame to the filtered port: dropped
``outbound_established``  LAN flow already tracked: lease refreshed,
                          forwarded (the established-flow fast path)
``outbound_new``          LAN flow admitted: slot leased, tracked,
                          forwarded
``conn_full``             LAN flow admitted but the connection table is
                          at capacity (no slot): dropped
``inbound_established``   WAN frame to a tracked endpoint: forwarded
                          (read-only — inbound traffic never refreshes
                          the lease)
``unsolicited``           WAN frame to an untracked endpoint: dropped
                          (stateful default-deny)
========================  =============================================

PCVs (instance-qualified under ``fw_conn``; the slot allocator is
constant-time and contributes none): ``fw_conn.t`` chain links walked,
``fw_conn.e`` entries expired by one sweep, ``fw_conn.w`` wheel slots
advanced.

Worst-case workloads: :func:`repro.nf.workloads.firewall_adversarial`
pins all three bounds via colliding flow keys and a full-revolution
idle jump; :func:`repro.nf.workloads.firewall_scan_sweep` drains the
slot pool with a ZMap-style source sweep, driving every later admission
into ``conn_full``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.bolt import Bolt, BoltConfig
from repro.core.contract import PerformanceContract
from repro.core.input_class import InputClass
from repro.core.pcv import PCVRegistry
from repro.nf.replay import replay_env
from repro.nfil.builder import FunctionBuilder
from repro.nfil.program import Module
from repro.nfil.tracer import ExecutionTrace
from repro.nfil.validate import validate_module
from repro.structures import NOT_FOUND, ExpiringMap, PortAllocator, StructureModel
from repro.sym import expr as E
from repro.sym.expr import BV, Const, Sym
from repro.sym.paths import Path
from repro.sym.state import SymbolicMemory

__all__ = [
    "CONN_NAME",
    "DENY_PORT",
    "DROP_CONN_FULL",
    "DROP_DENIED",
    "DROP_NON_IP",
    "DROP_SHORT",
    "DROP_UNSOLICITED",
    "FIREWALL_FUNCTION",
    "LAN_PORT",
    "MAX_PORTS",
    "MIN_FW_FRAME",
    "NOT_FOUND",
    "PKT_BASE",
    "SLOTS_NAME",
    "build_firewall_module",
    "classify_firewall_path",
    "firewall_registry",
    "firewall_replay_env",
    "firewall_symbolic_inputs",
    "generate_firewall_contract",
    "make_firewall_state",
]

#: Entry function of the firewall.
FIREWALL_FUNCTION = "firewall_process"

#: Where the packet buffer lives in NF memory.
PKT_BASE = 0x1000
#: Ethernet + IPv4 + transport ports (same layout the NAT parses).
MIN_FW_FRAME = 38
#: How many leading packet bytes are made symbolic during analysis.
PKT_SYM_BYTES = MIN_FW_FRAME

#: EtherType 0x0800 (IPv4) as read by a little-endian 16-bit load.
ETHERTYPE_IPV4_LE = 0x0008

#: The ingress device id of the protected (LAN) side.
LAN_PORT = 0
#: Valid ingress device ids are [0, MAX_PORTS).
MAX_PORTS = 64

#: The one static egress rule: outbound frames to this destination port
#: are dropped (block-outbound-SMTP, the textbook egress filter).
DENY_PORT = 25

#: Structure instance names (disjoint from every other NF's, so the
#: firewall can share a service graph with the LB/NAT/router).
CONN_NAME = "fw_conn"
SLOTS_NAME = "fw_slots"

#: Drop reason codes returned by the firewall.
DROP_SHORT = 0xFFD0
DROP_NON_IP = 0xFFD1
DROP_DENIED = 0xFFD2
DROP_UNSOLICITED = 0xFFD3
DROP_CONN_FULL = 0xFFD4


def make_firewall_state(
    capacity: int = 64,
    timeout: int = 300,
    *,
    slots: Optional[Iterable[int]] = None,
) -> Tuple[ExpiringMap, PortAllocator]:
    """Build the firewall's state: connection table plus slot pool.

    Args:
        capacity: live-connection capacity of the tracking table.
        timeout: connection-lease timeout in ticks.
        slots: explicit slot-id pool; defaults to ``capacity`` slots
            numbered from 1.  A pool smaller than ``capacity`` makes the
            ``conn_full`` class reachable before the map itself fills.
    """
    conn = ExpiringMap(
        CONN_NAME, capacity=capacity, timeout=timeout, value_bound=1 << 16
    )
    if slots is None:
        slots = range(1, capacity + 1)
    pool = PortAllocator(SLOTS_NAME, pool=slots)
    return conn, pool


def firewall_registry(capacity: int = 64, timeout: int = 300) -> PCVRegistry:
    """PCVs of the firewall contract (the connection table's registry)."""
    return StructureModel(*make_firewall_state(capacity, timeout)).registry()


# --------------------------------------------------------------------------- #
# Stateless NFIL code
# --------------------------------------------------------------------------- #
def build_firewall_module() -> Module:
    """Build (and validate) the firewall NFIL module."""
    module = Module("firewall")
    conn, slots = make_firewall_state()
    for structure in (conn, slots):
        structure.declare(module)

    b = FunctionBuilder(FIREWALL_FUNCTION, params=("pkt", "len", "in_port", "time"))
    b.call(conn.extern_name("expire"), b.param("time"), void=True)
    short = b.ult(b.param("len"), MIN_FW_FRAME)
    b.br(short, "drop_short", "check_ethertype")

    b.block("drop_short")
    b.ret(DROP_SHORT)

    b.block("check_ethertype")
    pkt = b.param("pkt")
    ethertype = b.load(b.add(pkt, 12), size=2)
    is_ip = b.eq(ethertype, ETHERTYPE_IPV4_LE)
    b.br(is_ip, "direction", "drop_non_ip")

    b.block("drop_non_ip")
    b.ret(DROP_NON_IP)

    b.block("direction")
    outbound = b.eq(b.param("in_port"), LAN_PORT)
    b.br(outbound, "outbound", "inbound")

    # -- LAN -> WAN: policy check, then track ---------------------------- #
    b.block("outbound")
    d1 = b.load(b.add(pkt, 36), size=1)
    d0 = b.load(b.add(pkt, 37), size=1)
    dst_port = b.or_(b.shl(d1, 8), d0, name="dst_port")
    filtered = b.eq(dst_port, DENY_PORT)
    b.br(filtered, "drop_denied", "track")

    b.block("drop_denied")
    b.ret(DROP_DENIED)

    b.block("track")
    s3 = b.load(b.add(pkt, 26), size=1)
    s2 = b.load(b.add(pkt, 27), size=1)
    s1 = b.load(b.add(pkt, 28), size=1)
    s0 = b.load(b.add(pkt, 29), size=1)
    src_ip = b.or_(
        b.or_(b.shl(s3, 24), b.shl(s2, 16)),
        b.or_(b.shl(s1, 8), s0),
        name="src_ip",
    )
    p1 = b.load(b.add(pkt, 34), size=1)
    p0 = b.load(b.add(pkt, 35), size=1)
    src_port = b.or_(b.shl(p1, 8), p0, name="src_port")
    flow = b.or_(b.shl(src_ip, 16), src_port, name="flow")
    state = b.call(conn.extern_name("get"), flow, name="state")
    tracked = b.ne(state, NOT_FOUND)
    b.br(tracked, "refresh", "admit")

    b.block("refresh")
    # Established-flow fast path: refresh the lease, forward.
    b.call(conn.extern_name("put"), flow, state, void=True)
    b.ret(state)

    b.block("admit")
    slot = b.call(slots.extern_name("alloc"), name="slot")
    got = b.ne(slot, NOT_FOUND)
    b.br(got, "install", "drop_full")

    b.block("drop_full")
    b.ret(DROP_CONN_FULL)

    b.block("install")
    b.call(conn.extern_name("put"), flow, slot, void=True)
    b.ret(slot)

    # -- WAN -> LAN: admit only tracked endpoints ------------------------ #
    b.block("inbound")
    a3 = b.load(b.add(pkt, 30), size=1)
    a2 = b.load(b.add(pkt, 31), size=1)
    a1 = b.load(b.add(pkt, 32), size=1)
    a0 = b.load(b.add(pkt, 33), size=1)
    dst_ip = b.or_(
        b.or_(b.shl(a3, 24), b.shl(a2, 16)),
        b.or_(b.shl(a1, 8), a0),
        name="dst_ip",
    )
    q1 = b.load(b.add(pkt, 36), size=1)
    q0 = b.load(b.add(pkt, 37), size=1)
    in_dst_port = b.or_(b.shl(q1, 8), q0, name="in_dst_port")
    key = b.or_(b.shl(dst_ip, 16), in_dst_port, name="key")
    owner = b.call(conn.extern_name("get"), key, name="owner")
    known = b.ne(owner, NOT_FOUND)
    b.br(known, "accept", "drop_unsolicited")

    b.block("drop_unsolicited")
    b.ret(DROP_UNSOLICITED)

    b.block("accept")
    # Read-only: inbound traffic never refreshes the lease — only the
    # internal endpoint's own activity keeps a connection alive.
    b.ret(owner)

    module.add_function(b.build())
    return validate_module(module)


# --------------------------------------------------------------------------- #
# Contract generation and concrete replay glue
# --------------------------------------------------------------------------- #
def firewall_symbolic_inputs() -> Tuple[List[BV], SymbolicMemory, List[BV]]:
    """Symbolic initial state of one firewall invocation."""
    memory = SymbolicMemory()
    memory.write_symbolic(PKT_BASE, PKT_SYM_BYTES, "pkt")
    in_port = Sym("in_port", 64)
    args: List[BV] = [
        Const(PKT_BASE, 64),
        Sym("len", 64),
        in_port,
        Sym("time", 64),
    ]
    constraints = [E.ult(in_port, Const(MAX_PORTS, 64))]
    return args, memory, constraints


_CLASS_DESCRIPTIONS = {
    "short": "frame shorter than Ethernet+IPv4+ports; dropped unparsed",
    "non_ip": "EtherType is not IPv4; frame dropped",
    "denied": "outbound frame to the filtered port; dropped by policy",
    "outbound_established": "LAN flow already tracked; lease refreshed, forwarded",
    "outbound_new": "LAN flow admitted; slot leased, connection installed, forwarded",
    "conn_full": "LAN flow admitted but the connection table is at capacity; dropped",
    "inbound_established": "WAN frame to a tracked endpoint; forwarded read-only",
    "unsolicited": "WAN frame to an untracked endpoint; dropped (default-deny)",
}

_DROP_CLASSES = {
    DROP_SHORT: "short",
    DROP_NON_IP: "non_ip",
    DROP_DENIED: "denied",
    DROP_UNSOLICITED: "unsolicited",
    DROP_CONN_FULL: "conn_full",
}


def classify_firewall_path(path: Path) -> InputClass:
    """Map one explored firewall path to its input class."""
    if isinstance(path.returned, Const) and path.returned.value in _DROP_CLASSES:
        name = _DROP_CLASSES[path.returned.value]
    else:
        called = {call.name for call in path.calls}
        if f"{SLOTS_NAME}_alloc" in called:
            name = "outbound_new"
        elif f"{CONN_NAME}_put" in called:
            name = "outbound_established"
        else:
            name = "inbound_established"
    return InputClass(name, description=_CLASS_DESCRIPTIONS[name])


def generate_firewall_contract(
    capacity: int = 64,
    timeout: int = 300,
    *,
    config: Optional[BoltConfig] = None,
) -> PerformanceContract:
    """Run BOLT end-to-end on the firewall and return its contract."""
    module = build_firewall_module()
    if config is None:
        config = BoltConfig(classifier=classify_firewall_path)
    elif config.classifier is None:
        config.classifier = classify_firewall_path
    model = StructureModel(*make_firewall_state(capacity, timeout))
    bolt = Bolt(
        module,
        FIREWALL_FUNCTION,
        model=model,
        registry=model.registry(),
        config=config,
    )
    args, memory, constraints = firewall_symbolic_inputs()
    return bolt.generate(args, memory=memory, constraints=constraints)


def firewall_replay_env(
    packet: bytes,
    length: int,
    in_port: int,
    time: int,
    trace: ExecutionTrace,
) -> Dict[str, int]:
    """Build the symbol assignment a concrete firewall execution matches."""
    return replay_env(packet, PKT_SYM_BYTES, trace, len=length, in_port=in_port, time=time)
