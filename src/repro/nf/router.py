"""A static LPM (longest-prefix-match) IPv4 router.

The second NF of the reproduction, and the one that exercises the
:class:`repro.structures.LpmTrie` end-to-end: the stateless NFIL code
parses the Ethernet/IPv4 headers and makes exactly one stateful call —
``rt_lookup`` — into the routing trie.  The FIB is *static* configuration
(installed host-side with :meth:`~repro.structures.LpmTrie.add_route`
before traffic runs), so the contract has no expiry or learning terms; its
single PCV is the trie depth ``d``.

Packet layout assumed (classic Ethernet + IPv4, no VLANs):

========  =======================================
offset    field
========  =======================================
12..13    EtherType (0x0800 for IPv4, big-endian)
22        IPv4 TTL
30..33    IPv4 destination address (big-endian)
========  =======================================

Input classes of the generated contract:

===============  ====================================================
``short``        frame shorter than Ethernet + IPv4 headers: dropped
``non_ip``       EtherType is not IPv4: dropped
``ttl_expired``  TTL ≤ 1: dropped (a real router would emit ICMP)
``no_route``     no prefix covers the destination: dropped
``routed``       longest-prefix match found: forwarded
===============  ====================================================

PCV (instance-qualified under the FIB's name, ``rt``): ``rt.d``, the
trie nodes visited by one lookup, bounded by 33 (root + one per bit).

Worst-case workload: :func:`repro.nf.workloads.router_adversarial` — the
FIB nests a route at every prefix length 1–32 along one address, and
routing that address pins ``rt.d`` to 33.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.bolt import Bolt, BoltConfig
from repro.core.contract import PerformanceContract
from repro.core.input_class import InputClass
from repro.core.pcv import PCVRegistry
from repro.nf.replay import replay_env
from repro.nfil.builder import FunctionBuilder
from repro.nfil.program import Module
from repro.nfil.tracer import ExecutionTrace
from repro.nfil.validate import validate_module
from repro.structures import NOT_FOUND, LpmTrie, StructureModel
from repro.traffic.packets import ipv4_frame
from repro.sym.expr import BV, Const, Sym
from repro.sym.paths import Path
from repro.sym.state import SymbolicMemory

__all__ = [
    "DROP_NO_ROUTE",
    "DROP_NON_IP",
    "DROP_SHORT",
    "DROP_TTL",
    "MAX_PORTS",
    "MIN_IPV4_FRAME",
    "NOT_FOUND",
    "PKT_BASE",
    "ROUTER_FUNCTION",
    "build_router_module",
    "ipv4_packet",
    "classify_router_path",
    "generate_router_contract",
    "make_routing_table",
    "router_registry",
    "router_replay_env",
    "router_symbolic_inputs",
]

#: Entry function of the router.
ROUTER_FUNCTION = "router_process"

#: Where the packet buffer lives in NF memory.
PKT_BASE = 0x1000
#: Ethernet header + minimal IPv4 header.
MIN_IPV4_FRAME = 34
#: How many leading packet bytes are made symbolic during analysis.
PKT_SYM_BYTES = MIN_IPV4_FRAME

#: EtherType 0x0800 (IPv4) as read by a little-endian 16-bit load.
ETHERTYPE_IPV4_LE = 0x0008

#: Valid router ports are [0, MAX_PORTS).
MAX_PORTS = 64

#: Drop reason codes returned by the router.
DROP_SHORT = 0xFFF0
DROP_NON_IP = 0xFFF1
DROP_TTL = 0xFFF2
DROP_NO_ROUTE = 0xFFF3


def make_routing_table() -> LpmTrie:
    """Build the router's FIB: an LPM trie storing egress ports."""
    return LpmTrie("rt", value_bound=MAX_PORTS)


def router_registry() -> PCVRegistry:
    """PCVs of the router contract (from the trie's structure contract)."""
    return make_routing_table().registry()


# --------------------------------------------------------------------------- #
# Stateless NFIL code
# --------------------------------------------------------------------------- #
def build_router_module() -> Module:
    """Build (and validate) the router NFIL module."""
    module = Module("router")
    table = make_routing_table()
    table.declare(module)

    b = FunctionBuilder(ROUTER_FUNCTION, params=("pkt", "len"))
    short = b.ult(b.param("len"), MIN_IPV4_FRAME)
    b.br(short, "drop_short", "check_ethertype")

    b.block("drop_short")
    b.ret(DROP_SHORT)

    b.block("check_ethertype")
    pkt = b.param("pkt")
    ethertype = b.load(b.add(pkt, 12), size=2)
    is_ip = b.eq(ethertype, ETHERTYPE_IPV4_LE)
    b.br(is_ip, "check_ttl", "drop_non_ip")

    b.block("drop_non_ip")
    b.ret(DROP_NON_IP)

    b.block("check_ttl")
    ttl = b.load(b.add(pkt, 22), size=1)
    alive = b.ugt(ttl, 1)
    b.br(alive, "route", "drop_ttl")

    b.block("drop_ttl")
    b.ret(DROP_TTL)

    b.block("route")
    # Destination IPv4 address, big-endian on the wire.
    b3 = b.load(b.add(pkt, 30), size=1)
    b2 = b.load(b.add(pkt, 31), size=1)
    b1 = b.load(b.add(pkt, 32), size=1)
    b0 = b.load(b.add(pkt, 33), size=1)
    dst = b.or_(
        b.or_(b.shl(b3, 24), b.shl(b2, 16)),
        b.or_(b.shl(b1, 8), b0),
        name="dst",
    )
    out = b.call(table.extern_name("lookup"), dst, name="out")
    known = b.ne(out, NOT_FOUND)
    b.br(known, "forward", "drop_no_route")

    b.block("drop_no_route")
    b.ret(DROP_NO_ROUTE)

    b.block("forward")
    b.ret(out)

    module.add_function(b.build())
    return validate_module(module)


# --------------------------------------------------------------------------- #
# Contract generation and concrete replay glue
# --------------------------------------------------------------------------- #
def router_symbolic_inputs() -> Tuple[List[BV], SymbolicMemory, List[BV]]:
    """Symbolic initial state of one router invocation."""
    memory = SymbolicMemory()
    memory.write_symbolic(PKT_BASE, PKT_SYM_BYTES, "pkt")
    args: List[BV] = [Const(PKT_BASE, 64), Sym("len", 64)]
    return args, memory, []


_CLASS_DESCRIPTIONS = {
    "short": "frame shorter than Ethernet + IPv4 headers; dropped unparsed",
    "non_ip": "EtherType is not IPv4; frame dropped",
    "ttl_expired": "TTL has reached 1; packet dropped",
    "no_route": "no installed prefix covers the destination; packet dropped",
    "routed": "longest-prefix match found; packet forwarded",
}

_DROP_CLASSES = {
    DROP_SHORT: "short",
    DROP_NON_IP: "non_ip",
    DROP_TTL: "ttl_expired",
    DROP_NO_ROUTE: "no_route",
}


def classify_router_path(path: Path) -> InputClass:
    """Map one explored router path to its input class."""
    if isinstance(path.returned, Const) and path.returned.value in _DROP_CLASSES:
        name = _DROP_CLASSES[path.returned.value]
    else:
        name = "routed"
    return InputClass(name, description=_CLASS_DESCRIPTIONS[name])


def generate_router_contract(
    *, config: Optional[BoltConfig] = None
) -> PerformanceContract:
    """Run BOLT end-to-end on the router and return its contract."""
    module = build_router_module()
    if config is None:
        config = BoltConfig(classifier=classify_router_path)
    elif config.classifier is None:
        config.classifier = classify_router_path
    table = make_routing_table()
    bolt = Bolt(
        module,
        ROUTER_FUNCTION,
        model=StructureModel(table),
        registry=table.registry(),
        config=config,
    )
    args, memory, constraints = router_symbolic_inputs()
    return bolt.generate(args, memory=memory, constraints=constraints)


def router_replay_env(
    packet: bytes, length: int, trace: ExecutionTrace
) -> Dict[str, int]:
    """Build the symbol assignment a concrete router execution matches."""
    return replay_env(packet, PKT_SYM_BYTES, trace, len=length)


def ipv4_packet(
    dst: Iterable[int] | int,
    *,
    ttl: int = 64,
    ethertype: Tuple[int, int] = (0x08, 0x00),
    payload: int = 16,
) -> bytes:
    """Build a minimal Ethernet+IPv4 frame for tests and demos.

    ``dst`` is the destination address, either as a 32-bit int or as four
    octets.  Kept as the historical per-NF entry point; the layout itself
    lives in :func:`repro.traffic.packets.ipv4_frame`.
    """
    return ipv4_frame(dst, ttl=ttl, ethertype=ethertype, payload=payload)
