"""Network functions under analysis.

Each NF module provides the stateless NFIL code, a factory for the
:mod:`repro.structures` instances backing its state, and a one-call
contract generator.  Currently implemented:

* :mod:`repro.nf.bridge` — the MAC learning bridge (paper Table 4), backed
  by an :class:`~repro.structures.ExpiringMap`.
* :mod:`repro.nf.router` — a static LPM IPv4 router, backed by an
  :class:`~repro.structures.LpmTrie`.

Shared replay glue lives in :mod:`repro.nf.replay` (the
:class:`~repro.nf.replay.NFHarness` the traffic replayer drives) and the
per-NF evaluation workloads — uniform, Zipf and provably-worst-case
adversarial — in :mod:`repro.nf.workloads`.

The paper's remaining NFs (NAT, Maglev-like load balancer, firewall) are
tracked in ROADMAP.md.
"""

from repro.nf.replay import NFHarness, replay_env
from repro.nf.workloads import (
    Workload,
    bridge_harness,
    bridge_workloads,
    router_harness,
    router_workloads,
)
from repro.nf.bridge import (
    bridge_replay_env,
    bridge_symbolic_inputs,
    build_bridge_module,
    classify_bridge_path,
    generate_bridge_contract,
    make_bridge_table,
)
from repro.nf.router import (
    build_router_module,
    classify_router_path,
    generate_router_contract,
    ipv4_packet,
    make_routing_table,
    router_replay_env,
    router_symbolic_inputs,
)

__all__ = [
    "NFHarness",
    "Workload",
    "bridge_harness",
    "bridge_replay_env",
    "bridge_symbolic_inputs",
    "build_bridge_module",
    "build_router_module",
    "classify_bridge_path",
    "classify_router_path",
    "generate_bridge_contract",
    "generate_router_contract",
    "ipv4_packet",
    "bridge_workloads",
    "make_bridge_table",
    "make_routing_table",
    "replay_env",
    "router_harness",
    "router_replay_env",
    "router_symbolic_inputs",
    "router_workloads",
]
