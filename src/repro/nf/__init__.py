"""Network functions under analysis.

Each NF module provides the stateless NFIL code, a factory for the
:mod:`repro.structures` instances backing its state, and a one-call
contract generator; its module docstring states the NF's input classes,
its (instance-qualified) PCVs, and the workload that provably drives them
to their bounds.  Currently implemented:

* :mod:`repro.nf.bridge` — the MAC learning bridge (paper Table 4), backed
  by an :class:`~repro.structures.ExpiringMap` (PCVs ``bridge_map.t`` /
  ``bridge_map.w`` / ``bridge_map.e``).
* :mod:`repro.nf.router` — a static LPM IPv4 router, backed by an
  :class:`~repro.structures.LpmTrie` (PCV ``rt.d``).
* :mod:`repro.nf.nat` — a VigNAT-style NAT, backed by **two**
  :class:`~repro.structures.ExpiringMap` instances plus a
  :class:`~repro.structures.PortAllocator` (PCVs ``fwd.*`` and ``rev.*``)
  — the multi-instance NF that per-instance PCV namespacing exists for.
* :mod:`repro.nf.lb` — a Maglev-style L4 load balancer, backed by a
  :class:`~repro.structures.MaglevTable` plus an
  :class:`~repro.structures.ExpiringMap` connection table (PCVs
  ``lb_tbl.f`` and ``conn.*``) — the first NF whose dominant cost is a
  control-plane operation (table repopulation on backend churn).

Shared replay glue lives in :mod:`repro.nf.replay` (the
:class:`~repro.nf.replay.NFHarness` the traffic replayer drives) and the
per-NF evaluation workloads — uniform, Zipf and provably-worst-case
adversarial — in :mod:`repro.nf.workloads`.

The paper's remaining NFs (e.g. a firewall with connection tracking) are
tracked in ROADMAP.md; docs/NF_AUTHORING.md is the step-by-step guide to
adding one, and docs/STRUCTURES.md its counterpart for structures.
"""

from repro.nf.replay import NFHarness, replay_env
from repro.nf.workloads import (
    Workload,
    bridge_harness,
    bridge_workloads,
    lb_harness,
    lb_workloads,
    nat_harness,
    nat_workloads,
    router_harness,
    router_workloads,
)
from repro.nf.lb import (
    build_lb_module,
    classify_lb_path,
    generate_lb_contract,
    lb_replay_env,
    lb_symbolic_inputs,
    make_lb_state,
)
from repro.nf.bridge import (
    bridge_replay_env,
    bridge_symbolic_inputs,
    build_bridge_module,
    classify_bridge_path,
    generate_bridge_contract,
    make_bridge_table,
)
from repro.nf.nat import (
    build_nat_module,
    classify_nat_path,
    generate_nat_contract,
    make_nat_tables,
    nat_replay_env,
    nat_symbolic_inputs,
)
from repro.nf.router import (
    build_router_module,
    classify_router_path,
    generate_router_contract,
    ipv4_packet,
    make_routing_table,
    router_replay_env,
    router_symbolic_inputs,
)

__all__ = [
    "NFHarness",
    "Workload",
    "bridge_harness",
    "bridge_replay_env",
    "bridge_symbolic_inputs",
    "bridge_workloads",
    "build_bridge_module",
    "build_lb_module",
    "build_nat_module",
    "build_router_module",
    "classify_bridge_path",
    "classify_lb_path",
    "classify_nat_path",
    "classify_router_path",
    "generate_bridge_contract",
    "generate_lb_contract",
    "generate_nat_contract",
    "generate_router_contract",
    "ipv4_packet",
    "lb_harness",
    "lb_replay_env",
    "lb_symbolic_inputs",
    "lb_workloads",
    "make_bridge_table",
    "make_lb_state",
    "make_nat_tables",
    "make_routing_table",
    "nat_harness",
    "nat_replay_env",
    "nat_symbolic_inputs",
    "nat_workloads",
    "replay_env",
    "router_harness",
    "router_replay_env",
    "router_symbolic_inputs",
    "router_workloads",
]
