"""Network functions under analysis.

Each NF module provides the stateless NFIL code, the symbolic models of its
stateful structures, an instrumented concrete implementation of those
structures, and a one-call contract generator.  Currently implemented:

* :mod:`repro.nf.bridge` — the MAC learning bridge (paper Table 4).

The paper's remaining NFs (NAT, Maglev-like load balancer, LPM router,
firewall, static router) are tracked in ROADMAP.md.
"""

from repro.nf.bridge import (
    BridgeSymbolicModel,
    BridgeTable,
    bridge_replay_env,
    bridge_symbolic_inputs,
    build_bridge_module,
    classify_bridge_path,
    generate_bridge_contract,
)

__all__ = [
    "BridgeSymbolicModel",
    "BridgeTable",
    "bridge_replay_env",
    "bridge_symbolic_inputs",
    "build_bridge_module",
    "classify_bridge_path",
    "generate_bridge_contract",
]
