"""Per-NF workloads: uniform, Zipf, adversarial, scan sweeps and floods.

The generic samplers live in :mod:`repro.traffic.generators`; this module
supplies what only the NF can know — how to turn sampled keys into frames,
and which input state drives each performance-critical variable to the
maximum its registry declares.  Each factory returns a :class:`Workload`
bundling a *fresh* harness (state is part of the workload: adversarial
streams prime it deliberately), the stimulus list, and — for adversarial
streams — the instance-qualified PCV values the replay must observe for
the worst case to count as *hit*:

* **bridge** — the adversarial stream learns ``capacity`` MACs that all
  hash into one bucket of the MAC table (so a tail refresh inspects
  ``bridge_map.t = capacity`` links), then jumps time past a full wheel
  revolution (so one sweep advances ``bridge_map.w = wheel_slots`` slots
  and expires ``bridge_map.e = capacity`` entries).  All three PCVs reach
  their registry bounds.
* **router** — the adversarial FIB nests a route at every prefix length
  1–32 along one address; routing that address visits ``rt.d = 33`` trie
  nodes, the maximum any IPv4 lookup can incur.
* **NAT** — the adversarial stream pins *both* flow tables at once:
  colliding internal flow keys build a maximal forward chain
  (``fwd.t = capacity``), a crafted port pool whose leases collide in the
  reverse table builds a maximal reverse chain (``rev.t = capacity``), a
  brand-new flow against the exhausted pool exercises ``no_ports``, and
  one full-revolution time jump expires both tables in one sweep
  (``fwd.w = rev.w = wheel_slots``, ``fwd.e = rev.e = capacity``).  The
  two ``t`` bounds being separately observable is exactly what
  per-instance PCV namespacing buys.
* **LB** — the adversarial stream pins a *control-plane* bound on top of
  the usual connection-table ones: a backend-churn phase adds
  ``max_backends`` backends whose permutation parameters all collide
  (:func:`colliding_backends`), so the final repopulation performs
  exactly its proven worst-case fill count (``lb_tbl.f`` at bound), then
  colliding flow keys build a maximal connection chain
  (``conn.t = capacity``), a drain exercises ``backend_drained``, a full
  drain exercises ``no_backends``, and one full-revolution time jump
  expires the connection table (``conn.w = wheel_slots``,
  ``conn.e = capacity``).
* **firewall** — the adversarial stream establishes ``capacity``
  colliding outbound flows (one maximal connection chain,
  ``fw_conn.t = capacity``), drains the slot pool into ``conn_full``,
  probes tracked and untracked endpoints from the WAN, trips the egress
  filter, and ends with a full-revolution sweep
  (``fw_conn.w = wheel_slots``, ``fw_conn.e = capacity``).
* **monitor** — the sketch has no PCVs, so the adversarial stream
  instead forces both verdicts deterministically: one flow is flooded
  past the threshold *and* past the counter ceiling (exercising the
  saturated-update fast path), then a fresh flow passes cold.

Beyond the per-NF adversarial streams, every NF gets two cross-cutting
workload families:

* **scan_sweep** — a ZMap-style sweep: every frame comes from (or goes
  to) a *distinct* endpoint, an access pattern the hash-collision
  workloads never produce.  Sweeps fill state tables front to back and
  then keep going: the firewall's slot pool and the NAT's port pool run
  dry mid-stream, driving the at-capacity classes (``conn_full`` /
  ``no_ports``) under a realistic scanner, not a crafted collision.
* **header_flood** — a crafted-header flood: one fixed (or nearly
  fixed) header blasted at line rate, seasoned with runt frames.  Floods
  pin *repetition*-driven state: the monitor's sketch counters saturate
  at their ceiling, the router's deepest route is hammered at
  ``rt.d = 33``, the firewall's default-deny and egress-filter drop
  paths run hot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.nf import bridge as bridge_nf
from repro.nf import firewall as firewall_nf
from repro.nf import lb as lb_nf
from repro.nf import monitor as monitor_nf
from repro.nf import nat as nat_nf
from repro.nf import router as router_nf
from repro.nf.replay import NFHarness
from repro.nfil.interpreter import ExternHandler
from repro.structures import ChainingHashMap, LpmTrie, MaglevTable, max_fill_iterations
from repro.structures.lpm import MAX_DEPTH
from repro.traffic.generators import Stimulus, uniform_indices, zipf_indices
from repro.traffic.packets import ethernet_frame, ipv4_frame, mac_bytes, nat_frame

__all__ = [
    "Workload",
    "bridge_harness",
    "bridge_workloads",
    "colliding_backends",
    "colliding_keys",
    "colliding_mac_keys",
    "colliding_ports",
    "firewall_harness",
    "firewall_workloads",
    "lb_control_stimulus",
    "lb_data_stimulus",
    "lb_harness",
    "lb_workloads",
    "monitor_harness",
    "monitor_workloads",
    "nat_harness",
    "nat_workloads",
    "router_fib_routes",
    "router_harness",
    "router_workloads",
]


@dataclass(frozen=True)
class Workload:
    """One named stimulus stream bound to a fresh NF harness."""

    name: str
    harness: NFHarness
    stimuli: Tuple[Stimulus, ...]
    #: For adversarial streams: instance-qualified PCV name -> value the
    #: replay must observe (each is that PCV's declared upper bound for
    #: the configured NF), e.g. ``{"fwd.t": 16, "rev.t": 16}``.
    expected_worst: Mapping[str, int] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# Bridge
# --------------------------------------------------------------------------- #
def bridge_harness(capacity: int = 16, timeout: int = 50) -> NFHarness:
    """A fresh MAC-learning bridge wired for replay."""
    table = bridge_nf.make_bridge_table(capacity, timeout)
    return NFHarness(
        "bridge",
        bridge_nf.build_bridge_module(),
        bridge_nf.BRIDGE_FUNCTION,
        handler=table,
        structures=(table,),
        pkt_base=bridge_nf.PKT_BASE,
        sym_bytes=bridge_nf.PKT_SYM_BYTES,
        scalar_order=("len", "in_port", "time"),
    )


def _bridge_mixed(
    rng: random.Random,
    indices: List[int],
    macs: List[int],
    *,
    ports: int,
    note: str,
) -> List[Stimulus]:
    """Turn sampled MAC indices into a frame mix covering every class."""
    stimuli: List[Stimulus] = []
    for n, index in enumerate(indices):
        dst = macs[index]
        src = macs[indices[(n * 7 + 3) % len(indices)]]
        if n % 17 == 0:
            packet = mac_bytes(dst)[: rng.randrange(0, 13)]  # truncated frame
        else:
            packet = ethernet_frame(dst, src)
        stimuli.append(
            Stimulus(
                packet=packet,
                scalars={"in_port": rng.randrange(ports), "time": n * 3},
                note=note,
            )
        )
    return stimuli


def bridge_workloads(
    *,
    seed: int = 2019,
    capacity: int = 16,
    timeout: int = 50,
    packets: int = 150,
    population: int = 12,
    ports: int = 4,
) -> List[Workload]:
    """The bridge's five evaluation workloads (fresh state per stream)."""
    rng = random.Random(seed)
    macs = [rng.randrange(1, 1 << 48) for _ in range(population)]
    uniform = _bridge_mixed(
        rng, uniform_indices(rng, population, packets), macs, ports=ports, note="uniform"
    )
    zipf = _bridge_mixed(
        rng, zipf_indices(rng, population, packets), macs, ports=ports, note="zipf"
    )
    return [
        Workload("uniform", bridge_harness(capacity, timeout), tuple(uniform)),
        Workload("zipf", bridge_harness(capacity, timeout), tuple(zipf)),
        bridge_adversarial(capacity=capacity, timeout=timeout),
        bridge_scan_sweep(capacity=capacity, timeout=timeout, packets=packets),
        bridge_header_flood(capacity=capacity, timeout=timeout, packets=packets),
    ]


def colliding_keys(
    count: int, *, buckets: int, start: int = 1, stop: int = 1 << 48
) -> List[int]:
    """Find ``count`` keys in ``[start, stop)`` sharing one hash bucket.

    Keys sharing a bucket of a :class:`ChainingHashMap` pile into one
    chain, so an operation on the chain's tail inspects ``count`` links —
    the lever every map-based adversarial stream uses to pin an
    instance's ``t`` PCV to its declared bound.
    """
    probe = ChainingHashMap("probe", capacity=max(count, 1), buckets=buckets)
    target = probe._hash(start)
    keys: List[int] = []
    candidate = start
    while len(keys) < count:
        if probe._hash(candidate) == target:
            keys.append(candidate)
        candidate += 1
        if candidate >= stop:  # pragma: no cover - defensive
            raise RuntimeError("could not find enough colliding keys")
    return keys


def colliding_mac_keys(capacity: int) -> List[int]:
    """Find ``capacity`` 48-bit keys that share one MAC-table bucket.

    The bridge's table chains inside a :class:`ChainingHashMap` with
    ``capacity`` buckets, so these keys build a single maximal chain and a
    tail lookup inspects ``capacity`` links — the declared maximum of the
    table's ``t`` PCV.
    """
    return colliding_keys(capacity, buckets=capacity)


def colliding_ports(capacity: int, *, start: int = 1024) -> List[int]:
    """Find ``capacity`` 16-bit ports that share one reverse-table bucket.

    Used as the NAT's adversarial lease pool: every leased port chains
    into one bucket of the reverse flow table, so refreshing the last
    lease inspects ``capacity`` links (``rev.t`` at its bound).
    """
    return colliding_keys(capacity, buckets=capacity, start=start, stop=1 << 16)


def bridge_adversarial(*, capacity: int = 16, timeout: int = 50) -> Workload:
    """The bridge worst-case stream: every PCV driven to its bound.

    Phases (times chosen so nothing expires before the final sweep):

    1. ``fill`` — learn ``capacity`` colliding source MACs (unknown
       destination: each frame floods), building one maximal hash chain.
    2. ``worst_t`` — a frame from the chain's *tail* MAC towards its
       *head* MAC on another port: the learning ``put`` refreshes the
       tail after inspecting ``t = capacity`` links, and the destination
       is known elsewhere, so the frame is forwarded (class ``hit``).
    3. ``worst_e`` — time jumps beyond a full wheel revolution past every
       deadline: one sweep advances ``w = wheel_slots`` slots and expires
       all ``e = capacity`` entries.
    """
    harness = bridge_harness(capacity, timeout)
    table = harness.structures[0]
    wheel_slots = table.wheel_slots
    keys = colliding_mac_keys(capacity)
    unknown = next(k for k in range(1, 1 << 16) if k not in set(keys))
    stimuli: List[Stimulus] = []
    for i, key in enumerate(keys):
        stimuli.append(
            Stimulus(
                packet=ethernet_frame(unknown, key),
                scalars={"in_port": 1, "time": i},
                note="fill",
            )
        )
    fill_end = len(keys) - 1
    stimuli.append(
        Stimulus(
            packet=ethernet_frame(keys[0], keys[-1]),
            scalars={"in_port": 2, "time": fill_end},
            note="worst_t",
        )
    )
    # Latest deadline: the tail refresh at fill_end + timeout.  Jumping
    # past it by a full revolution makes the sweep advance wheel_slots
    # slots and visit every deadline slot.
    doom = fill_end + timeout + wheel_slots + 1
    stimuli.append(
        Stimulus(
            packet=ethernet_frame(unknown, unknown + 1),
            scalars={"in_port": 3, "time": doom},
            note="worst_e",
        )
    )
    return Workload(
        "adversarial",
        harness,
        tuple(stimuli),
        expected_worst={
            table.pcv_name("t"): capacity,
            table.pcv_name("e"): capacity,
            table.pcv_name("w"): wheel_slots,
        },
    )


def bridge_scan_sweep(
    *, capacity: int = 16, timeout: int = 50, packets: int = 150
) -> Workload:
    """A ZMap-style sweep across the segment: one source MAC per frame.

    Every frame floods (the fixed destination is never learned) while its
    distinct source *is* learned, so the sweep fills the MAC table front
    to back and keeps churning it — the learning path under a scanner,
    with none of the hash collisions the adversarial stream crafts.
    """
    harness = bridge_harness(capacity, timeout)
    target = 0xBADD00C0FFEE  # swept-towards MAC, never a source
    stimuli = [
        Stimulus(
            packet=ethernet_frame(target, 0x2D0000000000 + n),
            scalars={"in_port": n % 4, "time": n},
            note="scan",
        )
        for n in range(packets)
    ]
    return Workload("scan_sweep", harness, tuple(stimuli))


def bridge_header_flood(
    *, capacity: int = 16, timeout: int = 50, packets: int = 150
) -> Workload:
    """A crafted-header flood: one attacker MAC hammering one victim.

    The victim announces itself, then the attacker blasts the same header
    at it; the victim occasionally answers (keeping its entry warm),
    every 13th frame is a runt, and every 29th arrives on the victim's
    own port — the hairpin the bridge must drop.
    """
    harness = bridge_harness(capacity, timeout)
    victim, attacker = 0x00AA00000001, 0x00BB00000002
    stimuli = [
        Stimulus(
            packet=ethernet_frame(0xBADD00C0FFEE, victim),
            scalars={"in_port": 1, "time": 0},
            note="learn",
        )
    ]
    for n in range(1, packets):
        packet = ethernet_frame(victim, attacker)
        in_port = 2
        if n % 13 == 0:
            packet = packet[: n % 12]  # runt burst
        elif n % 47 == 1:
            packet = ethernet_frame(attacker, victim)  # victim answers
            in_port = 1
        elif n % 29 == 0:
            in_port = 1  # hairpin onto the victim's own port
        stimuli.append(
            Stimulus(packet=packet, scalars={"in_port": in_port, "time": n}, note="flood")
        )
    return Workload("header_flood", harness, tuple(stimuli))


# --------------------------------------------------------------------------- #
# Router
# --------------------------------------------------------------------------- #
#: The address the adversarial route chain nests along.
CHAIN_ADDRESS = 0x8A3B1CF5


def router_fib_routes() -> List[Tuple[int, int, int]]:
    """The bench FIB: ``(prefix, length, port)`` triples.

    A route at *every* length 1–32 along :data:`CHAIN_ADDRESS` (the
    adversarial chain) plus a few scattered shorter prefixes.  No default
    route, so ``no_route`` traffic exists.
    """
    routes = [(CHAIN_ADDRESS, length, length % router_nf.MAX_PORTS) for length in range(1, 33)]
    routes += [
        (0x0A000000, 8, 40),  # 10.0.0.0/8
        (0x0A140000, 16, 41),  # 10.20.0.0/16
        (0x0A141E00, 24, 42),  # 10.20.30.0/24
        (0x2C000000, 6, 43),  # 44.0.0.0/6
    ]
    return routes


def router_harness(routes: List[Tuple[int, int, int]] | None = None) -> NFHarness:
    """A fresh LPM router with the bench FIB installed."""
    fib: LpmTrie = router_nf.make_routing_table()
    for prefix, length, port in routes if routes is not None else router_fib_routes():
        fib.add_route(prefix, length, port)
    return NFHarness(
        "router",
        router_nf.build_router_module(),
        router_nf.ROUTER_FUNCTION,
        handler=fib,
        structures=(fib,),
        pkt_base=router_nf.PKT_BASE,
        sym_bytes=router_nf.PKT_SYM_BYTES,
        scalar_order=("len",),
    )


def _router_destinations() -> List[int]:
    """Candidate destinations touching routed, nested and unrouted space."""
    return [
        CHAIN_ADDRESS,  # deepest possible match (/32)
        CHAIN_ADDRESS ^ 0x1,  # walks deep, matches the /31
        CHAIN_ADDRESS ^ 0xFF,  # matches a mid-length nested prefix
        0x0A141E07,  # 10.20.30.7 -> /24
        0x0A140101,  # 10.20.1.1  -> /16
        0x0A636363,  # 10.99.99.99 -> /8
        0x2D010203,  # 45.1.2.3 -> /6
        0x7F000001,  # 127.0.0.1 -> no_route
        0x01020304,  # 1.2.3.4 -> no_route
    ]


def _router_mixed(rng: random.Random, indices: List[int], *, note: str) -> List[Stimulus]:
    """Turn sampled destination indices into a frame mix for all classes."""
    destinations = _router_destinations()
    stimuli: List[Stimulus] = []
    for n, index in enumerate(indices):
        dst = destinations[index % len(destinations)]
        if n % 13 == 0:
            packet = ipv4_frame(dst)[: rng.randrange(0, 34)]  # truncated frame
        elif n % 11 == 0:
            packet = ipv4_frame(dst, ethertype=(0x86, 0xDD))  # IPv6: dropped
        elif n % 7 == 0:
            packet = ipv4_frame(dst, ttl=1)  # TTL expires here
        else:
            packet = ipv4_frame(dst, ttl=1 + rng.randrange(1, 255))
        stimuli.append(Stimulus(packet=packet, note=note))
    return stimuli


def router_workloads(*, seed: int = 2019, packets: int = 150) -> List[Workload]:
    """The router's five evaluation workloads (fresh FIB per stream)."""
    rng = random.Random(seed)
    population = len(_router_destinations())
    uniform = _router_mixed(rng, uniform_indices(rng, population, packets), note="uniform")
    zipf = _router_mixed(rng, zipf_indices(rng, population, packets), note="zipf")
    return [
        Workload("uniform", router_harness(), tuple(uniform)),
        Workload("zipf", router_harness(), tuple(zipf)),
        router_adversarial(),
        router_scan_sweep(packets=packets),
        router_header_flood(packets=packets),
    ]


def router_adversarial() -> Workload:
    """The router worst-case stream: the deepest walk an IPv4 lookup allows.

    The FIB nests a route at every length 1–32 along
    :data:`CHAIN_ADDRESS`; routing that exact address visits the root
    plus one node per bit — ``d = 33``, the registry bound of ``d``.
    """
    stimuli = [
        Stimulus(packet=ipv4_frame(CHAIN_ADDRESS), note="worst_d"),
        Stimulus(packet=ipv4_frame(CHAIN_ADDRESS ^ 0x1), note="deep_sibling"),
        Stimulus(packet=ipv4_frame(0x7F000001), note="no_route"),
        Stimulus(packet=ipv4_frame(CHAIN_ADDRESS, ttl=1), note="ttl"),
        Stimulus(packet=ipv4_frame(CHAIN_ADDRESS)[:10], note="short"),
    ]
    harness = router_harness()
    fib = harness.structures[0]
    return Workload(
        "adversarial",
        harness,
        tuple(stimuli),
        expected_worst={fib.pcv_name("d"): MAX_DEPTH},
    )


def router_scan_sweep(*, packets: int = 150) -> Workload:
    """A ZMap-style destination sweep across the IPv4 space.

    Destinations stride through the address space (a golden-ratio walk,
    so consecutive probes land far apart); most find no route, some land
    in the routed prefixes — the FIB under a scanner instead of a traffic
    mix.
    """
    stimuli = [
        Stimulus(packet=ipv4_frame((0x9E3779B1 * (n + 1)) & 0xFFFFFFFF), note="scan")
        for n in range(packets)
    ]
    return Workload("scan_sweep", router_harness(), tuple(stimuli))


def router_header_flood(*, packets: int = 150) -> Workload:
    """A crafted-header flood hammering the FIB's deepest route.

    Two of every three frames carry the chain address with a full TTL —
    each walks all ``rt.d = 33`` trie nodes, so the flood pins the depth
    bound by sheer repetition; the rest arrive with ``ttl = 1`` (an
    expiry flood), and every 31st is a runt.
    """
    harness = router_harness()
    fib = harness.structures[0]
    stimuli: List[Stimulus] = []
    for n in range(packets):
        if n % 31 == 0:
            packet = ipv4_frame(CHAIN_ADDRESS)[: n % 20]
        elif n % 3 == 0:
            packet = ipv4_frame(CHAIN_ADDRESS, ttl=1)
        else:
            packet = ipv4_frame(CHAIN_ADDRESS, ttl=255)
        stimuli.append(Stimulus(packet=packet, note="flood"))
    return Workload(
        "header_flood",
        harness,
        tuple(stimuli),
        expected_worst={fib.pcv_name("d"): MAX_DEPTH},
    )


# --------------------------------------------------------------------------- #
# NAT
# --------------------------------------------------------------------------- #
#: Fixed WAN-side endpoints of the bench NAT traffic (TEST-NET addresses).
WAN_SERVER = 0xC6336401  # 198.51.100.1, the server internal flows talk to
WAN_CLIENT = 0xCB007163  # 203.0.113.99, the client probing leased ports
NAT_PUBLIC = 0xCB007101  # 203.0.113.1, the NAT's public address


def nat_harness(
    capacity: int = 16,
    timeout: int = 50,
    *,
    pool: Optional[Iterable[int]] = None,
) -> NFHarness:
    """A fresh VigNAT-style NAT wired for replay.

    The handler merges the three structure instances (forward table,
    reverse table, port allocator) into one dispatch table — the merge
    (and :class:`NFHarness` itself) rejects ambiguous extern manglings.
    """
    fwd, rev, ports = nat_nf.make_nat_tables(capacity, timeout, pool=pool)
    handler = ExternHandler().merge(fwd).merge(rev).merge(ports)
    return NFHarness(
        "nat",
        nat_nf.build_nat_module(),
        nat_nf.NAT_FUNCTION,
        handler=handler,
        structures=(fwd, rev, ports),
        pkt_base=nat_nf.PKT_BASE,
        sym_bytes=nat_nf.PKT_SYM_BYTES,
        scalar_order=("len", "in_port", "time"),
    )


def _nat_mixed(
    rng: random.Random,
    indices: List[int],
    flows: List[Tuple[int, int]],
    *,
    pool_ports: List[int],
    note: str,
) -> List[Stimulus]:
    """Turn sampled flow indices into a frame mix covering every class.

    Most frames are LAN→WAN traffic from the sampled flow (new or
    existing); every 17th is truncated (``short``), every 11th carries a
    non-IPv4 EtherType (``non_ip``), and every 5th is WAN→LAN probing a
    pool port (``external_hit`` once the lease exists, ``external_miss``
    before or after it).
    """
    stimuli: List[Stimulus] = []
    for n, index in enumerate(indices):
        src_ip, src_port = flows[index]
        scalars = {"in_port": nat_nf.LAN_PORT, "time": n * 3}
        if n % 17 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)[: rng.randrange(0, 37)]
        elif n % 11 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80, ethertype=(0x86, 0xDD))
        elif n % 5 == 0:
            packet = nat_frame(
                WAN_CLIENT, 443, NAT_PUBLIC, pool_ports[index % len(pool_ports)]
            )
            scalars["in_port"] = 1 + rng.randrange(3)
        else:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)
        stimuli.append(Stimulus(packet=packet, scalars=scalars, note=note))
    return stimuli


def nat_workloads(
    *,
    seed: int = 2019,
    capacity: int = 16,
    timeout: int = 50,
    packets: int = 150,
    population: int = 12,
) -> List[Workload]:
    """The NAT's five evaluation workloads (fresh state per stream).

    The uniform/Zipf pool holds ``4 * capacity`` sequential ports from
    :data:`repro.nf.nat.PORT_BASE`: leases are never released back (the
    allocator is a lease-for-bench-lifetime pool), so expired flows that
    return consume fresh ports — the head-heavy Zipf stream can genuinely
    run the pool dry, exercising ``no_ports`` under realistic traffic.
    """
    rng = random.Random(seed)
    flows = [
        (rng.randrange(1 << 32), rng.randrange(1024, 1 << 16)) for _ in range(population)
    ]
    pool = list(range(nat_nf.PORT_BASE, nat_nf.PORT_BASE + 4 * capacity))
    uniform = _nat_mixed(
        rng, uniform_indices(rng, population, packets), flows, pool_ports=pool, note="uniform"
    )
    zipf = _nat_mixed(
        rng, zipf_indices(rng, population, packets), flows, pool_ports=pool, note="zipf"
    )
    return [
        Workload("uniform", nat_harness(capacity, timeout, pool=pool), tuple(uniform)),
        Workload("zipf", nat_harness(capacity, timeout, pool=pool), tuple(zipf)),
        nat_adversarial(capacity=capacity, timeout=timeout),
        nat_scan_sweep(capacity=capacity, timeout=timeout, packets=packets),
        nat_header_flood(capacity=capacity, timeout=timeout, packets=packets),
    ]


def nat_adversarial(*, capacity: int = 16, timeout: int = 50) -> Workload:
    """The NAT worst-case stream: both instances' PCVs driven to bound.

    Phases (times chosen so nothing expires before the final sweep):

    1. ``fill`` — ``capacity`` internal flows whose keys collide in the
       forward table are established; the allocator's pool is crafted so
       the leased ports *also* collide in the reverse table.  Both tables
       end up holding one maximal chain each, and the pool is exhausted.
    2. ``worst_t`` — a frame from the *last* established flow: the lookup
       and refresh walk ``fwd.t = capacity`` links, and refreshing its
       lease (the last port inserted) walks ``rev.t = capacity`` links —
       both ``t`` bounds pinned by one packet, separately observable only
       because the PCVs are instance-qualified.
    3. ``no_ports`` — a brand-new flow finds the pool exhausted: dropped.
    4. ``external_hit`` — a WAN frame to the first lease: rewritten and
       forwarded.
    5. ``worst_e`` — time jumps beyond a full wheel revolution past every
       deadline: one sweep advances ``wheel_slots`` slots and expires all
       ``capacity`` entries in *each* table (``fwd.w``/``fwd.e`` and
       ``rev.w``/``rev.e`` at their bounds); the frame itself probes an
       unleased port and is dropped (``external_miss``).
    """
    pool = colliding_ports(capacity)
    harness = nat_harness(capacity, timeout, pool=pool)
    fwd, rev, _ = harness.structures
    wheel_slots = fwd.wheel_slots
    flows = colliding_keys(capacity, buckets=capacity)
    flow_set = set(flows)
    stimuli: List[Stimulus] = []
    for i, key in enumerate(flows):
        stimuli.append(
            Stimulus(
                packet=nat_frame(key >> 16, key & 0xFFFF, WAN_SERVER, 80),
                scalars={"in_port": nat_nf.LAN_PORT, "time": i},
                note="fill",
            )
        )
    tail = flows[-1]
    stimuli.append(
        Stimulus(
            packet=nat_frame(tail >> 16, tail & 0xFFFF, WAN_SERVER, 80),
            scalars={"in_port": nat_nf.LAN_PORT, "time": capacity},
            note="worst_t",
        )
    )
    fresh = next(k for k in range(1, 1 << 16) if k not in flow_set)
    stimuli.append(
        Stimulus(
            packet=nat_frame(fresh >> 16, fresh & 0xFFFF, WAN_SERVER, 80),
            scalars={"in_port": nat_nf.LAN_PORT, "time": capacity},
            note="no_ports",
        )
    )
    stimuli.append(
        Stimulus(
            packet=nat_frame(WAN_CLIENT, 443, NAT_PUBLIC, pool[0]),
            scalars={"in_port": 1, "time": capacity},
            note="external_hit",
        )
    )
    # Latest deadline: the refreshes at time `capacity` plus the timeout.
    # Jumping past it by a full revolution makes each table's sweep
    # advance wheel_slots slots and visit every deadline slot.
    doom = capacity + timeout + wheel_slots + 1
    unleased = next(p for p in range(1, 1 << 16) if p not in set(pool))
    stimuli.append(
        Stimulus(
            packet=nat_frame(WAN_CLIENT, 443, NAT_PUBLIC, unleased),
            scalars={"in_port": 1, "time": doom},
            note="worst_e",
        )
    )
    return Workload(
        "adversarial",
        harness,
        tuple(stimuli),
        expected_worst={
            fwd.pcv_name("t"): capacity,
            fwd.pcv_name("e"): capacity,
            fwd.pcv_name("w"): wheel_slots,
            rev.pcv_name("t"): capacity,
            rev.pcv_name("e"): capacity,
            rev.pcv_name("w"): wheel_slots,
        },
    )


def nat_scan_sweep(
    *, capacity: int = 16, timeout: int = 50, packets: int = 150
) -> Workload:
    """A ZMap-style sweep from inside: one fresh internal flow per frame.

    Ports are leased for the bench lifetime, so a sweep of distinct
    sources drains the ``4 * capacity`` pool front to back and every
    admission after that is ``no_ports`` — pool exhaustion under a
    realistic scanner, not a crafted collision.
    """
    pool = list(range(nat_nf.PORT_BASE, nat_nf.PORT_BASE + 4 * capacity))
    harness = nat_harness(capacity, timeout, pool=pool)
    stimuli = [
        Stimulus(
            packet=nat_frame(0x2D000000 + n, 33333, WAN_SERVER, 80),
            scalars={"in_port": nat_nf.LAN_PORT, "time": n},
            note="scan",
        )
        for n in range(packets)
    ]
    return Workload("scan_sweep", harness, tuple(stimuli))


def nat_header_flood(
    *, capacity: int = 16, timeout: int = 50, packets: int = 150
) -> Workload:
    """A WAN-side port-scan flood against the NAT's public address.

    One internal flow establishes a lease, then the flood probes the
    public ports: every 5th probe hits the lease (refreshing it, so it
    never expires mid-flood), the rest probe unleased ports and are
    dropped; every 17th frame is a runt.
    """
    pool = list(range(nat_nf.PORT_BASE, nat_nf.PORT_BASE + 4 * capacity))
    harness = nat_harness(capacity, timeout, pool=pool)
    inside_ip, inside_port = 0x0A000063, 40000  # 10.0.0.99, the one real flow
    stimuli = [
        Stimulus(
            packet=nat_frame(inside_ip, inside_port, WAN_SERVER, 80),
            scalars={"in_port": nat_nf.LAN_PORT, "time": 0},
            note="lease",
        )
    ]
    for n in range(1, packets):
        scalars = {"in_port": 1, "time": n}
        if n % 17 == 0:
            packet = nat_frame(WAN_CLIENT, 443, NAT_PUBLIC, pool[0])[: n % 12]
        elif n % 5 == 0:
            packet = nat_frame(WAN_CLIENT, 443, NAT_PUBLIC, pool[0])
        else:
            packet = nat_frame(WAN_CLIENT, 443, NAT_PUBLIC, pool[-1] + 1 + (n % 512))
        stimuli.append(Stimulus(packet=packet, scalars=scalars, note="flood"))
    return Workload("header_flood", harness, tuple(stimuli))


# --------------------------------------------------------------------------- #
# Load balancer
# --------------------------------------------------------------------------- #
def colliding_backends(count: int, *, table_size: int) -> List[int]:
    """Find ``count`` backend ids whose Maglev permutations are identical.

    Backend ids sharing one ``(offset, skip)`` pair walk the same slot
    permutation, which makes the round-robin fill perform *exactly* its
    proven worst-case iteration count (see
    :func:`repro.structures.max_fill_iterations`) — the lever the LB
    adversarial stream uses to pin ``lb_tbl.f`` to its declared bound.
    """
    probe = MaglevTable("probe", table_size=table_size, max_backends=max(count, 1))
    target = probe.permutation_params(1)
    ids: List[int] = []
    candidate = 1
    while len(ids) < count:
        if probe.permutation_params(candidate) == target:
            ids.append(candidate)
        candidate += 1
        if candidate >= 1 << 16:  # pragma: no cover - defensive
            raise RuntimeError("could not find enough colliding backend ids")
    return ids


def lb_harness(
    capacity: int = 16,
    timeout: int = 50,
    *,
    table_size: int = 13,
    max_backends: int = 4,
) -> NFHarness:
    """A fresh Maglev-style load balancer wired for replay.

    Backends arrive through the replayed control frames, never host-side:
    the repopulation cost (``lb_tbl.f``) must land in traces for the
    adversarial bound check to observe it.
    """
    tbl, conn = lb_nf.make_lb_state(
        capacity, timeout, table_size=table_size, max_backends=max_backends
    )
    handler = ExternHandler().merge(tbl).merge(conn)
    return NFHarness(
        "lb",
        lb_nf.build_lb_module(),
        lb_nf.LB_FUNCTION,
        handler=handler,
        structures=(tbl, conn),
        pkt_base=lb_nf.PKT_BASE,
        sym_bytes=lb_nf.PKT_SYM_BYTES,
        scalar_order=("len", "cmd", "arg", "time"),
    )


def lb_control_stimulus(cmd: int, backend: int, time: int, note: str = "ctrl") -> Stimulus:
    """A control frame: no packet bytes, the command in the scalars.

    Public because the service-graph churn events
    (:mod:`repro.net.churn`) inject exactly these frames mid-stream.
    """
    return Stimulus(
        packet=b"", scalars={"cmd": cmd, "arg": backend, "time": time}, note=note
    )


def lb_data_stimulus(packet: bytes, time: int, note: str = "data") -> Stimulus:
    """A data frame: ``cmd = CMD_DATA``, the flow in the packet bytes."""
    return Stimulus(
        packet=packet, scalars={"cmd": lb_nf.CMD_DATA, "arg": 0, "time": time}, note=note
    )



def _lb_mixed(
    rng: random.Random,
    indices: List[int],
    flows: List[Tuple[int, int]],
    backends: List[int],
    *,
    note: str,
) -> List[Stimulus]:
    """Turn sampled flow indices into a frame mix covering every class.

    Starts by activating every backend (``reconfig``), then streams
    LAN-side flows; every 17th frame is truncated (``short``), every 11th
    carries a non-IPv4 EtherType (``non_ip``), and every 29th is a
    control frame alternately draining and re-activating a rotating
    backend — flows bound to the drained backend re-select on their next
    packet (``backend_drained``).
    """
    stimuli: List[Stimulus] = [
        lb_control_stimulus(lb_nf.CMD_ADD, backend, 0, note) for backend in backends
    ]
    churn = 0
    for n, index in enumerate(indices):
        src_ip, src_port = flows[index]
        time = n * 3
        if n % 29 == 14:
            backend = backends[(churn // 2) % len(backends)]
            cmd = lb_nf.CMD_REMOVE if churn % 2 == 0 else lb_nf.CMD_ADD
            churn += 1
            stimuli.append(lb_control_stimulus(cmd, backend, time, note))
            continue
        if n % 17 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)[: rng.randrange(0, 37)]
        elif n % 11 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80, ethertype=(0x86, 0xDD))
        else:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)
        stimuli.append(lb_data_stimulus(packet, time, note))
    return stimuli


def lb_workloads(
    *,
    seed: int = 2019,
    capacity: int = 16,
    timeout: int = 50,
    packets: int = 150,
    population: int = 12,
    table_size: int = 13,
    max_backends: int = 4,
) -> List[Workload]:
    """The LB's five evaluation workloads (fresh state per stream)."""
    rng = random.Random(seed)
    flows = [
        (rng.randrange(1 << 32), rng.randrange(1024, 1 << 16)) for _ in range(population)
    ]
    backends = rng.sample(range(1, 1 << 16), max_backends)
    uniform = _lb_mixed(
        rng, uniform_indices(rng, population, packets), flows, backends, note="uniform"
    )
    zipf = _lb_mixed(
        rng, zipf_indices(rng, population, packets), flows, backends, note="zipf"
    )
    geometry = dict(table_size=table_size, max_backends=max_backends)
    return [
        Workload("uniform", lb_harness(capacity, timeout, **geometry), tuple(uniform)),
        Workload("zipf", lb_harness(capacity, timeout, **geometry), tuple(zipf)),
        lb_adversarial(capacity=capacity, timeout=timeout, **geometry),
        lb_scan_sweep(capacity=capacity, timeout=timeout, packets=packets, **geometry),
        lb_header_flood(capacity=capacity, timeout=timeout, packets=packets, **geometry),
    ]


def lb_adversarial(
    *,
    capacity: int = 16,
    timeout: int = 50,
    table_size: int = 13,
    max_backends: int = 4,
) -> Workload:
    """The LB worst-case stream: data-plane *and* control-plane bounds.

    Phases (times chosen so nothing expires before the final sweep):

    1. ``ctrl_fill`` — activate ``max_backends`` backends whose permutation
       parameters all collide: each repopulation performs exactly the
       worst-case fill count for its backend count, and the last one pins
       ``lb_tbl.f`` to its declared (proven-tight) bound.
    2. ``churn`` — drain and re-activate one backend: the removal phase
       the repopulation contract exists for, and the re-add hits the
       ``lb_tbl.f`` bound a second time.
    3. ``fill`` — ``capacity`` flows whose keys collide in the connection
       table are bound, building one maximal chain.
    4. ``worst_t`` — a frame from the *last* bound flow: the affinity
       lookup and refresh walk ``conn.t = capacity`` links.
    5. ``drained`` — the tail flow's backend is drained, then the tail
       flow re-selects and rebinds (class ``backend_drained``).
    6. ``no_backends`` — every remaining backend is drained; a fresh flow
       (select path) and the tail flow (reselect path) are both dropped.
    7. ``worst_e`` — time jumps beyond a full wheel revolution past every
       deadline: one sweep advances ``conn.w = wheel_slots`` slots and
       expires all ``conn.e = capacity`` affinity entries.
    """
    harness = lb_harness(
        capacity, timeout, table_size=table_size, max_backends=max_backends
    )
    tbl, conn = harness.structures
    wheel_slots = conn.wheel_slots
    backends = colliding_backends(max_backends, table_size=table_size)
    flows = colliding_keys(capacity, buckets=capacity)
    flow_set = set(flows)

    stimuli: List[Stimulus] = [
        lb_control_stimulus(lb_nf.CMD_ADD, backend, 0, "ctrl_fill") for backend in backends
    ]
    stimuli.append(lb_control_stimulus(lb_nf.CMD_REMOVE, backends[0], 0, "churn"))
    stimuli.append(lb_control_stimulus(lb_nf.CMD_ADD, backends[0], 0, "churn"))
    for i, key in enumerate(flows, start=1):
        stimuli.append(lb_data_stimulus(nat_frame(key >> 16, key & 0xFFFF, WAN_SERVER, 80), i, "fill"))
    tail = flows[-1]
    last = len(flows)
    tail_frame = nat_frame(tail >> 16, tail & 0xFFFF, WAN_SERVER, 80)
    stimuli.append(lb_data_stimulus(tail_frame, last, "worst_t"))
    # Reconstruct the tail flow's backend on a scratch table (repopulation
    # is deterministic in the active set) and drain exactly that backend.
    scratch = MaglevTable("scratch", table_size=table_size, max_backends=max_backends)
    for backend in backends:
        scratch.add_backend(backend)
    drained = scratch.select(tail)
    stimuli.append(lb_control_stimulus(lb_nf.CMD_REMOVE, drained, last, "drained"))
    stimuli.append(lb_data_stimulus(tail_frame, last, "drained"))
    for backend in backends:
        if backend != drained:
            stimuli.append(lb_control_stimulus(lb_nf.CMD_REMOVE, backend, last, "no_backends"))
    fresh = next(k for k in range(1, 1 << 16) if k not in flow_set)
    stimuli.append(
        lb_data_stimulus(nat_frame(fresh >> 16, fresh & 0xFFFF, WAN_SERVER, 80), last, "no_backends")
    )
    stimuli.append(lb_data_stimulus(tail_frame, last, "no_backends"))
    # Latest deadline: the rebind at time `last` plus the timeout.  Jumping
    # past it by a full revolution makes the sweep advance wheel_slots
    # slots and visit every deadline slot.
    doom = last + timeout + wheel_slots + 1
    stimuli.append(
        lb_data_stimulus(nat_frame(fresh >> 16, fresh & 0xFFFF, WAN_SERVER, 80), doom, "worst_e")
    )
    return Workload(
        "adversarial",
        harness,
        tuple(stimuli),
        expected_worst={
            conn.pcv_name("t"): capacity,
            conn.pcv_name("e"): capacity,
            conn.pcv_name("w"): wheel_slots,
            tbl.pcv_name("f"): max_fill_iterations(max_backends, table_size),
        },
    )


def _lb_scan_backends(max_backends: int) -> List[int]:
    """Deterministic distinct backend ids for the sweep/flood streams."""
    return [101 + 97 * i for i in range(max_backends)]


def lb_scan_sweep(
    *,
    capacity: int = 16,
    timeout: int = 50,
    table_size: int = 13,
    max_backends: int = 4,
    packets: int = 150,
) -> Workload:
    """A ZMap-style sweep through the VIP: one fresh flow per frame.

    Every frame selects and binds a brand-new flow (the ``new_flow``
    path, back to back), churning the connection table without a single
    repeat — affinity buys nothing under a scanner.
    """
    harness = lb_harness(
        capacity, timeout, table_size=table_size, max_backends=max_backends
    )
    stimuli: List[Stimulus] = [
        lb_control_stimulus(lb_nf.CMD_ADD, backend, 0, "ctrl")
        for backend in _lb_scan_backends(max_backends)
    ]
    for n in range(packets):
        packet = nat_frame(0x2D000000 + n, 33333, WAN_SERVER, 80)
        stimuli.append(lb_data_stimulus(packet, n, "scan"))
    return Workload("scan_sweep", harness, tuple(stimuli))


def lb_header_flood(
    *,
    capacity: int = 16,
    timeout: int = 50,
    table_size: int = 13,
    max_backends: int = 4,
    packets: int = 150,
) -> Workload:
    """A crafted-header flood: one flow hammering the VIP at line rate.

    The first data frame binds the flow; every later one rides the
    affinity fast path (``existing_flow``), refreshed far faster than it
    can expire; every 17th frame is a runt.
    """
    harness = lb_harness(
        capacity, timeout, table_size=table_size, max_backends=max_backends
    )
    stimuli: List[Stimulus] = [
        lb_control_stimulus(lb_nf.CMD_ADD, backend, 0, "ctrl")
        for backend in _lb_scan_backends(max_backends)
    ]
    frame = nat_frame(0x0A0A0A0A, 55555, WAN_SERVER, 80)
    for n in range(packets):
        if n % 17 == 3:
            stimuli.append(lb_data_stimulus(frame[: n % 12], n, "flood"))
        else:
            stimuli.append(lb_data_stimulus(frame, n, "flood"))
    return Workload("header_flood", harness, tuple(stimuli))


# --------------------------------------------------------------------------- #
# Firewall
# --------------------------------------------------------------------------- #
def firewall_harness(
    capacity: int = 16,
    timeout: int = 50,
    *,
    slots: Optional[Iterable[int]] = None,
) -> NFHarness:
    """A fresh connection-tracking firewall wired for replay.

    The handler merges the connection table and the slot allocator into
    one dispatch table, exactly like the NAT's three-instance merge.
    """
    conn, pool = firewall_nf.make_firewall_state(capacity, timeout, slots=slots)
    handler = ExternHandler().merge(conn).merge(pool)
    return NFHarness(
        "firewall",
        firewall_nf.build_firewall_module(),
        firewall_nf.FIREWALL_FUNCTION,
        handler=handler,
        structures=(conn, pool),
        pkt_base=firewall_nf.PKT_BASE,
        sym_bytes=firewall_nf.PKT_SYM_BYTES,
        scalar_order=("len", "in_port", "time"),
    )


def _firewall_mixed(
    rng: random.Random,
    indices: List[int],
    flows: List[Tuple[int, int]],
    *,
    note: str,
) -> List[Stimulus]:
    """Turn sampled flow indices into a frame mix covering every class.

    Most frames are LAN→WAN traffic from the sampled flow (new or
    established); every 17th is truncated (``short``), every 11th carries
    a non-IPv4 EtherType (``non_ip``), every 23rd is an outbound frame to
    the filtered port (``denied``), and every 5th is a WAN frame probing
    the sampled endpoint (``inbound_established`` once the connection
    exists, ``unsolicited`` before it does or after it expires).
    """
    stimuli: List[Stimulus] = []
    for n, index in enumerate(indices):
        src_ip, src_port = flows[index]
        scalars = {"in_port": firewall_nf.LAN_PORT, "time": n * 3}
        if n % 17 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)[: rng.randrange(0, 37)]
        elif n % 11 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80, ethertype=(0x86, 0xDD))
        elif n % 23 == 6:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, firewall_nf.DENY_PORT)
        elif n % 5 == 0:
            packet = nat_frame(WAN_CLIENT, 443, src_ip, src_port)
            scalars["in_port"] = 1 + rng.randrange(3)
        else:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)
        stimuli.append(Stimulus(packet=packet, scalars=scalars, note=note))
    return stimuli


def firewall_workloads(
    *,
    seed: int = 2019,
    capacity: int = 16,
    timeout: int = 50,
    packets: int = 150,
    population: int = 12,
) -> List[Workload]:
    """The firewall's five evaluation workloads (fresh state per stream).

    The uniform/Zipf streams run with a generous ``4 * capacity`` slot
    pool so realistic traffic is admitted freely — exhausting the pool
    (and reaching ``conn_full``) is the scan sweep's job, which runs with
    the default ``capacity``-sized pool.
    """
    rng = random.Random(seed)
    flows = [
        (rng.randrange(1 << 32), rng.randrange(1024, 1 << 16)) for _ in range(population)
    ]
    slots = range(1, 4 * capacity + 1)
    uniform = _firewall_mixed(
        rng, uniform_indices(rng, population, packets), flows, note="uniform"
    )
    zipf = _firewall_mixed(
        rng, zipf_indices(rng, population, packets), flows, note="zipf"
    )
    return [
        Workload(
            "uniform", firewall_harness(capacity, timeout, slots=slots), tuple(uniform)
        ),
        Workload("zipf", firewall_harness(capacity, timeout, slots=slots), tuple(zipf)),
        firewall_adversarial(capacity=capacity, timeout=timeout),
        firewall_scan_sweep(capacity=capacity, timeout=timeout, packets=packets),
        firewall_header_flood(capacity=capacity, timeout=timeout, packets=packets),
    ]


def firewall_adversarial(*, capacity: int = 16, timeout: int = 50) -> Workload:
    """The firewall worst-case stream: every ``fw_conn`` PCV at its bound.

    Phases (times chosen so nothing expires before the final sweep):

    1. ``fill`` — ``capacity`` outbound flows whose keys collide in the
       connection table are admitted, building one maximal chain and
       draining the (default, ``capacity``-sized) slot pool.
    2. ``worst_t`` — a frame from the *last* established flow: the lookup
       and lease refresh walk ``fw_conn.t = capacity`` links.
    3. ``conn_full`` — a brand-new outbound flow finds no slot: dropped.
    4. ``inbound`` — a WAN frame to the tail endpoint: forwarded
       read-only (``inbound_established``).
    5. ``denied`` — an outbound frame to the filtered port: dropped by
       the egress rule before any table work.
    6. ``unsolicited`` — a WAN frame to an untracked endpoint: dropped.
    7. ``worst_e`` — time jumps beyond a full wheel revolution past every
       deadline: one sweep advances ``fw_conn.w = wheel_slots`` slots and
       expires all ``fw_conn.e = capacity`` connections.
    """
    harness = firewall_harness(capacity, timeout)
    conn = harness.structures[0]
    wheel_slots = conn.wheel_slots
    flows = colliding_keys(capacity, buckets=capacity)
    flow_set = set(flows)
    stimuli: List[Stimulus] = []
    for i, key in enumerate(flows):
        stimuli.append(
            Stimulus(
                packet=nat_frame(key >> 16, key & 0xFFFF, WAN_SERVER, 80),
                scalars={"in_port": firewall_nf.LAN_PORT, "time": i},
                note="fill",
            )
        )
    tail = flows[-1]
    stimuli.append(
        Stimulus(
            packet=nat_frame(tail >> 16, tail & 0xFFFF, WAN_SERVER, 80),
            scalars={"in_port": firewall_nf.LAN_PORT, "time": capacity},
            note="worst_t",
        )
    )
    fresh = next(k for k in range(1, 1 << 16) if k not in flow_set)
    stimuli.append(
        Stimulus(
            packet=nat_frame(fresh >> 16, fresh & 0xFFFF, WAN_SERVER, 80),
            scalars={"in_port": firewall_nf.LAN_PORT, "time": capacity},
            note="conn_full",
        )
    )
    stimuli.append(
        Stimulus(
            packet=nat_frame(WAN_CLIENT, 443, tail >> 16, tail & 0xFFFF),
            scalars={"in_port": 1, "time": capacity},
            note="inbound",
        )
    )
    stimuli.append(
        Stimulus(
            packet=nat_frame(fresh >> 16, fresh & 0xFFFF, WAN_SERVER, firewall_nf.DENY_PORT),
            scalars={"in_port": firewall_nf.LAN_PORT, "time": capacity},
            note="denied",
        )
    )
    stimuli.append(
        Stimulus(
            packet=nat_frame(WAN_CLIENT, 443, fresh >> 16, fresh & 0xFFFF),
            scalars={"in_port": 1, "time": capacity},
            note="unsolicited",
        )
    )
    # Latest deadline: the tail refresh at time `capacity` plus the
    # timeout.  Jumping past it by a full revolution makes the sweep
    # advance wheel_slots slots and visit every deadline slot.
    doom = capacity + timeout + wheel_slots + 1
    stimuli.append(
        Stimulus(
            packet=nat_frame(WAN_CLIENT, 443, fresh >> 16, fresh & 0xFFFF),
            scalars={"in_port": 1, "time": doom},
            note="worst_e",
        )
    )
    return Workload(
        "adversarial",
        harness,
        tuple(stimuli),
        expected_worst={
            conn.pcv_name("t"): capacity,
            conn.pcv_name("e"): capacity,
            conn.pcv_name("w"): wheel_slots,
        },
    )


def firewall_scan_sweep(
    *, capacity: int = 16, timeout: int = 50, packets: int = 150
) -> Workload:
    """A ZMap-style sweep from inside: one fresh source per frame.

    Slots are leased for the bench lifetime, so a sweep of distinct
    sources drains the default ``capacity``-sized pool front to back and
    every admission after that is ``conn_full`` — connection-table
    exhaustion under a realistic scanner, not a crafted collision.
    """
    harness = firewall_harness(capacity, timeout)
    stimuli = [
        Stimulus(
            packet=nat_frame(0x2D000000 + n, 33333, WAN_SERVER, 80),
            scalars={"in_port": firewall_nf.LAN_PORT, "time": n},
            note="scan",
        )
        for n in range(packets)
    ]
    return Workload("scan_sweep", harness, tuple(stimuli))


def firewall_header_flood(
    *, capacity: int = 16, timeout: int = 50, packets: int = 150
) -> Workload:
    """A SYN-flood-shaped blast against the stateful default-deny.

    Most frames are WAN probes of one never-established LAN endpoint
    (``unsolicited``, back to back); every 5th is an outbound frame to
    the filtered port (the egress rule running hot), and every 17th is a
    runt.
    """
    harness = firewall_harness(capacity, timeout)
    victim_ip, victim_port = 0x0A00002A, 8080  # the probed LAN endpoint
    stimuli: List[Stimulus] = []
    for n in range(packets):
        if n % 17 == 0:
            packet = nat_frame(WAN_CLIENT, 443, victim_ip, victim_port)[: n % 12]
            scalars = {"in_port": 1, "time": n}
        elif n % 5 == 2:
            packet = nat_frame(victim_ip, victim_port, WAN_SERVER, firewall_nf.DENY_PORT)
            scalars = {"in_port": firewall_nf.LAN_PORT, "time": n}
        else:
            packet = nat_frame(WAN_CLIENT, 443 + (n % 7), victim_ip, victim_port)
            scalars = {"in_port": 1 + (n % 3), "time": n}
        stimuli.append(Stimulus(packet=packet, scalars=scalars, note="flood"))
    return Workload("header_flood", harness, tuple(stimuli))


# --------------------------------------------------------------------------- #
# Monitor
# --------------------------------------------------------------------------- #
def monitor_harness() -> NFHarness:
    """A fresh heavy-hitter monitor wired for replay.

    The sketch's geometry is fixed by :mod:`repro.nf.monitor` (the module
    and the contract bake in the default depth), so the harness takes no
    geometry knobs.
    """
    sketch = monitor_nf.make_sketch()
    return NFHarness(
        "monitor",
        monitor_nf.build_monitor_module(),
        monitor_nf.MONITOR_FUNCTION,
        handler=sketch,
        structures=(sketch,),
        pkt_base=monitor_nf.PKT_BASE,
        sym_bytes=monitor_nf.PKT_SYM_BYTES,
        scalar_order=("len",),
    )


def _monitor_mixed(
    rng: random.Random,
    indices: List[int],
    flows: List[Tuple[int, int]],
    *,
    note: str,
) -> List[Stimulus]:
    """Turn sampled flow indices into a frame mix.

    Every 17th frame is truncated (``short``), every 11th carries a
    non-IPv4 EtherType (``non_ip``); the rest count their flow in the
    sketch (``cold_flow`` until a flow's estimate crosses the threshold,
    ``hot_flow`` after — which the head of a Zipf stream genuinely does).
    """
    stimuli: List[Stimulus] = []
    for n, index in enumerate(indices):
        src_ip, src_port = flows[index]
        if n % 17 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)[: rng.randrange(0, 37)]
        elif n % 11 == 0:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80, ethertype=(0x86, 0xDD))
        else:
            packet = nat_frame(src_ip, src_port, WAN_SERVER, 80)
        stimuli.append(Stimulus(packet=packet, note=note))
    return stimuli


def monitor_workloads(
    *, seed: int = 2019, packets: int = 150, population: int = 12
) -> List[Workload]:
    """The monitor's five evaluation workloads (fresh sketch per stream)."""
    rng = random.Random(seed)
    flows = [
        (rng.randrange(1 << 32), rng.randrange(1024, 1 << 16)) for _ in range(population)
    ]
    uniform = _monitor_mixed(
        rng, uniform_indices(rng, population, packets), flows, note="uniform"
    )
    zipf = _monitor_mixed(
        rng, zipf_indices(rng, population, packets), flows, note="zipf"
    )
    return [
        Workload("uniform", monitor_harness(), tuple(uniform)),
        Workload("zipf", monitor_harness(), tuple(zipf)),
        monitor_adversarial(),
        monitor_scan_sweep(packets=packets),
        monitor_header_flood(packets=packets),
    ]


def monitor_adversarial() -> Workload:
    """The monitor worst-case stream — which *has* no cost worst case.

    The sketch contributes no PCVs, so there is no bound to pin; instead
    the stream deterministically forces every verdict and the structure's
    only fast path: one flow is blasted ``counter_max + 1`` times —
    crossing the threshold (``hot_flow``) and saturating its counters, so
    the final update takes the saturated path — then a fresh flow passes
    cold, a runt and a non-IPv4 frame cover the drop classes.
    """
    harness = monitor_harness()
    hot_ip, hot_port = 0xC0A80001, 40001  # 192.168.0.1, the heavy hitter
    hot_frame = nat_frame(hot_ip, hot_port, WAN_SERVER, 80)
    stimuli: List[Stimulus] = [
        Stimulus(packet=hot_frame, note="flood")
        for _ in range(monitor_nf.MON_COUNTER_MAX + 1)
    ]
    stimuli.append(
        Stimulus(packet=nat_frame(0x0A000001, 12001, WAN_SERVER, 80), note="cold")
    )
    stimuli.append(Stimulus(packet=hot_frame[:9], note="short"))
    stimuli.append(
        Stimulus(
            packet=nat_frame(hot_ip, hot_port, WAN_SERVER, 80, ethertype=(0x86, 0xDD)),
            note="non_ip",
        )
    )
    return Workload("adversarial", harness, tuple(stimuli))


def monitor_scan_sweep(*, packets: int = 150) -> Workload:
    """A ZMap-style sweep past the monitor: one fresh source per frame.

    No flow repeats, so early estimates stay cold; a long enough sweep
    still heats the sketch through sheer collision mass — exactly the
    false-positive behaviour a count-min sketch trades for its constant
    cost.
    """
    stimuli = [
        Stimulus(packet=nat_frame(0x2D000000 + n, 33333, WAN_SERVER, 80), note="scan")
        for n in range(packets)
    ]
    return Workload("scan_sweep", monitor_harness(), tuple(stimuli))


def monitor_header_flood(*, packets: int = 150) -> Workload:
    """A crafted-header flood: one flow blasted at line rate.

    The flow crosses the threshold after ``MON_THRESHOLD`` frames and
    saturates its counters at ``counter_max`` — the flood pins every one
    of its row counters to the ceiling, after which updates ride the
    saturated fast path; every 31st frame is a runt.
    """
    harness = monitor_harness()
    frame = nat_frame(0xC6336417, 6667, WAN_SERVER, 80)  # the flooding source
    stimuli: List[Stimulus] = []
    for n in range(packets):
        if n % 31 == 0:
            stimuli.append(Stimulus(packet=frame[: n % 12], note="runt"))
        else:
            stimuli.append(Stimulus(packet=frame, note="flood"))
    return Workload("header_flood", harness, tuple(stimuli))


def worst_case_report(
    result_max_pcvs: Mapping[str, int], expected: Mapping[str, int]
) -> Dict[str, Dict[str, object]]:
    """Compare observed PCV maxima against the promised worst case."""
    report: Dict[str, Dict[str, object]] = {}
    for pcv, bound in expected.items():
        observed = result_max_pcvs.get(pcv, 0)
        report[pcv] = {"observed": observed, "bound": bound, "hit": observed >= bound}
    return report
