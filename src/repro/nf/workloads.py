"""Per-NF workloads: uniform, Zipf and provably-worst-case adversarial.

The generic samplers live in :mod:`repro.traffic.generators`; this module
supplies what only the NF can know — how to turn sampled keys into frames,
and which input state drives each performance-critical variable to the
maximum its registry declares.  Each factory returns a :class:`Workload`
bundling a *fresh* harness (state is part of the workload: adversarial
streams prime it deliberately), the stimulus list, and — for adversarial
streams — the PCV values the replay must observe for the worst case to
count as *hit*:

* **bridge** — the adversarial stream learns ``capacity`` MACs that all
  hash into one bucket of the MAC table (so a tail refresh inspects
  ``t = capacity`` links), then jumps time past a full wheel revolution
  (so one sweep advances ``w = wheel_slots`` slots and expires
  ``e = capacity`` entries).  All three PCVs reach their registry bounds.
* **router** — the adversarial FIB nests a route at every prefix length
  1–32 along one address; routing that address visits ``d = 33`` trie
  nodes, the maximum any IPv4 lookup can incur.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.nf import bridge as bridge_nf
from repro.nf import router as router_nf
from repro.nf.replay import NFHarness
from repro.structures import ChainingHashMap, LpmTrie
from repro.structures.lpm import MAX_DEPTH
from repro.traffic.generators import Stimulus, uniform_indices, zipf_indices
from repro.traffic.packets import ethernet_frame, ipv4_frame, mac_bytes

__all__ = [
    "Workload",
    "bridge_harness",
    "bridge_workloads",
    "colliding_mac_keys",
    "router_fib_routes",
    "router_harness",
    "router_workloads",
]


@dataclass(frozen=True)
class Workload:
    """One named stimulus stream bound to a fresh NF harness."""

    name: str
    harness: NFHarness
    stimuli: Tuple[Stimulus, ...]
    #: For adversarial streams: PCV -> value the replay must observe
    #: (each is that PCV's declared upper bound for the configured NF).
    expected_worst: Mapping[str, int] = field(default_factory=dict)


# --------------------------------------------------------------------------- #
# Bridge
# --------------------------------------------------------------------------- #
def bridge_harness(capacity: int = 16, timeout: int = 50) -> NFHarness:
    """A fresh MAC-learning bridge wired for replay."""
    table = bridge_nf.make_bridge_table(capacity, timeout)
    return NFHarness(
        "bridge",
        bridge_nf.build_bridge_module(),
        bridge_nf.BRIDGE_FUNCTION,
        handler=table,
        structures=(table,),
        pkt_base=bridge_nf.PKT_BASE,
        sym_bytes=bridge_nf.PKT_SYM_BYTES,
        scalar_order=("len", "in_port", "time"),
    )


def _bridge_mixed(
    rng: random.Random,
    indices: List[int],
    macs: List[int],
    *,
    ports: int,
    note: str,
) -> List[Stimulus]:
    """Turn sampled MAC indices into a frame mix covering every class."""
    stimuli: List[Stimulus] = []
    for n, index in enumerate(indices):
        dst = macs[index]
        src = macs[indices[(n * 7 + 3) % len(indices)]]
        if n % 17 == 0:
            packet = mac_bytes(dst)[: rng.randrange(0, 13)]  # truncated frame
        else:
            packet = ethernet_frame(dst, src)
        stimuli.append(
            Stimulus(
                packet=packet,
                scalars={"in_port": rng.randrange(ports), "time": n * 3},
                note=note,
            )
        )
    return stimuli


def bridge_workloads(
    *,
    seed: int = 2019,
    capacity: int = 16,
    timeout: int = 50,
    packets: int = 150,
    population: int = 12,
    ports: int = 4,
) -> List[Workload]:
    """The bridge's three evaluation workloads (fresh state per stream)."""
    rng = random.Random(seed)
    macs = [rng.randrange(1, 1 << 48) for _ in range(population)]
    uniform = _bridge_mixed(
        rng, uniform_indices(rng, population, packets), macs, ports=ports, note="uniform"
    )
    zipf = _bridge_mixed(
        rng, zipf_indices(rng, population, packets), macs, ports=ports, note="zipf"
    )
    return [
        Workload("uniform", bridge_harness(capacity, timeout), tuple(uniform)),
        Workload("zipf", bridge_harness(capacity, timeout), tuple(zipf)),
        bridge_adversarial(capacity=capacity, timeout=timeout),
    ]


def colliding_mac_keys(capacity: int) -> List[int]:
    """Find ``capacity`` 48-bit keys that share one MAC-table bucket.

    The bridge's table chains inside a :class:`ChainingHashMap` with
    ``capacity`` buckets; keys sharing a bucket pile into one chain, so a
    lookup of the chain's tail inspects ``capacity`` links — the declared
    maximum of the PCV ``t``.
    """
    probe = ChainingHashMap("probe", capacity=capacity)
    target = probe._hash(1)
    keys: List[int] = []
    candidate = 1
    while len(keys) < capacity:
        if probe._hash(candidate) == target:
            keys.append(candidate)
        candidate += 1
        if candidate >= 1 << 48:  # pragma: no cover - defensive
            raise RuntimeError("could not find enough colliding keys")
    return keys


def bridge_adversarial(*, capacity: int = 16, timeout: int = 50) -> Workload:
    """The bridge worst-case stream: every PCV driven to its bound.

    Phases (times chosen so nothing expires before the final sweep):

    1. ``fill`` — learn ``capacity`` colliding source MACs (unknown
       destination: each frame floods), building one maximal hash chain.
    2. ``worst_t`` — a frame from the chain's *tail* MAC towards its
       *head* MAC on another port: the learning ``put`` refreshes the
       tail after inspecting ``t = capacity`` links, and the destination
       is known elsewhere, so the frame is forwarded (class ``hit``).
    3. ``worst_e`` — time jumps beyond a full wheel revolution past every
       deadline: one sweep advances ``w = wheel_slots`` slots and expires
       all ``e = capacity`` entries.
    """
    harness = bridge_harness(capacity, timeout)
    table = harness.structures[0]
    wheel_slots = table.wheel_slots
    keys = colliding_mac_keys(capacity)
    unknown = next(k for k in range(1, 1 << 16) if k not in set(keys))
    stimuli: List[Stimulus] = []
    for i, key in enumerate(keys):
        stimuli.append(
            Stimulus(
                packet=ethernet_frame(unknown, key),
                scalars={"in_port": 1, "time": i},
                note="fill",
            )
        )
    fill_end = len(keys) - 1
    stimuli.append(
        Stimulus(
            packet=ethernet_frame(keys[0], keys[-1]),
            scalars={"in_port": 2, "time": fill_end},
            note="worst_t",
        )
    )
    # Latest deadline: the tail refresh at fill_end + timeout.  Jumping
    # past it by a full revolution makes the sweep advance wheel_slots
    # slots and visit every deadline slot.
    doom = fill_end + timeout + wheel_slots + 1
    stimuli.append(
        Stimulus(
            packet=ethernet_frame(unknown, unknown + 1),
            scalars={"in_port": 3, "time": doom},
            note="worst_e",
        )
    )
    return Workload(
        "adversarial",
        harness,
        tuple(stimuli),
        expected_worst={"t": capacity, "e": capacity, "w": wheel_slots},
    )


# --------------------------------------------------------------------------- #
# Router
# --------------------------------------------------------------------------- #
#: The address the adversarial route chain nests along.
CHAIN_ADDRESS = 0x8A3B1CF5


def router_fib_routes() -> List[Tuple[int, int, int]]:
    """The bench FIB: ``(prefix, length, port)`` triples.

    A route at *every* length 1–32 along :data:`CHAIN_ADDRESS` (the
    adversarial chain) plus a few scattered shorter prefixes.  No default
    route, so ``no_route`` traffic exists.
    """
    routes = [(CHAIN_ADDRESS, length, length % router_nf.MAX_PORTS) for length in range(1, 33)]
    routes += [
        (0x0A000000, 8, 40),  # 10.0.0.0/8
        (0x0A140000, 16, 41),  # 10.20.0.0/16
        (0x0A141E00, 24, 42),  # 10.20.30.0/24
        (0x2C000000, 6, 43),  # 44.0.0.0/6
    ]
    return routes


def router_harness(routes: List[Tuple[int, int, int]] | None = None) -> NFHarness:
    """A fresh LPM router with the bench FIB installed."""
    fib: LpmTrie = router_nf.make_routing_table()
    for prefix, length, port in routes if routes is not None else router_fib_routes():
        fib.add_route(prefix, length, port)
    return NFHarness(
        "router",
        router_nf.build_router_module(),
        router_nf.ROUTER_FUNCTION,
        handler=fib,
        structures=(fib,),
        pkt_base=router_nf.PKT_BASE,
        sym_bytes=router_nf.PKT_SYM_BYTES,
        scalar_order=("len",),
    )


def _router_destinations() -> List[int]:
    """Candidate destinations touching routed, nested and unrouted space."""
    return [
        CHAIN_ADDRESS,  # deepest possible match (/32)
        CHAIN_ADDRESS ^ 0x1,  # walks deep, matches the /31
        CHAIN_ADDRESS ^ 0xFF,  # matches a mid-length nested prefix
        0x0A141E07,  # 10.20.30.7 -> /24
        0x0A140101,  # 10.20.1.1  -> /16
        0x0A636363,  # 10.99.99.99 -> /8
        0x2D010203,  # 45.1.2.3 -> /6
        0x7F000001,  # 127.0.0.1 -> no_route
        0x01020304,  # 1.2.3.4 -> no_route
    ]


def _router_mixed(rng: random.Random, indices: List[int], *, note: str) -> List[Stimulus]:
    """Turn sampled destination indices into a frame mix for all classes."""
    destinations = _router_destinations()
    stimuli: List[Stimulus] = []
    for n, index in enumerate(indices):
        dst = destinations[index % len(destinations)]
        if n % 13 == 0:
            packet = ipv4_frame(dst)[: rng.randrange(0, 34)]  # truncated frame
        elif n % 11 == 0:
            packet = ipv4_frame(dst, ethertype=(0x86, 0xDD))  # IPv6: dropped
        elif n % 7 == 0:
            packet = ipv4_frame(dst, ttl=1)  # TTL expires here
        else:
            packet = ipv4_frame(dst, ttl=1 + rng.randrange(1, 255))
        stimuli.append(Stimulus(packet=packet, note=note))
    return stimuli


def router_workloads(*, seed: int = 2019, packets: int = 150) -> List[Workload]:
    """The router's three evaluation workloads (fresh FIB per stream)."""
    rng = random.Random(seed)
    population = len(_router_destinations())
    uniform = _router_mixed(rng, uniform_indices(rng, population, packets), note="uniform")
    zipf = _router_mixed(rng, zipf_indices(rng, population, packets), note="zipf")
    return [
        Workload("uniform", router_harness(), tuple(uniform)),
        Workload("zipf", router_harness(), tuple(zipf)),
        router_adversarial(),
    ]


def router_adversarial() -> Workload:
    """The router worst-case stream: the deepest walk an IPv4 lookup allows.

    The FIB nests a route at every length 1–32 along
    :data:`CHAIN_ADDRESS`; routing that exact address visits the root
    plus one node per bit — ``d = 33``, the registry bound of ``d``.
    """
    stimuli = [
        Stimulus(packet=ipv4_frame(CHAIN_ADDRESS), note="worst_d"),
        Stimulus(packet=ipv4_frame(CHAIN_ADDRESS ^ 0x1), note="deep_sibling"),
        Stimulus(packet=ipv4_frame(0x7F000001), note="no_route"),
        Stimulus(packet=ipv4_frame(CHAIN_ADDRESS, ttl=1), note="ttl"),
        Stimulus(packet=ipv4_frame(CHAIN_ADDRESS)[:10], note="short"),
    ]
    return Workload(
        "adversarial",
        router_harness(),
        tuple(stimuli),
        expected_worst={"d": MAX_DEPTH},
    )


def worst_case_report(
    result_max_pcvs: Mapping[str, int], expected: Mapping[str, int]
) -> Dict[str, Dict[str, object]]:
    """Compare observed PCV maxima against the promised worst case."""
    report: Dict[str, Dict[str, object]] = {}
    for pcv, bound in expected.items():
        observed = result_max_pcvs.get(pcv, 0)
        report[pcv] = {"observed": observed, "bound": bound, "hit": observed >= bound}
    return report
