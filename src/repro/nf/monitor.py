"""A heavy-hitter traffic monitor on a count-min sketch.

The sixth NF of the reproduction, and the one built on
:class:`~repro.structures.CountMinSketch`: every well-formed IPv4 frame
counts its source flow (``(src_ip << 16) | src_port``) in the sketch
``hh``, and the updated estimate is compared against a threshold — flows
at or above it are flagged as heavy hitters, everything else passes
unremarked.

The interesting property is what the contract *doesn't* contain: the
sketch's operations are constant-time by construction (no PCVs — see the
structure's docstring), and the hot/cold branch below is two
single-return blocks of identical shape, so the ``hot_flow`` and
``cold_flow`` entries carry byte-identical cost polynomials.  The
constant-time audit therefore PROVES the pair indistinguishable (a zero
cycle-delta polynomial under every hardware model): an observer timing
the monitor learns nothing about which flows it considers hot.  Contrast
the firewall, whose tracked/untracked classes genuinely leak.

Input classes of the generated contract:

=============  ======================================================
``short``      frame shorter than headers + ports: dropped
``non_ip``     EtherType is not IPv4: dropped
``cold_flow``  estimate below the threshold: passed unremarked
``hot_flow``   estimate at/above the threshold: flagged heavy hitter
=============  ======================================================

PCVs: none — the whole point.  There is consequently no bound for an
adversarial stream to pin; instead the ``header_flood`` workload
saturates the sketch's counters (pinning every estimate to the
``counter_max`` ceiling), exercising the structure's only fast path.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.bolt import Bolt, BoltConfig
from repro.core.contract import PerformanceContract
from repro.core.input_class import InputClass
from repro.core.pcv import PCVRegistry
from repro.nf.replay import replay_env
from repro.nfil.builder import FunctionBuilder
from repro.nfil.program import Module
from repro.nfil.tracer import ExecutionTrace
from repro.nfil.validate import validate_module
from repro.structures import CountMinSketch, StructureModel
from repro.sym.expr import BV, Const, Sym
from repro.sym.paths import Path
from repro.sym.state import SymbolicMemory

__all__ = [
    "FLAG_COLD",
    "FLAG_HOT",
    "DROP_NON_IP",
    "DROP_SHORT",
    "MIN_MON_FRAME",
    "MON_COUNTER_MAX",
    "MON_DEPTH",
    "MON_THRESHOLD",
    "MON_WIDTH",
    "MONITOR_FUNCTION",
    "PKT_BASE",
    "SKETCH_NAME",
    "build_monitor_module",
    "classify_monitor_path",
    "generate_monitor_contract",
    "make_sketch",
    "monitor_registry",
    "monitor_replay_env",
    "monitor_symbolic_inputs",
]

#: Entry function of the monitor.
MONITOR_FUNCTION = "monitor_process"

#: Where the packet buffer lives in NF memory.
PKT_BASE = 0x1000
#: Ethernet + IPv4 + transport ports (same layout the NAT parses).
MIN_MON_FRAME = 38
#: How many leading packet bytes are made symbolic during analysis.
PKT_SYM_BYTES = MIN_MON_FRAME

#: EtherType 0x0800 (IPv4) as read by a little-endian 16-bit load.
ETHERTYPE_IPV4_LE = 0x0008

#: Structure instance name of the heavy-hitter sketch.
SKETCH_NAME = "hh"

#: Default sketch geometry and flagging threshold.
MON_DEPTH = 4
MON_WIDTH = 64
#: 8-bit saturating counters: a flood pins an estimate here and no
#: further, which is what the ``header_flood`` workloads assert.
MON_COUNTER_MAX = 255
#: Estimates at or above this are flagged as heavy hitters.
MON_THRESHOLD = 32

#: Return codes of the monitor (all paths return a constant verdict).
DROP_SHORT = 0xFFB0
DROP_NON_IP = 0xFFB1
FLAG_COLD = 0xFFB8
FLAG_HOT = 0xFFB9


def make_sketch(
    depth: int = MON_DEPTH,
    width: int = MON_WIDTH,
    *,
    counter_max: int = MON_COUNTER_MAX,
) -> CountMinSketch:
    """Build the monitor's heavy-hitter sketch."""
    return CountMinSketch(SKETCH_NAME, depth=depth, width=width, counter_max=counter_max)


def monitor_registry() -> PCVRegistry:
    """PCVs of the monitor contract: the empty registry, by design."""
    return make_sketch().registry()


# --------------------------------------------------------------------------- #
# Stateless NFIL code
# --------------------------------------------------------------------------- #
def build_monitor_module() -> Module:
    """Build (and validate) the monitor NFIL module."""
    module = Module("monitor")
    sketch = make_sketch()
    sketch.declare(module)

    b = FunctionBuilder(MONITOR_FUNCTION, params=("pkt", "len"))
    short = b.ult(b.param("len"), MIN_MON_FRAME)
    b.br(short, "drop_short", "check_ethertype")

    b.block("drop_short")
    b.ret(DROP_SHORT)

    b.block("check_ethertype")
    pkt = b.param("pkt")
    ethertype = b.load(b.add(pkt, 12), size=2)
    is_ip = b.eq(ethertype, ETHERTYPE_IPV4_LE)
    b.br(is_ip, "count", "drop_non_ip")

    b.block("drop_non_ip")
    b.ret(DROP_NON_IP)

    b.block("count")
    s3 = b.load(b.add(pkt, 26), size=1)
    s2 = b.load(b.add(pkt, 27), size=1)
    s1 = b.load(b.add(pkt, 28), size=1)
    s0 = b.load(b.add(pkt, 29), size=1)
    src_ip = b.or_(
        b.or_(b.shl(s3, 24), b.shl(s2, 16)),
        b.or_(b.shl(s1, 8), s0),
        name="src_ip",
    )
    p1 = b.load(b.add(pkt, 34), size=1)
    p0 = b.load(b.add(pkt, 35), size=1)
    src_port = b.or_(b.shl(p1, 8), p0, name="src_port")
    flow = b.or_(b.shl(src_ip, 16), src_port, name="flow")
    estimate = b.call(sketch.extern_name("update"), flow, name="estimate")
    cold = b.ult(estimate, MON_THRESHOLD)
    # The two verdict blocks are deliberately identical in shape (one
    # constant return each): hot and cold price the same, which is what
    # the constant-time audit proves as a zero polynomial.
    b.br(cold, "pass_cold", "flag_hot")

    b.block("pass_cold")
    b.ret(FLAG_COLD)

    b.block("flag_hot")
    b.ret(FLAG_HOT)

    module.add_function(b.build())
    return validate_module(module)


# --------------------------------------------------------------------------- #
# Contract generation and concrete replay glue
# --------------------------------------------------------------------------- #
def monitor_symbolic_inputs() -> Tuple[list, SymbolicMemory, list]:
    """Symbolic initial state of one monitor invocation."""
    memory = SymbolicMemory()
    memory.write_symbolic(PKT_BASE, PKT_SYM_BYTES, "pkt")
    args: list = [Const(PKT_BASE, 64), Sym("len", 64)]
    return args, memory, []


_CLASS_DESCRIPTIONS = {
    "short": "frame shorter than Ethernet+IPv4+ports; dropped unparsed",
    "non_ip": "EtherType is not IPv4; frame dropped",
    "cold_flow": "estimate below the threshold; passed unremarked",
    "hot_flow": "estimate at/above the threshold; flagged heavy hitter",
}

_VERDICT_CLASSES = {
    DROP_SHORT: "short",
    DROP_NON_IP: "non_ip",
    FLAG_COLD: "cold_flow",
    FLAG_HOT: "hot_flow",
}


def classify_monitor_path(path: Path) -> InputClass:
    """Map one explored monitor path to its input class."""
    assert isinstance(path.returned, Const), "every monitor path returns a verdict"
    name = _VERDICT_CLASSES[path.returned.value]
    return InputClass(name, description=_CLASS_DESCRIPTIONS[name])


def generate_monitor_contract(
    *, config: Optional[BoltConfig] = None
) -> PerformanceContract:
    """Run BOLT end-to-end on the monitor and return its contract."""
    module = build_monitor_module()
    if config is None:
        config = BoltConfig(classifier=classify_monitor_path)
    elif config.classifier is None:
        config.classifier = classify_monitor_path
    sketch = make_sketch()
    bolt = Bolt(
        module,
        MONITOR_FUNCTION,
        model=StructureModel(sketch),
        registry=sketch.registry(),
        config=config,
    )
    args, memory, constraints = monitor_symbolic_inputs()
    return bolt.generate(args, memory=memory, constraints=constraints)


def monitor_replay_env(
    packet: bytes, length: int, trace: ExecutionTrace
) -> Dict[str, int]:
    """Build the symbol assignment a concrete monitor execution matches."""
    return replay_env(packet, PKT_SYM_BYTES, trace, len=length)
