"""A Maglev-style L4 load balancer: the first NF with control-plane costs.

The LB pairs a :class:`~repro.structures.MaglevTable` ``lb_tbl`` (the
consistent-hash backend selector) with an
:class:`~repro.structures.ExpiringMap` ``conn`` (the flow-affinity
connection table), the composition Google's Maglev uses: the connection
table wins when it has a live, still-active binding; the Maglev table
decides for new flows and for flows whose backend was drained.  It is the
first NF whose contract mixes **per-packet** costs (``conn.t`` chain
walks, constant ``lb_tbl`` lookups) with a **control-plane** cost:
backend add/remove frames repopulate the lookup table, and the
repopulation's fill iterations (``lb_tbl.f``) dominate every other term.

State behind externs:

* ``conn_expire`` / ``conn_put`` / ``conn_get`` — connection table,
  PCVs ``conn.w`` / ``conn.e`` / ``conn.t``;
* ``lb_tbl_lookup`` / ``lb_tbl_active`` — per-packet backend selection,
  constant time, no PCVs;
* ``lb_tbl_add`` / ``lb_tbl_remove`` — control-plane repopulation,
  PCV ``lb_tbl.f``.

Inputs: data frames use the classic Ethernet + IPv4 + L4 layout the NAT
parses (EtherType at 12, source address at 26–29, source port at 34–35);
control frames carry ``cmd`` = :data:`CMD_ADD` / :data:`CMD_REMOVE` and
the backend id in ``arg`` and never touch the packet buffer.

Input classes of the generated contract:

===================  ======================================================
``reconfig``         control frame: backend added or removed, table
                     repopulated (the only class charging ``lb_tbl.f``)
``short``            frame shorter than Ethernet+IPv4+ports: dropped
``non_ip``           EtherType is not IPv4: dropped
``new_flow``         no connection-table entry: backend selected via the
                     Maglev table, affinity installed, forwarded
``existing_flow``    live entry to an active backend: refreshed, forwarded
``backend_drained``  live entry to a drained backend: re-selected via the
                     Maglev table, affinity rebound, forwarded
``no_backends``      selection needed but the table is empty: dropped
===================  ======================================================

Worst-case workload: :func:`repro.nf.workloads.lb_adversarial` pins all
four PCV bounds — colliding flow keys build a maximal connection-table
chain (``conn.t``), a backend-churn phase over backends with *identical
permutations* drives a repopulation to exactly its proven worst case
(``lb_tbl.f``), and a full-revolution time jump expires the whole
connection table in one sweep (``conn.w`` / ``conn.e``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.bolt import Bolt, BoltConfig
from repro.core.contract import PerformanceContract
from repro.core.input_class import InputClass
from repro.core.pcv import PCVRegistry
from repro.nf.replay import replay_env
from repro.nfil.builder import FunctionBuilder
from repro.nfil.program import Module
from repro.nfil.tracer import ExecutionTrace
from repro.nfil.validate import validate_module
from repro.structures import NOT_FOUND, ExpiringMap, MaglevTable, StructureModel
from repro.sym import expr as E
from repro.sym.expr import BV, Const, Sym
from repro.sym.paths import Path
from repro.sym.state import SymbolicMemory

__all__ = [
    "CMD_ADD",
    "CMD_DATA",
    "CMD_REMOVE",
    "CONN_NAME",
    "CTRL_DONE",
    "DROP_NO_BACKENDS",
    "DROP_NON_IP",
    "DROP_SHORT",
    "LB_FUNCTION",
    "MAX_CMD",
    "MIN_LB_FRAME",
    "NOT_FOUND",
    "PKT_BASE",
    "TBL_NAME",
    "build_lb_module",
    "classify_lb_path",
    "generate_lb_contract",
    "lb_registry",
    "lb_replay_env",
    "lb_symbolic_inputs",
    "make_lb_state",
]

#: Entry function of the load balancer.
LB_FUNCTION = "lb_process"

#: Where the packet buffer lives in NF memory.
PKT_BASE = 0x1000
#: Ethernet + minimal IPv4 header + the two L4 port fields.
MIN_LB_FRAME = 38
#: How many leading packet bytes are made symbolic during analysis.
PKT_SYM_BYTES = MIN_LB_FRAME

#: EtherType 0x0800 (IPv4) as read by a little-endian 16-bit load.
ETHERTYPE_IPV4_LE = 0x0008

#: The ``cmd`` scalar: 0 = data frame, 1/2 = control-plane backend churn.
CMD_DATA = 0
CMD_ADD = 1
CMD_REMOVE = 2
#: Valid commands are [0, MAX_CMD).
MAX_CMD = 3

#: Structure instance names (also the PCV namespaces: ``lb_tbl.f``, ``conn.t``).
TBL_NAME = "lb_tbl"
CONN_NAME = "conn"

#: Drop/acknowledge codes returned by the LB.
DROP_SHORT = 0xFFC0
DROP_NON_IP = 0xFFC1
DROP_NO_BACKENDS = 0xFFC2
CTRL_DONE = 0xFFC8


def make_lb_state(
    capacity: int = 64,
    timeout: int = 300,
    *,
    table_size: int = 13,
    max_backends: int = 4,
) -> Tuple[MaglevTable, ExpiringMap]:
    """Build the LB's state: Maglev lookup table and connection table.

    Args:
        capacity: live-flow capacity of the connection table.
        timeout: flow-affinity timeout in ticks.
        table_size: Maglev lookup slots (prime).
        max_backends: backend pool ceiling (fixes the ``lb_tbl.f`` bound).
    """
    tbl = MaglevTable(
        TBL_NAME, table_size=table_size, max_backends=max_backends, value_bound=1 << 16
    )
    conn = ExpiringMap(CONN_NAME, capacity=capacity, timeout=timeout, value_bound=1 << 16)
    return tbl, conn


def lb_registry(
    capacity: int = 64,
    timeout: int = 300,
    *,
    table_size: int = 13,
    max_backends: int = 4,
) -> PCVRegistry:
    """PCVs of the LB contract: both instances' namespaced registries."""
    return StructureModel(
        *make_lb_state(capacity, timeout, table_size=table_size, max_backends=max_backends)
    ).registry()


# --------------------------------------------------------------------------- #
# Stateless NFIL code
# --------------------------------------------------------------------------- #
def build_lb_module() -> Module:
    """Build (and validate) the load balancer NFIL module."""
    module = Module("lb")
    tbl, conn = make_lb_state()
    for structure in (tbl, conn):
        structure.declare(module)

    b = FunctionBuilder(LB_FUNCTION, params=("pkt", "len", "cmd", "arg", "time"))
    b.call(conn.extern_name("expire"), b.param("time"), void=True)
    is_data = b.eq(b.param("cmd"), CMD_DATA)
    b.br(is_data, "datapath", "control")

    # -- control plane: backend churn repopulates the Maglev table ------- #
    b.block("control")
    is_add = b.eq(b.param("cmd"), CMD_ADD)
    b.br(is_add, "ctrl_add", "ctrl_remove")

    b.block("ctrl_add")
    b.call(tbl.extern_name("add"), b.param("arg"), void=True)
    b.ret(CTRL_DONE)

    b.block("ctrl_remove")
    b.call(tbl.extern_name("remove"), b.param("arg"), void=True)
    b.ret(CTRL_DONE)

    # -- data plane ------------------------------------------------------ #
    b.block("datapath")
    short = b.ult(b.param("len"), MIN_LB_FRAME)
    b.br(short, "drop_short", "check_ethertype")

    b.block("drop_short")
    b.ret(DROP_SHORT)

    b.block("check_ethertype")
    pkt = b.param("pkt")
    ethertype = b.load(b.add(pkt, 12), size=2)
    is_ip = b.eq(ethertype, ETHERTYPE_IPV4_LE)
    b.br(is_ip, "parse", "drop_non_ip")

    b.block("drop_non_ip")
    b.ret(DROP_NON_IP)

    b.block("parse")
    s3 = b.load(b.add(pkt, 26), size=1)
    s2 = b.load(b.add(pkt, 27), size=1)
    s1 = b.load(b.add(pkt, 28), size=1)
    s0 = b.load(b.add(pkt, 29), size=1)
    src_ip = b.or_(
        b.or_(b.shl(s3, 24), b.shl(s2, 16)),
        b.or_(b.shl(s1, 8), s0),
        name="src_ip",
    )
    p1 = b.load(b.add(pkt, 34), size=1)
    p0 = b.load(b.add(pkt, 35), size=1)
    src_port = b.or_(b.shl(p1, 8), p0, name="src_port")
    flow = b.or_(b.shl(src_ip, 16), src_port, name="flow")
    cached = b.call(conn.extern_name("get"), flow, name="cached")
    hit = b.ne(cached, NOT_FOUND)
    b.br(hit, "check_alive", "select")

    # Affinity hit: honour it only while the backend still serves traffic.
    b.block("check_alive")
    alive = b.call(tbl.extern_name("active"), cached, name="alive")
    ok = b.ne(alive, 0)
    b.br(ok, "existing", "reselect")

    b.block("existing")
    b.call(conn.extern_name("put"), flow, cached, void=True)
    b.store(b.add(pkt, 0), cached, size=2)  # steer: backend into dst MAC
    b.ret(cached)

    # Affinity to a drained backend: re-select and rebind.
    b.block("reselect")
    fresh = b.call(tbl.extern_name("lookup"), flow, name="fresh")
    refound = b.ne(fresh, NOT_FOUND)
    b.br(refound, "rebind", "drop_no_backends")

    b.block("rebind")
    b.call(conn.extern_name("put"), flow, fresh, void=True)
    b.store(b.add(pkt, 0), fresh, size=2)  # steer: backend into dst MAC
    b.ret(fresh)

    # No affinity: consistent-hash to a backend and install it.
    b.block("select")
    chosen = b.call(tbl.extern_name("lookup"), flow, name="chosen")
    found = b.ne(chosen, NOT_FOUND)
    b.br(found, "bind", "drop_no_backends")

    b.block("bind")
    b.call(conn.extern_name("put"), flow, chosen, void=True)
    b.store(b.add(pkt, 0), chosen, size=2)  # steer: backend into dst MAC
    b.ret(chosen)

    b.block("drop_no_backends")
    b.ret(DROP_NO_BACKENDS)

    module.add_function(b.build())
    return validate_module(module)


# --------------------------------------------------------------------------- #
# Contract generation and concrete replay glue
# --------------------------------------------------------------------------- #
def lb_symbolic_inputs() -> Tuple[List[BV], SymbolicMemory, List[BV]]:
    """Symbolic initial state of one LB invocation.

    The packet bytes are fresh symbols at :data:`PKT_BASE`, the scalars
    are ``len`` / ``cmd`` / ``arg`` / ``time``; the command is assumed
    valid and the backend argument a 16-bit id.
    """
    memory = SymbolicMemory()
    memory.write_symbolic(PKT_BASE, PKT_SYM_BYTES, "pkt")
    cmd = Sym("cmd", 64)
    arg = Sym("arg", 64)
    args: List[BV] = [
        Const(PKT_BASE, 64),
        Sym("len", 64),
        cmd,
        arg,
        Sym("time", 64),
    ]
    constraints = [
        E.ult(cmd, Const(MAX_CMD, 64)),
        E.ult(arg, Const(1 << 16, 64)),
    ]
    return args, memory, constraints


_CLASS_DESCRIPTIONS = {
    "reconfig": "control frame; backend added/removed, table repopulated",
    "short": "frame shorter than Ethernet+IPv4+ports; dropped unparsed",
    "non_ip": "EtherType is not IPv4; frame dropped",
    "new_flow": "no affinity; backend selected via the Maglev table, bound",
    "existing_flow": "live affinity to an active backend; refreshed",
    "backend_drained": "affinity to a drained backend; re-selected, rebound",
    "no_backends": "selection needed but no backends are active; dropped",
}

_DROP_CLASSES = {
    DROP_SHORT: "short",
    DROP_NON_IP: "non_ip",
    DROP_NO_BACKENDS: "no_backends",
    CTRL_DONE: "reconfig",
}


def classify_lb_path(path: Path) -> InputClass:
    """Map one explored LB path to its input class."""
    if isinstance(path.returned, Const) and path.returned.value in _DROP_CLASSES:
        name = _DROP_CLASSES[path.returned.value]
    else:
        called = {call.name for call in path.calls}
        if f"{TBL_NAME}_active" in called and f"{TBL_NAME}_lookup" in called:
            name = "backend_drained"
        elif f"{TBL_NAME}_active" in called:
            name = "existing_flow"
        else:
            name = "new_flow"
    return InputClass(name, description=_CLASS_DESCRIPTIONS[name])


def generate_lb_contract(
    capacity: int = 64,
    timeout: int = 300,
    *,
    table_size: int = 13,
    max_backends: int = 4,
    config: Optional[BoltConfig] = None,
) -> PerformanceContract:
    """Run BOLT end-to-end on the load balancer and return its contract."""
    module = build_lb_module()
    if config is None:
        config = BoltConfig(classifier=classify_lb_path)
    elif config.classifier is None:
        config.classifier = classify_lb_path
    model = StructureModel(
        *make_lb_state(capacity, timeout, table_size=table_size, max_backends=max_backends)
    )
    bolt = Bolt(
        module,
        LB_FUNCTION,
        model=model,
        registry=model.registry(),
        config=config,
    )
    args, memory, constraints = lb_symbolic_inputs()
    return bolt.generate(args, memory=memory, constraints=constraints)


def lb_replay_env(
    packet: bytes,
    length: int,
    cmd: int,
    arg: int,
    time: int,
    trace: ExecutionTrace,
) -> Dict[str, int]:
    """Build the symbol assignment a concrete LB execution matches."""
    return replay_env(packet, PKT_SYM_BYTES, trace, len=length, cmd=cmd, arg=arg, time=time)
