"""The MAC learning bridge (the paper's first evaluated NF, Table 4).

This module is the end-to-end proof of the BOLT pipeline.  It provides all
four artefacts the paper's toolchain needs for one NF:

* :func:`build_bridge_module` — the *stateless* bridge code, written in
  NFIL: parse the Ethernet MACs, learn the source, look up the destination,
  and forward / flood / drop.  All state lives behind three externs
  (``bridge_expire``, ``bridge_map_put``, ``bridge_map_get``), the
  Vigor-style split the paper relies on.
* :class:`BridgeSymbolicModel` — the symbolic model of the MAC table used
  during contract generation: extern outputs become fresh symbols and every
  call charges a PCV-parameterised cost (``e`` expired entries, ``t`` slots
  probed per table operation).
* :class:`BridgeTable` — the instrumented *concrete* MAC table (linear
  probing, lazy expiry) used during measurement; it charges exactly the
  cost formulas the symbolic model promises, with the PCV values it
  actually observed.
* :func:`generate_bridge_contract` / :func:`bridge_replay_env` — one-call
  contract generation, and the glue for matching a concrete execution back
  to its symbolic path.

Input classes of the generated contract:

==========  ==========================================================
``short``   frame shorter than an Ethernet header: dropped unparsed
``miss``    destination MAC unknown: flooded
``hairpin`` destination learned on the ingress port: dropped
``hit``     destination known on another port: forwarded
==========  ==========================================================
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.bolt import Bolt, BoltConfig
from repro.core.contract import Metric, PerformanceContract
from repro.core.input_class import InputClass
from repro.core.pcv import PCV, PCVRegistry
from repro.core.perfexpr import PerfExpr
from repro.nfil.builder import FunctionBuilder
from repro.nfil.interpreter import ExternResult, ExternHandler, Memory
from repro.nfil.program import ExternDecl, Module
from repro.nfil.tracer import ExecutionTrace
from repro.nfil.validate import validate_module
from repro.sym import expr as E
from repro.sym.engine import ModelOutcome, SymbolicModel
from repro.sym.expr import BV, Const, Sym
from repro.sym.paths import Path
from repro.sym.state import SymbolicMemory, SymbolicState

__all__ = [
    "BRIDGE_FUNCTION",
    "BridgeSymbolicModel",
    "BridgeTable",
    "DROP",
    "FLOOD",
    "MAX_PORTS",
    "NOT_FOUND",
    "PKT_BASE",
    "bridge_registry",
    "bridge_replay_env",
    "bridge_symbolic_inputs",
    "build_bridge_module",
    "classify_bridge_path",
    "generate_bridge_contract",
]

#: Entry function of the bridge.
BRIDGE_FUNCTION = "bridge_process"

#: Where the packet buffer lives in NF memory.
PKT_BASE = 0x1000
#: How many leading packet bytes are made symbolic during analysis.
PKT_SYM_BYTES = 16
#: Minimum parseable frame: two MACs + EtherType.
MIN_FRAME = 14

#: Sentinel returned by ``bridge_map_get`` for unknown MACs.
NOT_FOUND = (1 << 64) - 1
#: Return values of the bridge: flood to all ports / drop the frame.
FLOOD = 0xFFFF
DROP = 0xFFFE
#: Valid switch ports are [0, MAX_PORTS).
MAX_PORTS = 64

# Per-call cost formulas of the MAC table, shared verbatim by the symbolic
# model (which promises them) and the concrete table (which charges them).
# (base_instructions, per_pcv_instructions, base_mem, per_pcv_mem)
_EXPIRE_COST = (4, 7, 2, 3)  # PCV: e
_GET_COST = (5, 6, 1, 2)  # PCV: t
_PUT_COST = (8, 6, 2, 2)  # PCV: t


# --------------------------------------------------------------------------- #
# Stateless NFIL code
# --------------------------------------------------------------------------- #
def build_bridge_module() -> Module:
    """Build (and validate) the bridge NFIL module."""
    module = Module("bridge")
    module.declare_extern(
        "bridge_expire", 1, returns_value=False, structure="bridge_map", method="expire"
    )
    module.declare_extern(
        "bridge_map_put", 2, returns_value=False, structure="bridge_map", method="put"
    )
    module.declare_extern(
        "bridge_map_get", 1, returns_value=True, structure="bridge_map", method="get"
    )

    b = FunctionBuilder(BRIDGE_FUNCTION, params=("pkt", "len", "in_port", "time"))
    b.call("bridge_expire", b.param("time"), void=True)
    short = b.ult(b.param("len"), MIN_FRAME)
    b.br(short, "drop_short", "lookup")

    b.block("drop_short")
    b.ret(DROP)

    b.block("lookup")
    pkt = b.param("pkt")
    # 48-bit MACs assembled from a 32-bit and a 16-bit little-endian load.
    d_lo = b.load(pkt, size=4)
    d_hi = b.load(b.add(pkt, 4), size=2)
    dmac = b.or_(d_lo, b.shl(d_hi, 32), name="dmac")
    s_lo = b.load(b.add(pkt, 6), size=4)
    s_hi = b.load(b.add(pkt, 10), size=2)
    smac = b.or_(s_lo, b.shl(s_hi, 32), name="smac")
    b.call("bridge_map_put", smac, b.param("in_port"), void=True)
    out = b.call("bridge_map_get", dmac, name="out")
    known = b.ne(out, NOT_FOUND)
    b.br(known, "unicast", "flood")

    b.block("flood")
    b.ret(FLOOD)

    b.block("unicast")
    hairpin = b.eq(out, b.param("in_port"))
    b.br(hairpin, "drop_hairpin", "forward")

    b.block("drop_hairpin")
    b.ret(DROP)

    b.block("forward")
    b.ret(out)

    module.add_function(b.build())
    return validate_module(module)


# --------------------------------------------------------------------------- #
# PCVs and the symbolic model
# --------------------------------------------------------------------------- #
def bridge_registry(capacity: int) -> PCVRegistry:
    """PCVs of the bridge contract, bounded by the MAC-table capacity."""
    return PCVRegistry(
        [
            PCV(
                "e",
                "MAC entries expired while processing this packet",
                structure="bridge_map",
                max_value=capacity,
                unit="entries",
            ),
            PCV(
                "t",
                "slots probed in one MAC-table operation",
                structure="bridge_map",
                max_value=capacity,
                unit="slots",
            ),
        ]
    )


def _linear_cost(base_instr: int, per_instr: int, base_mem: int, per_mem: int, pcv: str):
    return {
        Metric.INSTRUCTIONS: PerfExpr.from_terms(**{pcv: per_instr, "const": base_instr}),
        Metric.MEMORY_ACCESSES: PerfExpr.from_terms(**{pcv: per_mem, "const": base_mem}),
    }


class BridgeSymbolicModel(SymbolicModel):
    """Symbolic model of the bridge's MAC table.

    ``bridge_map_get`` havocs its output (constrained to be either the
    NOT_FOUND sentinel or a valid port) and charges ``t``-parameterised
    cost; the void externs only charge cost.  The promised cost formulas
    are byte-for-byte the ones :class:`BridgeTable` charges concretely.
    """

    def apply(
        self,
        decl: ExternDecl,
        args: Tuple[BV, ...],
        state: SymbolicState,
        index: int,
    ) -> ModelOutcome:
        if decl.name == "bridge_expire":
            return ModelOutcome(
                cost=_linear_cost(*_EXPIRE_COST, "e"), pcvs=("e",)
            )
        if decl.name == "bridge_map_put":
            return ModelOutcome(cost=_linear_cost(*_PUT_COST, "t"), pcvs=("t",))
        if decl.name == "bridge_map_get":
            result = self.fresh(decl, index)
            valid = E.bool_or(
                E.eq(result, Const(NOT_FOUND, 64)),
                E.ult(result, Const(MAX_PORTS, 64)),
            )
            return ModelOutcome(
                value=result,
                constraints=(valid,),
                cost=_linear_cost(*_GET_COST, "t"),
                pcvs=("t",),
            )
        return super().apply(decl, args, state, index)


# --------------------------------------------------------------------------- #
# Instrumented concrete MAC table
# --------------------------------------------------------------------------- #
class BridgeTable(ExternHandler):
    """Concrete MAC table: linear probing, expiry scan, instrumented cost.

    Every handler reports the exact cost formula the symbolic model
    promised, instantiated with the PCV values the call actually incurred —
    that is what the contract cross-check in the test suite leans on.
    """

    def __init__(self, capacity: int = 64, timeout: int = 300) -> None:
        super().__init__()
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.timeout = timeout
        self.now = 0
        # slot: None | (mac, port, last_seen)
        self.slots: List[Optional[Tuple[int, int, int]]] = [None] * capacity
        self.register("bridge_expire", self._expire)
        self.register("bridge_map_put", self._put)
        self.register("bridge_map_get", self._get)

    # -- helpers -------------------------------------------------------- #
    def _hash(self, mac: int) -> int:
        return ((mac * 2654435761) ^ (mac >> 24)) % self.capacity

    def occupancy(self) -> int:
        """Number of live entries (for tests and diagnostics)."""
        return sum(1 for slot in self.slots if slot is not None)

    # -- extern handlers ------------------------------------------------ #
    def _expire(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (now,) = args
        self.now = now
        expired = 0
        for i, slot in enumerate(self.slots):
            if slot is not None and now - slot[2] > self.timeout:
                self.slots[i] = None
                expired += 1
        base_i, per_i, base_m, per_m = _EXPIRE_COST
        return ExternResult(
            None,
            instructions=base_i + per_i * expired,
            memory_accesses=base_m + per_m * expired,
            pcvs={"e": expired},
        )

    def _get(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (mac,) = args
        start = self._hash(mac)
        probes = 0
        result = NOT_FOUND
        for k in range(self.capacity):
            probes += 1
            slot = self.slots[(start + k) % self.capacity]
            if slot is None:
                break
            if slot[0] == mac:
                result = slot[1]
                break
        base_i, per_i, base_m, per_m = _GET_COST
        return ExternResult(
            result,
            instructions=base_i + per_i * probes,
            memory_accesses=base_m + per_m * probes,
            pcvs={"t": probes},
        )

    def _put(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        mac, port = args
        start = self._hash(mac)
        probes = 0
        for k in range(self.capacity):
            probes += 1
            index = (start + k) % self.capacity
            slot = self.slots[index]
            if slot is None or slot[0] == mac:
                self.slots[index] = (mac, port, self.now)
                break
        # A full table with no matching entry drops the learning update.
        base_i, per_i, base_m, per_m = _PUT_COST
        return ExternResult(
            None,
            instructions=base_i + per_i * probes,
            memory_accesses=base_m + per_m * probes,
            pcvs={"t": probes},
        )


# --------------------------------------------------------------------------- #
# Contract generation and concrete replay glue
# --------------------------------------------------------------------------- #
def bridge_symbolic_inputs() -> Tuple[List[BV], SymbolicMemory, List[BV]]:
    """Symbolic initial state of one bridge invocation.

    Returns ``(args, memory, constraints)``: the packet buffer bytes are
    fresh symbols ``pkt[i]`` at :data:`PKT_BASE`, the scalar inputs are the
    symbols ``len`` / ``in_port`` / ``time``, and the ingress port is
    assumed valid.
    """
    memory = SymbolicMemory()
    memory.write_symbolic(PKT_BASE, PKT_SYM_BYTES, "pkt")
    in_port = Sym("in_port", 64)
    args: List[BV] = [
        Const(PKT_BASE, 64),
        Sym("len", 64),
        in_port,
        Sym("time", 64),
    ]
    constraints = [E.ult(in_port, Const(MAX_PORTS, 64))]
    return args, memory, constraints


_CLASS_DESCRIPTIONS = {
    "short": "frame shorter than an Ethernet header; dropped unparsed",
    "miss": "destination MAC unknown; frame flooded",
    "hairpin": "destination learned on the ingress port; frame dropped",
    "hit": "destination known on another port; frame forwarded",
}


def classify_bridge_path(path: Path) -> InputClass:
    """Map one explored bridge path to its input class."""
    if len(path.calls) == 1:  # only the expiry call ran: unparseable frame
        name = "short"
    elif isinstance(path.returned, Const) and path.returned.value == FLOOD:
        name = "miss"
    elif isinstance(path.returned, Const) and path.returned.value == DROP:
        name = "hairpin"
    else:
        name = "hit"
    return InputClass(name, description=_CLASS_DESCRIPTIONS[name])


def generate_bridge_contract(
    capacity: int = 64, *, config: Optional[BoltConfig] = None
) -> PerformanceContract:
    """Run BOLT end-to-end on the bridge and return its contract."""
    module = build_bridge_module()
    if config is None:
        config = BoltConfig(classifier=classify_bridge_path)
    elif config.classifier is None:
        config.classifier = classify_bridge_path
    bolt = Bolt(
        module,
        BRIDGE_FUNCTION,
        model=BridgeSymbolicModel(),
        registry=bridge_registry(capacity),
        config=config,
    )
    args, memory, constraints = bridge_symbolic_inputs()
    return bolt.generate(args, memory=memory, constraints=constraints)


def bridge_replay_env(
    packet: bytes,
    length: int,
    in_port: int,
    time: int,
    trace: ExecutionTrace,
) -> Dict[str, int]:
    """Build the symbol assignment a concrete execution corresponds to.

    Combines the concrete inputs with the extern return values recorded in
    the trace (named ``"{extern}#{index}"``, matching the symbolic model's
    output naming), so the execution can be matched to the symbolic path —
    and hence contract entry — it followed.
    """
    env: Dict[str, int] = {
        f"pkt[{i}]": byte for i, byte in enumerate(packet[:PKT_SYM_BYTES])
    }
    env["len"] = length
    env["in_port"] = in_port
    env["time"] = time
    for call in trace.extern_calls:
        if call.result is not None:
            env[f"{call.name}#{call.index}"] = call.result
    return env
