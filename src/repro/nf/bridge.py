"""The MAC learning bridge (the paper's first evaluated NF, Table 4).

This module is the end-to-end proof of the BOLT pipeline.  The stateless
bridge code is written in NFIL — parse the Ethernet MACs, learn the source,
look up the destination, and forward / flood / drop — with all state behind
the three methods of one :class:`repro.structures.ExpiringMap` instance
(``bridge_map_expire`` / ``bridge_map_put`` / ``bridge_map_get``), the
Vigor-style split the paper relies on.

The stateful side comes entirely from :mod:`repro.structures`: the
expiring map supplies the instrumented concrete MAC table
(:func:`make_bridge_table`), the symbolic model
(:class:`~repro.structures.StructureModel`) and the PCV registry, so this
module contains *no* bespoke table implementation.

Input classes of the generated contract:

==========  ==========================================================
``short``   frame shorter than an Ethernet header: dropped unparsed
``miss``    destination MAC unknown: flooded
``hairpin`` destination learned on the ingress port: dropped
``hit``     destination known on another port: forwarded
==========  ==========================================================

PCVs (instance-qualified under the table's name, ``bridge_map``):
``bridge_map.t`` chain links inspected (bound: table capacity),
``bridge_map.w`` wheel slots advanced and ``bridge_map.e`` entries
expired by one sweep (bounds: ``wheel_slots`` / capacity).

Worst-case workload: :func:`repro.nf.workloads.bridge_adversarial` —
``capacity`` colliding MACs build one maximal chain (pins
``bridge_map.t``), then a full-revolution time jump expires everything in
one sweep (pins ``bridge_map.w`` and ``bridge_map.e``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.bolt import Bolt, BoltConfig
from repro.core.contract import PerformanceContract
from repro.core.input_class import InputClass
from repro.core.pcv import PCVRegistry
from repro.nfil.builder import FunctionBuilder
from repro.nfil.program import Module
from repro.nf.replay import replay_env
from repro.nfil.tracer import ExecutionTrace
from repro.nfil.validate import validate_module
from repro.structures import NOT_FOUND, ExpiringMap, StructureModel
from repro.sym import expr as E
from repro.sym.expr import BV, Const, Sym
from repro.sym.paths import Path
from repro.sym.state import SymbolicMemory

__all__ = [
    "BRIDGE_FUNCTION",
    "DROP",
    "FLOOD",
    "MAX_PORTS",
    "NOT_FOUND",
    "PKT_BASE",
    "bridge_registry",
    "bridge_replay_env",
    "bridge_symbolic_inputs",
    "build_bridge_module",
    "classify_bridge_path",
    "generate_bridge_contract",
    "make_bridge_table",
]

#: Entry function of the bridge.
BRIDGE_FUNCTION = "bridge_process"

#: Where the packet buffer lives in NF memory.
PKT_BASE = 0x1000
#: How many leading packet bytes are made symbolic during analysis.
PKT_SYM_BYTES = 16
#: Minimum parseable frame: two MACs + EtherType.
MIN_FRAME = 14

#: Return values of the bridge: flood to all ports / drop the frame.
FLOOD = 0xFFFF
DROP = 0xFFFE
#: Valid switch ports are [0, MAX_PORTS).
MAX_PORTS = 64


def make_bridge_table(capacity: int = 64, timeout: int = 300) -> ExpiringMap:
    """Build the bridge's MAC table: an expiring map storing ports."""
    return ExpiringMap(
        "bridge_map",
        capacity=capacity,
        timeout=timeout,
        value_bound=MAX_PORTS,
    )


def bridge_registry(capacity: int = 64, timeout: int = 300) -> PCVRegistry:
    """PCVs of the bridge contract (from the MAC table's structure contract)."""
    return make_bridge_table(capacity, timeout).registry()


# --------------------------------------------------------------------------- #
# Stateless NFIL code
# --------------------------------------------------------------------------- #
def build_bridge_module() -> Module:
    """Build (and validate) the bridge NFIL module."""
    module = Module("bridge")
    table = make_bridge_table()
    table.declare(module)

    b = FunctionBuilder(BRIDGE_FUNCTION, params=("pkt", "len", "in_port", "time"))
    b.call(table.extern_name("expire"), b.param("time"), void=True)
    short = b.ult(b.param("len"), MIN_FRAME)
    b.br(short, "drop_short", "lookup")

    b.block("drop_short")
    b.ret(DROP)

    b.block("lookup")
    pkt = b.param("pkt")
    # 48-bit MACs assembled from a 32-bit and a 16-bit little-endian load.
    d_lo = b.load(pkt, size=4)
    d_hi = b.load(b.add(pkt, 4), size=2)
    dmac = b.or_(d_lo, b.shl(d_hi, 32), name="dmac")
    s_lo = b.load(b.add(pkt, 6), size=4)
    s_hi = b.load(b.add(pkt, 10), size=2)
    smac = b.or_(s_lo, b.shl(s_hi, 32), name="smac")
    b.call(table.extern_name("put"), smac, b.param("in_port"), void=True)
    out = b.call(table.extern_name("get"), dmac, name="out")
    known = b.ne(out, NOT_FOUND)
    b.br(known, "unicast", "flood")

    b.block("flood")
    b.ret(FLOOD)

    b.block("unicast")
    hairpin = b.eq(out, b.param("in_port"))
    b.br(hairpin, "drop_hairpin", "forward")

    b.block("drop_hairpin")
    b.ret(DROP)

    b.block("forward")
    b.ret(out)

    module.add_function(b.build())
    return validate_module(module)


# --------------------------------------------------------------------------- #
# Contract generation and concrete replay glue
# --------------------------------------------------------------------------- #
def bridge_symbolic_inputs() -> Tuple[List[BV], SymbolicMemory, List[BV]]:
    """Symbolic initial state of one bridge invocation.

    Returns ``(args, memory, constraints)``: the packet buffer bytes are
    fresh symbols ``pkt[i]`` at :data:`PKT_BASE`, the scalar inputs are the
    symbols ``len`` / ``in_port`` / ``time``, and the ingress port is
    assumed valid.
    """
    memory = SymbolicMemory()
    memory.write_symbolic(PKT_BASE, PKT_SYM_BYTES, "pkt")
    in_port = Sym("in_port", 64)
    args: List[BV] = [
        Const(PKT_BASE, 64),
        Sym("len", 64),
        in_port,
        Sym("time", 64),
    ]
    constraints = [E.ult(in_port, Const(MAX_PORTS, 64))]
    return args, memory, constraints


_CLASS_DESCRIPTIONS = {
    "short": "frame shorter than an Ethernet header; dropped unparsed",
    "miss": "destination MAC unknown; frame flooded",
    "hairpin": "destination learned on the ingress port; frame dropped",
    "hit": "destination known on another port; frame forwarded",
}


def classify_bridge_path(path: Path) -> InputClass:
    """Map one explored bridge path to its input class."""
    if len(path.calls) == 1:  # only the expiry call ran: unparseable frame
        name = "short"
    elif isinstance(path.returned, Const) and path.returned.value == FLOOD:
        name = "miss"
    elif isinstance(path.returned, Const) and path.returned.value == DROP:
        name = "hairpin"
    else:
        name = "hit"
    return InputClass(name, description=_CLASS_DESCRIPTIONS[name])


def generate_bridge_contract(
    capacity: int = 64,
    timeout: int = 300,
    *,
    config: Optional[BoltConfig] = None,
) -> PerformanceContract:
    """Run BOLT end-to-end on the bridge and return its contract."""
    module = build_bridge_module()
    if config is None:
        config = BoltConfig(classifier=classify_bridge_path)
    elif config.classifier is None:
        config.classifier = classify_bridge_path
    table = make_bridge_table(capacity, timeout)
    bolt = Bolt(
        module,
        BRIDGE_FUNCTION,
        model=StructureModel(table),
        registry=table.registry(),
        config=config,
    )
    args, memory, constraints = bridge_symbolic_inputs()
    return bolt.generate(args, memory=memory, constraints=constraints)


def bridge_replay_env(
    packet: bytes,
    length: int,
    in_port: int,
    time: int,
    trace: ExecutionTrace,
) -> Dict[str, int]:
    """Build the symbol assignment a concrete execution corresponds to.

    Combines the concrete inputs with the extern return values recorded in
    the trace (named ``"{extern}#{index}"``, matching the symbolic model's
    output naming), so the execution can be matched to the symbolic path —
    and hence contract entry — it followed.
    """
    return replay_env(packet, PKT_SYM_BYTES, trace, len=length, in_port=in_port, time=time)
