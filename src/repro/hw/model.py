"""Cycle models: mapping contract metrics to hardware cycle predictions.

BOLT's contracts bound the two quantities binary instrumentation can count
exactly — dynamic instructions and memory accesses.  To talk about *time*
(the paper's §5 evaluation compares predicted against measured cycles on an
x86 testbed), those counts must pass through a hardware model.  This module
provides the two models the reproduction's evaluation loop uses:

* :class:`ConservativeModel` — the worst-case bound: every instruction
  retires alone (CPI 1) and every memory access misses all caches and pays
  the full DRAM latency.  No real execution on the modelled hardware can
  exceed it.
* :class:`RealisticModel` — the simulated-testbed model: a superscalar
  issue width amortises instructions, stateless accesses (packet buffer,
  locals) hit the L1, and each stateful structure gets a per-structure
  cache-hit assumption that blends L1 and DRAM latency (a hash chain walk
  has worse locality than an LPM trie's hot top levels).
* :class:`SimulatedModel` — the cache-simulator model: no hit-rate
  assumptions at all.  It replays the tracer's per-packet address stream
  through a set-associative L1/LLC hierarchy
  (:mod:`repro.hw.cachesim`) and prices every access at the latency of
  the level that actually served it, so hit rates are *observed* per
  packet.  Its prediction side still prices every access at DRAM, which
  keeps measured ≤ predicted sound and gives per-packet headroom — the
  raw material of the p50/p95/p99 tail columns.

Both models expose the same three-sided API:

* **predict** — :meth:`CycleModel.cycles_expr` turns one contract entry's
  instruction/memory expressions into a cycle :class:`PerfExpr` over the
  same PCVs; :meth:`CycleModel.derive` does it for a whole contract,
  producing a new :class:`PerformanceContract` with a ``cycles`` column
  that renders and distils like any other.
* **measure** — :meth:`CycleModel.measure` prices one traced concrete
  execution (an :class:`~repro.nfil.tracer.ExecutionTrace`) under the same
  assumptions, attributing each extern call's accesses to its structure.
* **bound** — :meth:`CycleModel.envelope` evaluates the derived cycle
  expressions at the PCV upper bounds: the worst-case cycle envelope.

Soundness of measured ≤ predicted: every per-unit price is non-negative
and *predict* prices each memory term at the **maximum** latency of any
party that could have produced it (the constant term at the max over the
stateless price and every structure's price, PCV terms at their owning
structure's price), while *measure* prices each access at its actual
producer's latency.  Since the contract's counts bound the traced counts
per attribution class (the PR 1/2 replay invariant), the priced sums
preserve the inequality packet by packet — which is exactly what
``python -m repro.cli bench`` asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Mapping, Optional, Sequence, Union

from repro.core.contract import ContractEntry, Metric, PerformanceContract
from repro.core.perfexpr import Monomial, Number, PerfExpr
from repro.hw.cachesim import (
    DEFAULT_L1_GEOMETRY,
    DEFAULT_LLC_GEOMETRY,
    CacheGeometry,
    CacheHierarchy,
    geometry_to_json,
)
from repro.nfil.tracer import ExecutionTrace
from repro.structures.base import Structure

__all__ = [
    "ConservativeModel",
    "CycleModel",
    "DEFAULT_HIT_RATES",
    "HwSpec",
    "RealisticModel",
    "SimulatedModel",
    "model_to_json",
    "spec_to_json",
]


def _as_fraction(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    return Fraction(value).limit_denominator(10**6)


@dataclass(frozen=True)
class HwSpec:
    """The latency parameters of the modelled machine.

    Defaults approximate a commodity server core: a 2-wide sustainable
    issue width, a 4-cycle L1 hit, a 30-cycle LLC hit and a 100-cycle
    DRAM round trip.

    Attributes:
        name: human-readable machine name (lands in bench reports).
        issue_width: instructions the realistic model retires per cycle.
        l1_latency: cycles per L1-hit memory access.
        dram_latency: cycles per full-miss memory access.
        llc_latency: cycles per access served by the last-level cache
            (only the simulated model distinguishes this level).
    """

    name: str = "commodity-x86"
    issue_width: int = 2
    l1_latency: int = 4
    dram_latency: int = 100
    llc_latency: int = 30

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue_width must be at least 1")
        if not 0 < self.l1_latency <= self.llc_latency <= self.dram_latency:
            raise ValueError(
                "latencies must satisfy 0 < l1_latency <= llc_latency <= dram_latency"
            )


#: Default cache-hit assumptions per structure *kind*, used by the
#: realistic model when no per-instance override is given.  A hash chain
#: walk touches scattered links (cold-ish); an LPM trie's top levels are
#: shared by every lookup and stay resident; a port allocator's free
#: list, a Maglev table's lookup array and a count-min sketch's counter
#: rows are each one small, hot array.
DEFAULT_HIT_RATES: Dict[str, Fraction] = {
    "chaining_hash_map": Fraction(9, 10),
    "expiring_map": Fraction(9, 10),
    "lpm_trie": Fraction(19, 20),
    "port_allocator": Fraction(19, 20),
    "maglev_table": Fraction(19, 20),
    "count_min_sketch": Fraction(19, 20),
}


class CycleModel:
    """Base class of cycle models; subclasses fix the pricing policy.

    A pricing policy is three per-unit prices, all in cycles:

    * :meth:`instruction_cycles` — per retired dynamic instruction,
    * :meth:`stateless_access_cycles` — per memory access of the stateless
      NFIL code,
    * :meth:`structure_access_cycles` — per memory access performed inside
      a given stateful structure (``None`` means "unknown producer" and
      must be priced at the worst latency).
    """

    #: Short model name used in bench reports and derived contract names.
    name: str = "cycle_model"

    #: True when :meth:`measure` needs the tracer's per-access address
    #: stream (``ExecutionTrace.accesses``), not just the counts.  The
    #: replayer enables address recording iff any active model sets this.
    requires_access_stream: bool = False

    def __init__(self, spec: Optional[HwSpec] = None) -> None:
        self.spec = spec if spec is not None else HwSpec()

    # -- pricing policy (overridden by subclasses) ----------------------- #
    def instruction_cycles(self) -> Fraction:
        """Cycles charged per dynamic instruction."""
        raise NotImplementedError

    def stateless_access_cycles(self) -> Fraction:
        """Cycles charged per stateless memory access."""
        raise NotImplementedError

    def structure_access_cycles(self, structure: Optional[Structure]) -> Fraction:
        """Cycles charged per memory access inside ``structure``."""
        raise NotImplementedError

    # -- prediction side ------------------------------------------------- #
    def _monomial_access_cycles(
        self, monomial: Monomial, structures: Sequence[Structure]
    ) -> Fraction:
        """Price one memory-expression monomial.

        The constant term may mix stateless accesses with the constant
        base cost of any structure call, so it is priced at the maximum
        over all candidate producers.  A PCV monomial is produced by the
        structure(s) owning the PCV; a PCV owned by no known structure is
        priced at the unknown-producer worst case.
        """
        if not monomial:
            prices = [self.stateless_access_cycles()]
            prices.extend(self.structure_access_cycles(s) for s in structures)
            return max(prices)
        owners = [s for s in structures if any(name in s.registry() for name in monomial)]
        if not owners:
            return self.structure_access_cycles(None)
        return max(self.structure_access_cycles(s) for s in owners)

    def cycles_expr(
        self, entry: ContractEntry, *, structures: Sequence[Structure] = ()
    ) -> PerfExpr:
        """Derive one entry's cycle expression over its PCVs."""
        expr = entry.expr(Metric.INSTRUCTIONS).scaled(self.instruction_cycles())
        for monomial, coeff in entry.expr(Metric.MEMORY_ACCESSES).terms.items():
            price = self._monomial_access_cycles(monomial, structures)
            expr += PerfExpr({monomial: coeff * price})
        return expr

    def predict(
        self,
        entry: ContractEntry,
        bindings: Mapping[str, Number],
        *,
        structures: Sequence[Structure] = (),
    ) -> Fraction:
        """Predicted cycles of one entry at concrete PCV bindings."""
        return self.cycles_expr(entry, structures=structures).evaluate(bindings)

    def derive(
        self, contract: PerformanceContract, *, structures: Sequence[Structure] = ()
    ) -> PerformanceContract:
        """Return ``contract`` extended with a derived ``cycles`` column.

        The derived contract keeps the original entries' instruction and
        memory expressions (and their symbolic paths), so it classifies,
        renders and distils exactly like the input contract.
        """
        derived = PerformanceContract(
            f"{contract.nf_name}@{self.name}", registry=contract.registry
        )
        for entry in contract.entries:
            exprs = dict(entry.exprs)
            exprs[Metric.CYCLES] = self.cycles_expr(entry, structures=structures)
            derived.add_entry(
                ContractEntry(input_class=entry.input_class, exprs=exprs, paths=entry.paths)
            )
        return derived

    def envelope(
        self,
        contract: PerformanceContract,
        *,
        structures: Sequence[Structure] = (),
        bounds: Optional[Mapping[str, Number]] = None,
    ) -> Fraction:
        """Worst-case cycle bound over all entries at the PCV upper bounds."""
        if bounds is None:
            bounds = contract.registry.default_bounds()
        worst = Fraction(0)
        for entry in contract.entries:
            worst = max(worst, self.cycles_expr(entry, structures=structures).upper_bound(bounds))
        return worst

    # -- measurement side ------------------------------------------------ #
    @staticmethod
    def call_owners(structures: Sequence[Structure]) -> Dict[str, Structure]:
        """Map every extern name to the structure instance serving it.

        Resolution is by exact extern name (each operation's
        ``extern_name``), never by name prefix — with instances named,
        say, ``fib`` and ``fib_cache``, a prefix match would silently
        misattribute ``fib_cache_lookup`` accesses to ``fib``.
        """
        owners: Dict[str, Structure] = {}
        for structure in structures:
            for op in structure.ops():
                owners[structure.extern_name(op.method)] = structure
        return owners

    def measure(
        self, trace: ExecutionTrace, *, structures: Sequence[Structure] = ()
    ) -> Fraction:
        """Price one traced concrete execution under this model.

        Every dynamic instruction (stateless and extern) pays
        :meth:`instruction_cycles`; stateless accesses pay the stateless
        price; each extern call's accesses pay its owning structure's
        price (worst-case price when the owner is unknown).
        """
        owners = self.call_owners(structures)
        cycles = Fraction(trace.total_instructions()) * self.instruction_cycles()
        cycles += Fraction(trace.memory_accesses) * self.stateless_access_cycles()
        for call in trace.extern_calls:
            owner = owners.get(call.name)
            cycles += Fraction(call.memory_accesses) * self.structure_access_cycles(owner)
        return cycles

    def price_denominator(self, structures: Sequence[Structure] = ()) -> int:
        """LCM of the denominators of every per-unit price this model uses.

        Any multiple of this value is a valid ``scale`` for
        :meth:`compile_measure`.
        """
        value = math.lcm(
            self.instruction_cycles().denominator,
            self.stateless_access_cycles().denominator,
            self.structure_access_cycles(None).denominator,
        )
        for structure in structures:
            value = math.lcm(value, self.structure_access_cycles(structure).denominator)
        return value

    def compile_measure(
        self, structures: Sequence[Structure] = (), *, scale: int = 1
    ) -> Callable[[ExecutionTrace], int]:
        """Compile :meth:`measure` into ``f(trace) -> cycles * scale`` (int).

        Per-unit prices are resolved and scaled to exact integers once;
        the returned closure prices a trace with plain integer arithmetic,
        which is what lets the replayer check measured ≤ predicted per
        packet without any ``Fraction`` work in the hot loop.  ``scale``
        must be a multiple of :meth:`price_denominator` (``ValueError``
        otherwise).
        """

        def price(value: Fraction) -> int:
            scaled = value * scale
            if scaled.denominator != 1:
                raise ValueError(
                    f"scale {scale} does not clear price {value} (need a "
                    f"multiple of {self.price_denominator(structures)})"
                )
            return scaled.numerator

        instruction = price(self.instruction_cycles())
        stateless = price(self.stateless_access_cycles())
        unknown = price(self.structure_access_cycles(None))
        owners = self.call_owners(structures)
        by_extern = {
            name: price(self.structure_access_cycles(structure))
            for name, structure in owners.items()
        }

        def measure(trace: ExecutionTrace, _get=by_extern.get) -> int:
            cycles = (
                trace.total_instructions() * instruction
                + trace.memory_accesses * stateless
            )
            for call in trace.extern_calls:
                cycles += call.memory_accesses * _get(call.name, unknown)
            return cycles

        return measure


class ConservativeModel(CycleModel):
    """Worst-case pricing: CPI 1, every memory access a full DRAM miss.

    Nothing on the modelled machine can run slower, so the derived cycle
    column is a hard bound whatever the cache behaviour turns out to be.
    """

    name = "conservative"

    def instruction_cycles(self) -> Fraction:
        return Fraction(1)

    def stateless_access_cycles(self) -> Fraction:
        return Fraction(self.spec.dram_latency)

    def structure_access_cycles(self, structure: Optional[Structure]) -> Fraction:
        return Fraction(self.spec.dram_latency)


class RealisticModel(CycleModel):
    """Simulated-testbed pricing with per-structure cache-hit assumptions.

    Instructions amortise over the issue width; stateless accesses (packet
    buffer, locals) hit the L1; an access inside structure *s* pays the
    blend ``hit(s)·l1 + (1 − hit(s))·dram``.  Hit rates resolve per
    instance name first, then per structure kind; a structure of a kind
    with no declared rate is a hard error (``KeyError``) — silently
    pricing a new structure as all-DRAM hid real modelling gaps, and the
    fix is one line: declare a rate, or use :class:`SimulatedModel`,
    which observes locality instead of assuming it.

    Args:
        spec: machine parameters (defaults to :class:`HwSpec`).
        hit_rates: overrides/extensions of :data:`DEFAULT_HIT_RATES`,
            keyed by structure instance name or kind; values in [0, 1].
    """

    name = "realistic"

    def __init__(
        self,
        spec: Optional[HwSpec] = None,
        *,
        hit_rates: Optional[Mapping[str, Union[float, Fraction]]] = None,
    ) -> None:
        super().__init__(spec)
        rates: Dict[str, Fraction] = dict(DEFAULT_HIT_RATES)
        for key, rate in (hit_rates or {}).items():
            rates[key] = _as_fraction(rate)
        for key, rate in rates.items():
            if not 0 <= rate <= 1:
                raise ValueError(f"hit rate for {key!r} must be in [0, 1], got {rate}")
        self.hit_rates = rates

    def hit_rate(self, structure: Optional[Structure]) -> Fraction:
        """Resolve the cache-hit assumption for one structure.

        ``None`` (unknown producer) is priced all-miss, but a *known*
        structure whose kind has no declared rate raises ``KeyError``:
        new structures must declare their locality (or the bench must
        run them under the simulator) rather than be silently priced as
        all-DRAM with no signal that the model is incomplete.
        """
        if structure is None:
            return Fraction(0)
        if structure.name in self.hit_rates:
            return self.hit_rates[structure.name]
        if structure.kind in self.hit_rates:
            return self.hit_rates[structure.kind]
        raise KeyError(
            f"no cache-hit rate declared for structure {structure.name!r} of kind "
            f"{structure.kind!r}: pass hit_rates={{{structure.kind!r}: ...}} to "
            "RealisticModel, or price it under SimulatedModel, which observes "
            "hit rates instead of assuming them"
        )

    def instruction_cycles(self) -> Fraction:
        return Fraction(1, self.spec.issue_width)

    def stateless_access_cycles(self) -> Fraction:
        return Fraction(self.spec.l1_latency)

    def structure_access_cycles(self, structure: Optional[Structure]) -> Fraction:
        rate = self.hit_rate(structure)
        return rate * self.spec.l1_latency + (1 - rate) * self.spec.dram_latency


class SimulatedModel(CycleModel):
    """Cache-simulator pricing: hit rates observed, never assumed.

    The measurement side replays the trace's recorded address stream
    through a set-associative L1/LLC :class:`~repro.hw.cachesim.CacheHierarchy`
    and prices each access at the latency of the level that served it
    (l1 / llc / dram).  The hierarchy is **stateful across packets** —
    that warm/cold history is precisely what turns a replay into a
    per-packet latency *distribution* rather than one blended number.

    The prediction side prices every memory access at DRAM and
    instructions at ``1/issue_width``: since every simulated access costs
    at most ``dram_latency``, measured ≤ predicted holds packet by packet
    whatever the cache does, and therefore at every percentile (sorted
    dominance).  Accesses the trace counted but did not record addresses
    for (address recording off, or an extern that reports counts only)
    are priced at DRAM — the shortfall can only overprice the
    measurement, never unsound-underprice it.

    Args:
        spec: machine parameters (defaults to :class:`HwSpec`).
        l1: L1 geometry (defaults to
            :data:`~repro.hw.cachesim.DEFAULT_L1_GEOMETRY`).
        llc: LLC geometry (defaults to
            :data:`~repro.hw.cachesim.DEFAULT_LLC_GEOMETRY`).
    """

    name = "simulated"
    requires_access_stream = True

    def __init__(
        self,
        spec: Optional[HwSpec] = None,
        *,
        l1: CacheGeometry = DEFAULT_L1_GEOMETRY,
        llc: CacheGeometry = DEFAULT_LLC_GEOMETRY,
    ) -> None:
        super().__init__(spec)
        self.hierarchy = CacheHierarchy(l1, llc)

    def reset(self) -> None:
        """Cold-start the cache hierarchy (fresh replay, fresh machine)."""
        self.hierarchy.reset()

    def instruction_cycles(self) -> Fraction:
        return Fraction(1, self.spec.issue_width)

    def stateless_access_cycles(self) -> Fraction:
        # Prediction-side price only: the measurement side prices each
        # access at its simulated level, which never exceeds this.
        return Fraction(self.spec.dram_latency)

    def structure_access_cycles(self, structure: Optional[Structure]) -> Fraction:
        return Fraction(self.spec.dram_latency)

    def _level_prices(self) -> Dict[str, Fraction]:
        return {
            "l1": Fraction(self.spec.l1_latency),
            "llc": Fraction(self.spec.llc_latency),
            "dram": Fraction(self.spec.dram_latency),
        }

    def measure(
        self, trace: ExecutionTrace, *, structures: Sequence[Structure] = ()
    ) -> Fraction:
        """Price one traced execution by simulating its address stream.

        Mutates the hierarchy: replaying the same trace twice gives the
        second run the first run's warm caches.  Call :meth:`reset` for
        a cold machine.
        """
        prices = self._level_prices()
        access = self.hierarchy.access
        cycles = Fraction(trace.total_instructions()) * self.instruction_cycles()
        for mem in trace.accesses:
            cycles += prices[access(mem.addr)]
        counted = trace.memory_accesses + sum(
            call.memory_accesses for call in trace.extern_calls
        )
        shortfall = counted - len(trace.accesses)
        if shortfall > 0:
            cycles += Fraction(shortfall * self.spec.dram_latency)
        return cycles

    def compile_measure(
        self, structures: Sequence[Structure] = (), *, scale: int = 1
    ) -> Callable[[ExecutionTrace], int]:
        """Integer-arithmetic :meth:`measure` (same statefulness caveat)."""

        def price(value: Fraction) -> int:
            scaled = value * scale
            if scaled.denominator != 1:
                raise ValueError(
                    f"scale {scale} does not clear price {value} (need a "
                    f"multiple of {self.price_denominator(structures)})"
                )
            return scaled.numerator

        instruction = price(self.instruction_cycles())
        levels = {name: price(value) for name, value in self._level_prices().items()}
        dram = levels["dram"]
        hierarchy_access = self.hierarchy.access

        def measure(trace: ExecutionTrace, _levels=levels) -> int:
            cycles = trace.total_instructions() * instruction
            counted = trace.memory_accesses
            for mem in trace.accesses:
                cycles += _levels[hierarchy_access(mem.addr)]
            for call in trace.extern_calls:
                counted += call.memory_accesses
            shortfall = counted - len(trace.accesses)
            if shortfall > 0:
                cycles += shortfall * dram
            return cycles

        return measure


def spec_to_json(spec: HwSpec) -> Dict[str, object]:
    """Serialise a spec for bench reports."""
    return {
        "name": spec.name,
        "issue_width": spec.issue_width,
        "l1_latency": spec.l1_latency,
        "llc_latency": spec.llc_latency,
        "dram_latency": spec.dram_latency,
    }


def model_to_json(model: CycleModel) -> Dict[str, object]:
    """Serialise a model's pricing policy for bench reports."""
    payload: Dict[str, object] = {
        "model": model.name,
        "spec": spec_to_json(model.spec),
        "cycles_per_instruction": str(model.instruction_cycles()),
        "stateless_access_cycles": str(model.stateless_access_cycles()),
    }
    if isinstance(model, RealisticModel):
        payload["hit_rates"] = {k: str(v) for k, v in sorted(model.hit_rates.items())}
    if isinstance(model, SimulatedModel):
        payload["caches"] = {
            "l1": geometry_to_json(model.hierarchy.l1.geometry),
            "llc": geometry_to_json(model.hierarchy.llc.geometry),
        }
    return payload
