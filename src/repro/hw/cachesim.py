"""Set-associative cache simulation for the simulated hardware backend.

The :class:`~repro.hw.model.RealisticModel` *assumes* a per-structure
cache-hit rate (:data:`~repro.hw.model.DEFAULT_HIT_RATES`); this module
removes the assumption.  A :class:`CacheHierarchy` (L1 + LLC, both
:class:`SetAssociativeCache` instances with true-LRU replacement) consumes
the tracer's per-packet :class:`~repro.nfil.tracer.MemAccess` stream, so
every access is priced at the latency of the level that actually served
it — hit rates are **observed per packet** instead of assumed per kind.

:class:`~repro.hw.model.SimulatedModel` owns one hierarchy per model
instance and keeps it warm across the packets of a replay, which is what
produces a *distribution* of per-packet cycle costs (cold-start packets
miss, steady-state packets hit, conflict patterns sit in between) — the
raw material of the p50/p95/p99 tail columns.

Determinism: the simulator is a pure function of the access stream — no
randomised replacement, no timestamps — so a bench cell's tail numbers
are bit-identical for any ``--workers`` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

__all__ = [
    "DEFAULT_L1_GEOMETRY",
    "DEFAULT_LLC_GEOMETRY",
    "CacheGeometry",
    "CacheHierarchy",
    "SetAssociativeCache",
    "geometry_to_json",
]


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of one cache level.

    Attributes:
        sets: number of sets (the index space).
        ways: associativity — lines per set, the LRU stack depth.
        line_size: bytes per line; must be a power of two, since the
            set index is computed by shifting the block address.
    """

    sets: int
    ways: int
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.sets < 1:
            raise ValueError("a cache needs at least one set")
        if self.ways < 1:
            raise ValueError("a cache needs at least one way")
        if self.line_size < 1 or self.line_size & (self.line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")

    @property
    def capacity_bytes(self) -> int:
        """Total bytes the level can hold."""
        return self.sets * self.ways * self.line_size


#: Deliberately small defaults: the reproduction's structures occupy a few
#: KiB each, so a full-size 32 KiB L1 would make every access a hit and
#: the tail distribution degenerate.  A 4 KiB L1 over a 64 KiB LLC keeps
#: cold misses, capacity misses and conflict patterns all observable.
DEFAULT_L1_GEOMETRY = CacheGeometry(sets=32, ways=2, line_size=64)
DEFAULT_LLC_GEOMETRY = CacheGeometry(sets=128, ways=8, line_size=64)


class SetAssociativeCache:
    """One set-associative cache level with true-LRU replacement.

    Each set is a list of line tags ordered LRU-first (index 0 is the
    next victim); :meth:`access` returns whether the address hit and
    updates the recency order either way.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._line_shift = geometry.line_size.bit_length() - 1
        self._sets: Dict[int, List[int]] = {}
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch ``addr``; return True on hit.  Misses fill the line."""
        tag = addr >> self._line_shift
        index = tag % self.geometry.sets
        lines = self._sets.get(index)
        if lines is None:
            lines = []
            self._sets[index] = lines
        if tag in lines:
            lines.remove(tag)
            lines.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(lines) >= self.geometry.ways:
            lines.pop(0)
        lines.append(tag)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> Fraction:
        """Observed hit rate so far (0 before any access)."""
        if not self.accesses:
            return Fraction(0)
        return Fraction(self.hits, self.accesses)

    def reset(self) -> None:
        """Drop all cached lines and counters (a cold machine)."""
        self._sets.clear()
        self.hits = 0
        self.misses = 0


class CacheHierarchy:
    """Two-level hierarchy: every access checks L1, then LLC, then DRAM.

    A miss fills the line into every level it missed in (inclusive
    hierarchy), so a re-access promoted by the LLC also warms the L1.
    """

    def __init__(
        self,
        l1: CacheGeometry = DEFAULT_L1_GEOMETRY,
        llc: CacheGeometry = DEFAULT_LLC_GEOMETRY,
    ) -> None:
        self.l1 = SetAssociativeCache(l1)
        self.llc = SetAssociativeCache(llc)

    def access(self, addr: int) -> str:
        """Simulate one access; return the serving level.

        ``"l1"`` — L1 hit; ``"llc"`` — L1 miss served by the LLC;
        ``"dram"`` — missed both levels.
        """
        if self.l1.access(addr):
            return "l1"
        if self.llc.access(addr):
            return "llc"
        return "dram"

    def reset(self) -> None:
        """Cold-start both levels."""
        self.l1.reset()
        self.llc.reset()


def geometry_to_json(geometry: CacheGeometry) -> Dict[str, int]:
    """Serialise one level's shape for bench reports."""
    return {
        "sets": geometry.sets,
        "ways": geometry.ways,
        "line_size": geometry.line_size,
        "capacity_bytes": geometry.capacity_bytes,
    }
