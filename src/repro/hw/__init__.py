"""Hardware cycle models (the paper's counts-to-cycles mapping, §5).

A :class:`~repro.core.contract.PerformanceContract` bounds instruction and
memory-access counts; this package maps those counts to **cycles** so
predictions can be compared against (simulated) measured executions:

* :class:`ConservativeModel` — worst-case bound: CPI 1, every access a
  DRAM miss.
* :class:`RealisticModel` — simulated testbed: superscalar issue width,
  L1-resident stateless accesses, per-structure cache-hit assumptions.

``model.derive(contract)`` returns a contract with a ``cycles`` column;
``model.measure(trace)`` prices a concrete execution under the same
assumptions.  The bench harness (``python -m repro.cli bench``) asserts
measured ≤ predicted for every replayed packet under both models.
"""

from repro.hw.model import (
    DEFAULT_HIT_RATES,
    ConservativeModel,
    CycleModel,
    HwSpec,
    RealisticModel,
    model_to_json,
    spec_to_json,
)

__all__ = [
    "DEFAULT_HIT_RATES",
    "ConservativeModel",
    "CycleModel",
    "HwSpec",
    "RealisticModel",
    "model_to_json",
    "spec_to_json",
]
