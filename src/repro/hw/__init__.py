"""Hardware cycle models (the paper's counts-to-cycles mapping, §5).

A :class:`~repro.core.contract.PerformanceContract` bounds instruction and
memory-access counts; this package maps those counts to **cycles** so
predictions can be compared against (simulated) measured executions:

* :class:`ConservativeModel` — worst-case bound: CPI 1, every access a
  DRAM miss.
* :class:`RealisticModel` — simulated testbed: superscalar issue width,
  L1-resident stateless accesses, per-structure cache-hit assumptions.
* :class:`SimulatedModel` — cache simulator: a set-associative L1/LLC
  hierarchy (:mod:`repro.hw.cachesim`) consumes the tracer's per-packet
  address stream, so hit rates are observed per packet instead of
  assumed, and each replay yields a per-packet cycle *distribution*
  (the p50/p95/p99 tail columns).

``model.derive(contract)`` returns a contract with a ``cycles`` column;
``model.measure(trace)`` prices a concrete execution under the same
assumptions.  The bench harness (``python -m repro.cli bench``) asserts
measured ≤ predicted for every replayed packet under all three models,
and that measured tail percentiles stay under their predicted envelopes.
"""

from repro.hw.cachesim import (
    DEFAULT_L1_GEOMETRY,
    DEFAULT_LLC_GEOMETRY,
    CacheGeometry,
    CacheHierarchy,
    SetAssociativeCache,
    geometry_to_json,
)
from repro.hw.model import (
    DEFAULT_HIT_RATES,
    ConservativeModel,
    CycleModel,
    HwSpec,
    RealisticModel,
    SimulatedModel,
    model_to_json,
    spec_to_json,
)

__all__ = [
    "DEFAULT_HIT_RATES",
    "DEFAULT_L1_GEOMETRY",
    "DEFAULT_LLC_GEOMETRY",
    "CacheGeometry",
    "CacheHierarchy",
    "ConservativeModel",
    "CycleModel",
    "HwSpec",
    "RealisticModel",
    "SetAssociativeCache",
    "SimulatedModel",
    "geometry_to_json",
    "model_to_json",
    "spec_to_json",
]
