"""Command-line entry points: contract validation and the evaluation bench.

``python -m repro.cli [smoke]``
    Runs the full pipeline for everything shipped in the repository and
    prints the artefacts a human (or a CI log reader) needs to spot a
    regression in generated bounds: every library structure's
    hand-derived per-operation contract cross-validated against Bolt, and
    the generated contracts of both NFs with per-path feasibility.

``python -m repro.cli bench``
    Closes the evaluation loop (§5 of the paper): replays uniform, Zipf
    and adversarial workloads through all three NFs (bridge, router,
    NAT), derives cycle predictions under the conservative and realistic
    hardware models, asserts **measured ≤ predicted on every packet**
    (counts and cycles), checks that the adversarial streams actually
    drive every instance-qualified PCV to its declared bound, and writes
    the whole record to a ``BENCH_*.json`` CI archives as an artifact.

Both commands print section by section as output is produced, so even a
crash mid-run leaves the already-validated tables in the job log, and exit
non-zero on any failure so CI fails loudly instead of shipping
silently-changed bounds.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

import repro.structures as structures_pkg
from repro.core import Distiller
from repro.hw import ConservativeModel, CycleModel, RealisticModel, model_to_json
from repro.nf.bridge import generate_bridge_contract
from repro.nf.nat import generate_nat_contract
from repro.nf.router import generate_router_contract
from repro.nf.workloads import (
    Workload,
    bridge_workloads,
    nat_workloads,
    router_workloads,
    worst_case_report,
)
from repro.structures import (
    ChainingHashMap,
    ExpiringMap,
    LpmTrie,
    PortAllocator,
    Structure,
    StructureContractError,
    validate_structure_contract,
)
from repro.traffic import Replayer

#: Input classes each NF contract must keep covering.
EXPECTED_BRIDGE_CLASSES = {"short", "miss", "hairpin", "hit"}
EXPECTED_ROUTER_CLASSES = {"short", "non_ip", "ttl_expired", "no_route", "routed"}
EXPECTED_NAT_CLASSES = {
    "short",
    "non_ip",
    "internal_new",
    "internal_existing",
    "no_ports",
    "external_hit",
    "external_miss",
}

#: Bench defaults: bridge table geometry and per-workload packet budget.
BENCH_CAPACITY = 16
BENCH_TIMEOUT = 50
BENCH_PACKETS = 150
BENCH_SEED = 2019
BENCH_OUTPUT = "BENCH_eval.json"


def _section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


# --------------------------------------------------------------------------- #
# smoke: structure + contract validation
# --------------------------------------------------------------------------- #
def run_structure_validation() -> int:
    """Validate every library structure's contract against Bolt."""
    failures = 0
    structures = [
        ChainingHashMap("flow_map", capacity=64, value_bound=64),
        ExpiringMap("mac_table", capacity=64, timeout=300, value_bound=64),
        LpmTrie("fib", value_bound=64),
        PortAllocator("nat_ports", pool=range(49152, 49216)),
    ]
    # Guard against a structure being added to the library but forgotten
    # here: every exported Structure subclass must be smoke-validated.
    exported = {
        cls
        for name in structures_pkg.__all__
        if isinstance(cls := getattr(structures_pkg, name), type)
        and issubclass(cls, Structure)
        and cls is not Structure
    }
    covered = {type(structure) for structure in structures}
    if exported - covered:
        missing = sorted(cls.__name__ for cls in exported - covered)
        print(f"FAIL: structures not covered by the smoke run: {missing}")
        failures += 1
    for structure in structures:
        _section(f"structure {structure.name} ({structure.kind})")
        print(structure.operation_contract().render())
        try:
            checks = validate_structure_contract(structure)
        except StructureContractError as error:
            failures += 1
            print(f"FAIL: {error}")
            continue
        for check in checks:
            overhead = ", ".join(
                f"{metric}+{int(constant)}" for metric, constant in check.driver_overhead.items()
            )
            print(f"  {check.method}: Bolt agrees (driver overhead {overhead})")
    return failures


def run_nf_contracts() -> int:
    """Generate and render both NF contracts; check their input classes."""
    failures = 0
    for title, generate, expected in (
        ("NF: MAC learning bridge", generate_bridge_contract, EXPECTED_BRIDGE_CLASSES),
        ("NF: static LPM router", generate_router_contract, EXPECTED_ROUTER_CLASSES),
        ("NF: VigNAT-style NAT", generate_nat_contract, EXPECTED_NAT_CLASSES),
    ):
        _section(title)
        contract = generate()
        print(contract.render())
        feasibility = {path.feasibility for entry in contract for path in entry.paths}
        print(f"path feasibility: {sorted(feasibility)}")
        missing = expected - set(contract.class_names())
        if missing:
            failures += 1
            print(f"FAIL: contract lost input classes {sorted(missing)}")
    return failures


def run_smoke() -> int:
    failures = run_structure_validation()
    failures += run_nf_contracts()
    print()
    print("SMOKE FAILED" if failures else "SMOKE OK")
    return 1 if failures else 0


# --------------------------------------------------------------------------- #
# bench: measured vs predicted under workloads and hardware models
# --------------------------------------------------------------------------- #
def _bench_nf(
    nf_name: str,
    contract,
    workloads: List[Workload],
    models: List[CycleModel],
    expected_classes: set,
) -> Dict[str, object]:
    """Replay one NF's workloads; return its JSON record (with failures)."""
    failures = 0
    record: Dict[str, object] = {"contract_classes": contract.class_names(), "workloads": {}}
    classes_seen: set = set()
    for workload in workloads:
        result = Replayer(workload.harness, contract, models=models).replay(
            workload.stimuli, workload=workload.name
        )
        print()
        print(result.table())
        payload = result.to_json()
        failures += len(result.violations)
        for message in result.violations[:10]:
            print(f"FAIL: {message}")
        classes_seen.update(name for name in result.classes_seen() if name != "<unclassified>")
        if workload.expected_worst:
            worst = worst_case_report(result.max_pcvs, workload.expected_worst)
            payload["worst_case"] = worst
            for pcv, check in worst.items():
                status = "hit" if check["hit"] else "MISSED"
                print(
                    f"  adversarial worst case for {pcv}: observed "
                    f"{check['observed']} / bound {check['bound']} -> {status}"
                )
                if not check["hit"]:
                    failures += 1
        record["workloads"][workload.name] = payload  # type: ignore[index]
    missing = expected_classes - classes_seen
    if missing:
        failures += 1
        print(f"FAIL: {nf_name} workloads never exercised classes {sorted(missing)}")
    record["classes_seen"] = sorted(classes_seen)
    record["failures"] = failures
    # Show what the hardware models make of the contract, distilled.
    for model in models:
        report = Distiller(contract).distill_cycles(
            model, structures=tuple(workloads[0].harness.structures)
        )
        print()
        print(report.render())
    return record


def run_bench(
    *,
    output: str = BENCH_OUTPUT,
    packets: int = BENCH_PACKETS,
    seed: int = BENCH_SEED,
) -> int:
    """Replay both NFs under all workloads; write the BENCH_*.json report."""
    models: List[CycleModel] = [ConservativeModel(), RealisticModel()]
    report: Dict[str, object] = {
        "schema": "repro-bench/1",
        "command": "python -m repro.cli bench",
        "seed": seed,
        "packets_per_workload": packets,
        "hw_models": {model.name: model_to_json(model) for model in models},
        "nfs": {},
    }
    failures = 0

    _section("bench: MAC learning bridge")
    bridge_contract = generate_bridge_contract(BENCH_CAPACITY, BENCH_TIMEOUT)
    record = _bench_nf(
        "bridge",
        bridge_contract,
        bridge_workloads(
            seed=seed, capacity=BENCH_CAPACITY, timeout=BENCH_TIMEOUT, packets=packets
        ),
        models,
        EXPECTED_BRIDGE_CLASSES,
    )
    failures += int(record["failures"])  # type: ignore[arg-type]
    report["nfs"]["bridge"] = record  # type: ignore[index]

    _section("bench: static LPM router")
    router_contract = generate_router_contract()
    record = _bench_nf(
        "router",
        router_contract,
        router_workloads(seed=seed, packets=packets),
        models,
        EXPECTED_ROUTER_CLASSES,
    )
    failures += int(record["failures"])  # type: ignore[arg-type]
    report["nfs"]["router"] = record  # type: ignore[index]

    _section("bench: VigNAT-style NAT")
    nat_contract = generate_nat_contract(BENCH_CAPACITY, BENCH_TIMEOUT)
    record = _bench_nf(
        "nat",
        nat_contract,
        nat_workloads(
            seed=seed, capacity=BENCH_CAPACITY, timeout=BENCH_TIMEOUT, packets=packets
        ),
        models,
        EXPECTED_NAT_CLASSES,
    )
    failures += int(record["failures"])  # type: ignore[arg-type]
    report["nfs"]["nat"] = record  # type: ignore[index]

    report["ok"] = failures == 0
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(f"wrote {output}")
    print("BENCH FAILED" if failures else "BENCH OK: measured <= predicted on every packet")
    return 1 if failures else 0


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="BOLT reproduction: contract validation and evaluation bench.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("smoke", help="validate structure and NF contracts (default)")
    bench = sub.add_parser("bench", help="measured-vs-predicted evaluation bench")
    bench.add_argument("--output", default=BENCH_OUTPUT, help="report path (BENCH_*.json)")
    bench.add_argument(
        "--packets", type=int, default=BENCH_PACKETS, help="packets per uniform/zipf workload"
    )
    bench.add_argument("--seed", type=int, default=BENCH_SEED, help="workload RNG seed")
    args = parser.parse_args(argv)
    if args.command == "bench":
        return run_bench(output=args.output, packets=args.packets, seed=args.seed)
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())
