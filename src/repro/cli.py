"""Command-line entry points: contract validation and the evaluation bench.

``python -m repro.cli [smoke]``
    Runs the full pipeline for everything shipped in the repository and
    prints the artefacts a human (or a CI log reader) needs to spot a
    regression in generated bounds: every library structure's
    hand-derived per-operation contract cross-validated against Bolt, and
    the generated contracts of every NF with per-path feasibility.

``python -m repro.cli bench``
    Closes the evaluation loop (§5 of the paper): replays uniform, Zipf
    and adversarial workloads through every NF in :data:`NF_MATRIX`
    (bridge, router, NAT, LB), derives cycle predictions under the
    conservative, realistic and cache-simulated hardware models, asserts
    **measured ≤ predicted on every packet** (counts and cycles) *and*
    that every class's measured p50/p95/p99 cycle tails stay under their
    predicted envelopes, checks that the adversarial streams actually
    drive every instance-qualified PCV to its declared bound, and writes
    the whole record to a ``BENCH_*.json`` CI archives as an artifact.
    ``--models`` restricts the cycle pricing to named hardware models.

    The bench is throughput-grade: each (NF, workload) cell is an
    independent job whose stimuli are derived from a per-cell seed, so
    the matrix fans out across a ``--workers``-sized process pool (default:
    all CPUs) and the report is bit-identical for every worker count.
    Cells record their wall clock and replay rate; ``--profile`` runs one
    cell under cProfile instead of the full matrix.  Alongside the per-NF
    cells the bench replays every registered *service graph*
    (:data:`GRAPH_MATRIX`) end to end — per-hop and composed-route checks,
    with mid-stream churn — into ``report["graphs"]``; ``--nf`` / ``--graph``
    restrict the matrix to named rows and write a partial report.

``python -m repro.cli graph``
    Replays the registered service graphs on their own (see
    :mod:`repro.net`): a pcap-derived stream enters the graph's entry
    node, every hop is scored against that NF's contract, every complete
    journey against the composed route contract, and the churn schedule
    reconfigures the deployment mid-stream.  Exits non-zero on any
    violation or on missing per-hop class coverage.

``python -m repro.cli contract-diff``
    The regression gate: regenerates every NF's bench-geometry contract
    plus every service graph's composed contract and diffs them (term by
    term, exact Fractions) against the golden snapshots checked in under
    ``tests/golden/``.  Exits non-zero on any drift, naming the drifted
    classes and the derived-cycle consequence under every hardware model.
    NF goldens carry the calibrated p50/p95/p99 tail columns (schema
    ``repro-contract/2``), so a tail regression is drift like any other.
    ``--update`` regenerates the goldens — the acknowledgement step for
    an intentional bound change.

``python -m repro.cli ct-audit``
    The constant-time audit: for every NF's declared secret-dependent
    class sets (:data:`repro.audit.SECRET_CLASS_SETS`), proves
    cycle-indistinguishability under every hardware model (polynomial
    identity) or reports the leaking class pair with its symbolic cycle
    delta and a concrete witness.  Proven-constant-time pairs whose
    *measured tail distributions* nonetheless diverge under the cache
    simulator get an informational note (cache-state variance is not a
    contract leak, but a remote observer may still see it).  Exits
    non-zero when a computed verdict contradicts its declared expectation
    (``--strict``: on any leak).

The smoke structures (:func:`smoke_structures`), the NF matrix
(:data:`NF_MATRIX`) and the graph matrix (:data:`GRAPH_MATRIX`) are
module-level registries: adding a structure, an NF or a graph means
appending one entry, and ``tools/check_docs.py`` walks the same
registries to keep the documentation in sync with what actually runs.

Both commands print section by section as output is produced, so even a
crash mid-run leaves the already-validated tables in the job log, and exit
non-zero on any failure so CI fails loudly instead of shipping
silently-changed bounds.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
import zlib
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import repro.structures as structures_pkg
from repro.audit import SECRET_CLASS_SETS, audit_contract
from repro.core import Distiller, diff_contracts, dump_contract, load_contract
from repro.core.contract import TAIL_METRICS, PerformanceContract
from repro.core.perfexpr import PerfExpr
from repro.hw import (
    ConservativeModel,
    CycleModel,
    RealisticModel,
    SimulatedModel,
    model_to_json,
)
from repro.nf.bridge import generate_bridge_contract
from repro.nf.firewall import generate_firewall_contract
from repro.nf.lb import generate_lb_contract
from repro.nf.monitor import generate_monitor_contract
from repro.nf.nat import generate_nat_contract
from repro.nf.router import generate_router_contract
from repro.net.replay import GraphReplayer
from repro.net.workloads import (
    GraphWorkload,
    lb_nat_fw_router_workloads,
    lb_nat_router_workloads,
)
from repro.nf.workloads import (
    Workload,
    bridge_workloads,
    firewall_workloads,
    lb_workloads,
    monitor_workloads,
    nat_workloads,
    router_workloads,
    worst_case_report,
)
from repro.structures import (
    ChainingHashMap,
    CountMinSketch,
    ExpiringMap,
    LpmTrie,
    MaglevTable,
    PortAllocator,
    Structure,
    StructureContractError,
    validate_structure_contract,
)
from repro.sym.solver import Solver
from repro.traffic import Replayer
from repro.traffic.replayer import TAIL_PERCENTILES

#: Input classes each NF contract must keep covering.
EXPECTED_BRIDGE_CLASSES = frozenset({"short", "miss", "hairpin", "hit"})
EXPECTED_ROUTER_CLASSES = frozenset({"short", "non_ip", "ttl_expired", "no_route", "routed"})
EXPECTED_NAT_CLASSES = frozenset(
    {
        "short",
        "non_ip",
        "internal_new",
        "internal_existing",
        "no_ports",
        "external_hit",
        "external_miss",
    }
)
EXPECTED_LB_CLASSES = frozenset(
    {
        "short",
        "non_ip",
        "reconfig",
        "new_flow",
        "existing_flow",
        "backend_drained",
        "no_backends",
    }
)
EXPECTED_FIREWALL_CLASSES = frozenset(
    {
        "short",
        "non_ip",
        "denied",
        "outbound_established",
        "outbound_new",
        "conn_full",
        "inbound_established",
        "unsolicited",
    }
)
EXPECTED_MONITOR_CLASSES = frozenset({"short", "non_ip", "cold_flow", "hot_flow"})

#: Bench defaults: table geometries and per-workload packet budget.
BENCH_CAPACITY = 16
BENCH_TIMEOUT = 50
BENCH_PACKETS = 10_000
BENCH_SEED = 2019
BENCH_OUTPUT = "BENCH_eval.json"
#: Packets replayed per NF by the deterministic tail-calibration pass
#: that derives the golden contracts' p50/p95/p99 cycle columns.
TAIL_CALIBRATION_PACKETS = 400
#: Default stream length for the standalone ``graph`` subcommand (the
#: bench replays graphs at the full ``--packets`` budget).
GRAPH_PACKETS = 1_000
#: LB-specific geometry: Maglev slots (prime) and the backend ceiling.
LB_TABLE_SIZE = 13
LB_MAX_BACKENDS = 4
#: Where the golden contract snapshots live (``contract-diff`` default).
GOLDEN_DIR = os.path.join("tests", "golden")

#: Every CLI subcommand with its exit-code semantics, in registration
#: order.  ``tools/check_docs.py`` walks this to require a README row per
#: subcommand, so adding one here without documenting it fails CI.
SUBCOMMANDS: Tuple[Tuple[str, str], ...] = (
    ("smoke", "0 = every contract validates; 1 = any validation failure"),
    (
        "bench",
        "0 = measured <= predicted everywhere and every bound hit; "
        "1 = violation or missed worst case; 2 = unknown --nf/--graph row",
    ),
    ("graph", "0 = clean end-to-end replay; 1 = violation or missing coverage; 2 = unknown graph"),
    (
        "contract-diff",
        "0 = no drift against the goldens; 1 = any bound drift; "
        "2 = missing golden or unknown name",
    ),
    (
        "ct-audit",
        "0 = every verdict matches its declared expectation; "
        "1 = unexpected leak/proof (or any leak with --strict); 2 = unknown NF",
    ),
)


@dataclass(frozen=True)
class NFSpec:
    """One NF's registration with the smoke and bench pipelines.

    Attributes:
        name: short NF name (bench report key, workload harness name).
        title: section title printed by the smoke/bench runs.
        smoke_contract: contract generator at default geometry (smoke).
        bench_contract: contract generator at bench geometry.
        bench_workloads: ``(seed, packets) -> [Workload]`` factory whose
            streams must jointly cover ``expected_classes``.
        expected_classes: input classes the contract and the replayed
            workloads must keep covering.
    """

    name: str
    title: str
    smoke_contract: Callable[[], PerformanceContract]
    bench_contract: Callable[[], PerformanceContract]
    bench_workloads: Callable[[int, int], List[Workload]]
    expected_classes: FrozenSet[str]


NF_MATRIX: Tuple[NFSpec, ...] = (
    NFSpec(
        "bridge",
        "NF: MAC learning bridge",
        generate_bridge_contract,
        lambda: generate_bridge_contract(BENCH_CAPACITY, BENCH_TIMEOUT),
        lambda seed, packets: bridge_workloads(
            seed=seed, capacity=BENCH_CAPACITY, timeout=BENCH_TIMEOUT, packets=packets
        ),
        EXPECTED_BRIDGE_CLASSES,
    ),
    NFSpec(
        "router",
        "NF: static LPM router",
        generate_router_contract,
        generate_router_contract,
        lambda seed, packets: router_workloads(seed=seed, packets=packets),
        EXPECTED_ROUTER_CLASSES,
    ),
    NFSpec(
        "nat",
        "NF: VigNAT-style NAT",
        generate_nat_contract,
        lambda: generate_nat_contract(BENCH_CAPACITY, BENCH_TIMEOUT),
        lambda seed, packets: nat_workloads(
            seed=seed, capacity=BENCH_CAPACITY, timeout=BENCH_TIMEOUT, packets=packets
        ),
        EXPECTED_NAT_CLASSES,
    ),
    NFSpec(
        "lb",
        "NF: Maglev-style load balancer",
        generate_lb_contract,
        lambda: generate_lb_contract(
            BENCH_CAPACITY,
            BENCH_TIMEOUT,
            table_size=LB_TABLE_SIZE,
            max_backends=LB_MAX_BACKENDS,
        ),
        lambda seed, packets: lb_workloads(
            seed=seed,
            capacity=BENCH_CAPACITY,
            timeout=BENCH_TIMEOUT,
            packets=packets,
            table_size=LB_TABLE_SIZE,
            max_backends=LB_MAX_BACKENDS,
        ),
        EXPECTED_LB_CLASSES,
    ),
    NFSpec(
        "firewall",
        "NF: connection-tracking firewall",
        generate_firewall_contract,
        lambda: generate_firewall_contract(BENCH_CAPACITY, BENCH_TIMEOUT),
        lambda seed, packets: firewall_workloads(
            seed=seed, capacity=BENCH_CAPACITY, timeout=BENCH_TIMEOUT, packets=packets
        ),
        EXPECTED_FIREWALL_CLASSES,
    ),
    NFSpec(
        "monitor",
        "NF: heavy-hitter monitor",
        generate_monitor_contract,
        generate_monitor_contract,
        lambda seed, packets: monitor_workloads(seed=seed, packets=packets),
        EXPECTED_MONITOR_CLASSES,
    ),
)


@dataclass(frozen=True)
class GraphSpec:
    """One service graph's registration with the bench pipeline.

    Attributes:
        name: graph name (bench report key, ``--graph`` filter value).
        title: section title printed by the bench / graph runs.
        bench_workloads: ``(seed, packets) -> [GraphWorkload]`` factory;
            each workload carries a fresh graph, its stream and its churn
            schedule (see :mod:`repro.net.workloads`).
    """

    name: str
    title: str
    bench_workloads: Callable[[int, int], List[GraphWorkload]]


GRAPH_MATRIX: Tuple[GraphSpec, ...] = (
    GraphSpec(
        "lb_nat_router",
        "graph: LB -> NAT -> router ingress pipeline",
        lb_nat_router_workloads,
    ),
    GraphSpec(
        "lb_nat_fw_router",
        "graph: LB -> NAT -> firewall -> router egress pipeline",
        lb_nat_fw_router_workloads,
    ),
)


def smoke_structures() -> List[Structure]:
    """One representative instance per library structure, for the smoke run."""
    return [
        ChainingHashMap("flow_map", capacity=64, value_bound=64),
        ExpiringMap("mac_table", capacity=64, timeout=300, value_bound=64),
        LpmTrie("fib", value_bound=64),
        PortAllocator("nat_ports", pool=range(49152, 49216)),
        MaglevTable("lb_tbl", table_size=13, max_backends=4, value_bound=1 << 16),
        CountMinSketch("flow_sketch", depth=4, width=32, counter_max=255),
    ]


def _section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


# --------------------------------------------------------------------------- #
# smoke: structure + contract validation
# --------------------------------------------------------------------------- #
def run_structure_validation(structures: Optional[Sequence[Structure]] = None) -> int:
    """Validate every library structure's contract against Bolt.

    With the default list, also guard against a structure being added to
    the library but forgotten here: every exported Structure subclass must
    be smoke-validated.  (An explicit ``structures`` list skips the guard;
    the caller owns coverage then.)
    """
    failures = 0
    if structures is None:
        structures = smoke_structures()
        exported = {
            cls
            for name in structures_pkg.__all__
            if isinstance(cls := getattr(structures_pkg, name), type)
            and issubclass(cls, Structure)
            and cls is not Structure
        }
        covered = {type(structure) for structure in structures}
        if exported - covered:
            missing = sorted(cls.__name__ for cls in exported - covered)
            print(f"FAIL: structures not covered by the smoke run: {missing}")
            failures += 1
    for structure in structures:
        _section(f"structure {structure.name} ({structure.kind})")
        print(structure.operation_contract().render())
        try:
            checks = validate_structure_contract(structure)
        except StructureContractError as error:
            failures += 1
            print(f"FAIL: {error}")
            continue
        for check in checks:
            overhead = ", ".join(
                f"{metric}+{int(constant)}" for metric, constant in check.driver_overhead.items()
            )
            print(f"  {check.method}: Bolt agrees (driver overhead {overhead})")
    return failures


def run_nf_contracts(specs: Optional[Sequence[NFSpec]] = None) -> int:
    """Generate and render every NF contract; check their input classes."""
    failures = 0
    before = replace(Solver.TOTALS)
    for spec in NF_MATRIX if specs is None else specs:
        _section(spec.title)
        contract = spec.smoke_contract()
        print(contract.render())
        feasibility = {path.feasibility for entry in contract for path in entry.paths}
        print(f"path feasibility: {sorted(feasibility)}")
        missing = spec.expected_classes - set(contract.class_names())
        if missing:
            failures += 1
            print(f"FAIL: contract lost input classes {sorted(missing)}")
    # Each generator builds its own solver; the class-level aggregate is
    # how the memoisation layer stays observable from out here.
    totals = Solver.TOTALS
    print(
        "\nsolver cache across contract generation: "
        f"{totals.cache_hits - before.cache_hits} hits "
        f"({totals.prefix_pruned - before.prefix_pruned} prefix-pruned), "
        f"{totals.cache_misses - before.cache_misses} misses, "
        f"{totals.dedup_dropped - before.dedup_dropped} duplicates dropped, "
        f"{totals.simplify_reused - before.simplify_reused} simplifications reused"
    )
    return failures


def run_smoke() -> int:
    failures = run_structure_validation()
    failures += run_nf_contracts()
    print()
    print("SMOKE FAILED" if failures else "SMOKE OK")
    return 1 if failures else 0


# --------------------------------------------------------------------------- #
# bench: measured vs predicted under workloads and hardware models
# --------------------------------------------------------------------------- #
def _bench_models(names: Optional[Sequence[str]] = None) -> List[CycleModel]:
    """Fresh hardware-model instances for one bench cell (or gate run).

    Fresh per call because the simulated model carries cache state: a
    shared instance would leak one cell's working set into the next cell
    and break the report's worker-count bit-identity.  ``names`` filters
    the set (the ``--models`` flag); ``None`` means all three.
    """
    models: List[CycleModel] = [ConservativeModel(), RealisticModel(), SimulatedModel()]
    if names is None:
        return models
    selected = set(names)
    return [model for model in models if model.name in selected]


def _cell_seed(seed: int, nf_name: str, workload_name: str) -> int:
    """Derive one bench cell's workload seed.

    A cell's stimuli depend only on the bench seed and the cell's own
    identity — never on which worker ran it or in what order — so the
    report is bit-identical for every ``--workers`` value.
    """
    return zlib.crc32(f"{seed}:{nf_name}:{workload_name}".encode()) & 0x7FFFFFFF


#: One bench cell's shipping form: ``(kind, name, workload, seed, packets,
#: model_names)`` where ``kind`` is ``"nf"`` or ``"graph"``.  Specs hold
#: closures and models hold cache state, so the pool ships plain tuples
#: and each worker rebuilds the spec by name and its models fresh.
BenchTask = Tuple[str, str, str, int, int, Tuple[str, ...]]


def _bench_cell(task: BenchTask) -> Dict[str, object]:
    """Run one bench cell (either kind); return a picklable summary.

    Runs in a pool worker: everything destined for the terminal comes
    back as ``text`` so the parent prints cells in matrix order
    regardless of completion order.
    """
    if task[0] == "graph":
        return _graph_cell(task)
    return _nf_cell(task)


def _nf_cell(task: BenchTask) -> Dict[str, object]:
    """Run one (NF, workload) bench cell."""
    _, nf_name, workload_name, seed, packets, model_names = task
    spec = next(spec for spec in NF_MATRIX if spec.name == nf_name)
    contract = spec.bench_contract()
    workloads = spec.bench_workloads(_cell_seed(seed, nf_name, workload_name), packets)
    workload = next(workload for workload in workloads if workload.name == workload_name)
    started = time.perf_counter()
    result = Replayer(workload.harness, contract, models=_bench_models(model_names)).replay(
        workload.stimuli, workload=workload.name
    )
    wall = max(time.perf_counter() - started, 1e-9)
    failures = len(result.violations)
    lines = [
        "",
        result.table(),
        f"  throughput: {result.packets} packets in {wall:.3f}s "
        f"({result.packets / wall:,.0f} pkt/s)",
    ]
    for message in result.violations[:10]:
        lines.append(f"FAIL: {message}")
    payload = result.to_json()
    if workload.expected_worst:
        worst = worst_case_report(result.max_pcvs, workload.expected_worst)
        payload["worst_case"] = worst
        for pcv, check in worst.items():
            status = "hit" if check["hit"] else "MISSED"
            lines.append(
                f"  adversarial worst case for {pcv}: observed "
                f"{check['observed']} / bound {check['bound']} -> {status}"
            )
            if not check["hit"]:
                failures += 1
    payload["wall_clock_s"] = round(wall, 6)
    payload["packets_per_sec"] = round(result.packets / wall, 3)
    return {
        "workload": workload_name,
        "payload": payload,
        "text": "\n".join(lines),
        "classes": sorted(name for name in result.classes_seen() if name != "<unclassified>"),
        "failures": failures,
        "packets": result.packets,
        "wall_clock_s": wall,
    }


def _graph_cell(task: BenchTask) -> Dict[str, object]:
    """Run one (graph, workload) bench cell: end-to-end replay with churn.

    Violations at *either* level — a hop exceeding its own contract, or a
    journey exceeding the composed route bound — and missing per-hop
    class coverage all count as failures.
    """
    _, graph_name, workload_name, seed, packets, model_names = task
    spec = next(spec for spec in GRAPH_MATRIX if spec.name == graph_name)
    workloads = spec.bench_workloads(_cell_seed(seed, graph_name, workload_name), packets)
    workload = next(workload for workload in workloads if workload.name == workload_name)
    started = time.perf_counter()
    replayer = GraphReplayer(workload.graph, models=_bench_models(model_names))
    result = replayer.replay(
        workload.stream, schedule=workload.schedule, workload=workload.name
    )
    wall = max(time.perf_counter() - started, 1e-9)
    failures = len(result.violations)
    lines = [
        "",
        result.table(),
        f"  throughput: {result.packets} packets ({result.hop_executions} hop "
        f"executions) in {wall:.3f}s ({result.packets / wall:,.0f} pkt/s)",
    ]
    for message in result.violations[:10]:
        lines.append(f"FAIL: {message}")
    seen = result.hop_classes_seen()
    for node, expected in sorted(workload.expected_hop_classes.items()):
        missing = sorted(set(expected) - set(seen.get(node, [])))
        if missing:
            failures += 1
            lines.append(f"FAIL: hop {node!r} never exercised classes {missing}")
    payload = result.to_json()
    payload["wall_clock_s"] = round(wall, 6)
    payload["packets_per_sec"] = round(result.packets / wall, 3)
    return {
        "workload": workload_name,
        "payload": payload,
        "text": "\n".join(lines),
        "classes": [],
        "hop_classes": seen,
        "failures": failures,
        "packets": result.packets,
        "wall_clock_s": wall,
    }


def _run_cells(tasks: List[BenchTask], workers: int) -> List[Dict[str, object]]:
    """Run bench cells, fanning out across processes when it can help.

    Fork is required (not just preferred): workers must see the parent's
    live registry — tests swap :data:`NF_MATRIX` for doctored specs — and
    a spawned interpreter would re-import the pristine module.  Without
    fork (or with one worker) the cells run inline, in order.
    """
    if workers > 1 and len(tasks) > 1 and "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
        with context.Pool(min(workers, len(tasks))) as pool:
            return pool.map(_bench_cell, tasks)
    return [_bench_cell(task) for task in tasks]


def _profile_cell(task: BenchTask) -> int:
    """Run one bench cell under cProfile; print the top cumulative entries."""
    import cProfile
    import pstats

    _, nf_name, workload_name, _, packets, _ = task
    _section(f"profile: {nf_name}/{workload_name} at {packets} packets")
    profiler = cProfile.Profile()
    profiler.enable()
    cell = _bench_cell(task)
    profiler.disable()
    print(cell["text"])
    print()
    pstats.Stats(profiler, stream=sys.stdout).sort_stats("cumulative").print_stats(20)
    return 0


def run_bench(
    *,
    output: str = BENCH_OUTPUT,
    packets: int = BENCH_PACKETS,
    seed: int = BENCH_SEED,
    workers: Optional[int] = None,
    profile: bool = False,
    nfs: Optional[Sequence[str]] = None,
    graphs: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
) -> int:
    """Replay every NF and service graph; write the BENCH_*.json report.

    ``nfs`` / ``graphs`` restrict the matrix to the named rows (the
    ``--nf`` / ``--graph`` flags): naming either makes the run *partial*
    — only named rows of either kind execute, and the report records the
    filters so consumers can tell a partial artifact from a full one.
    ``models`` (the ``--models`` flag) restricts the cycle pricing to
    the named hardware models; counts are checked regardless.
    """
    started = time.perf_counter()
    workers = max(1, workers if workers is not None else os.cpu_count() or 1)
    known_models = {model.name for model in _bench_models()}
    unknown_models = sorted(set(models or ()) - known_models)
    if unknown_models:
        print(f"FAIL: unknown hardware models {unknown_models} (known: {sorted(known_models)})")
        return 2
    selected_models = _bench_models(models)
    model_names = tuple(model.name for model in selected_models)
    unknown = sorted(set(nfs or ()) - {spec.name for spec in NF_MATRIX})
    unknown += sorted(set(graphs or ()) - {spec.name for spec in GRAPH_MATRIX})
    if unknown:
        print(f"FAIL: unknown bench rows {unknown}")
        return 2
    filtered = nfs is not None or graphs is not None
    nf_selected = [
        spec for spec in NF_MATRIX if not filtered or (nfs and spec.name in set(nfs))
    ]
    graph_selected = [
        spec for spec in GRAPH_MATRIX if not filtered or (graphs and spec.name in set(graphs))
    ]
    # One cheap factory call per row names its workloads (and provides the
    # structure instances the distilled views attribute costs to); the
    # real per-cell streams are built inside the cells themselves.
    plan = [
        (spec, spec.bench_workloads(_cell_seed(seed, spec.name, "<cells>"), 1))
        for spec in nf_selected
    ]
    graph_plan = [
        (spec, spec.bench_workloads(_cell_seed(seed, spec.name, "<cells>"), 1))
        for spec in graph_selected
    ]
    tasks: List[BenchTask] = [
        ("nf", spec.name, workload.name, seed, packets, model_names)
        for spec, workloads in plan
        for workload in workloads
    ]
    tasks += [
        ("graph", spec.name, workload.name, seed, packets, model_names)
        for spec, workloads in graph_plan
        for workload in workloads
    ]
    if not tasks:
        print("FAIL: the --nf/--graph filters selected no bench rows")
        return 2
    if profile:
        return _profile_cell(tasks[0])
    cells = _run_cells(tasks, workers)

    report: Dict[str, object] = {
        "schema": "repro-bench/1",
        "command": "python -m repro.cli bench",
        "seed": seed,
        "packets_per_workload": packets,
        "filters": {
            "nfs": sorted(nfs or ()),
            "graphs": sorted(graphs or ()),
            "models": sorted(models or ()),
        },
        "hw_models": {model.name: model_to_json(model) for model in selected_models},
        "nfs": {},
        "graphs": {},
    }
    failures = 0
    total_packets = 0
    cursor = 0
    for spec, workloads in plan:
        _section(f"bench: {spec.title.removeprefix('NF: ')}")
        contract = spec.bench_contract()
        record: Dict[str, object] = {"contract_classes": contract.class_names(), "workloads": {}}
        classes_seen: set = set()
        nf_failures = 0
        for _ in workloads:
            cell = cells[cursor]
            cursor += 1
            print(cell["text"])
            record["workloads"][cell["workload"]] = cell["payload"]  # type: ignore[index]
            classes_seen.update(cell["classes"])  # type: ignore[arg-type]
            nf_failures += cell["failures"]  # type: ignore[operator]
            total_packets += cell["packets"]  # type: ignore[operator]
        missing = spec.expected_classes - classes_seen
        if missing:
            nf_failures += 1
            print(f"FAIL: {spec.name} workloads never exercised classes {sorted(missing)}")
        record["classes_seen"] = sorted(classes_seen)
        record["failures"] = nf_failures
        failures += nf_failures
        # Show what the hardware models make of the contract, distilled.
        for model in selected_models:
            distilled = Distiller(contract).distill_cycles(
                model, structures=tuple(workloads[0].harness.structures)
            )
            print()
            print(distilled.render())
        report["nfs"][spec.name] = record  # type: ignore[index]

    for spec, workloads in graph_plan:
        _section(f"bench: {spec.title.removeprefix('graph: ')}")
        record = {"workloads": {}}
        hop_classes: Dict[str, set] = {}
        graph_failures = 0
        for _ in workloads:
            cell = cells[cursor]
            cursor += 1
            print(cell["text"])
            record["workloads"][cell["workload"]] = cell["payload"]  # type: ignore[index]
            for node, classes in cell["hop_classes"].items():  # type: ignore[union-attr]
                hop_classes.setdefault(node, set()).update(classes)
            graph_failures += cell["failures"]  # type: ignore[operator]
            total_packets += cell["packets"]  # type: ignore[operator]
        record["hop_classes_seen"] = {
            node: sorted(classes) for node, classes in sorted(hop_classes.items())
        }
        record["failures"] = graph_failures
        failures += graph_failures
        report["graphs"][spec.name] = record  # type: ignore[index]

    elapsed = max(time.perf_counter() - started, 1e-9)
    # Timing lives under one key so consumers comparing reports across
    # worker counts can drop the only legitimately varying subtree.
    report["timing"] = {
        "packets_total": total_packets,
        "packets_per_sec": round(total_packets / elapsed, 3),
        "wall_clock_s": round(elapsed, 6),
        "workers": workers,
    }
    report["ok"] = failures == 0
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(
        f"replayed {total_packets} packets in {elapsed:.2f}s "
        f"({total_packets / elapsed:,.0f} pkt/s, workers={workers})"
    )
    print(f"wrote {output}")
    print("BENCH FAILED" if failures else "BENCH OK: measured <= predicted on every packet")
    return 1 if failures else 0


# --------------------------------------------------------------------------- #
# graph: standalone end-to-end service-graph replay
# --------------------------------------------------------------------------- #
def run_graph(
    *,
    graph: Optional[str] = None,
    packets: int = GRAPH_PACKETS,
    seed: int = BENCH_SEED,
    output: Optional[str] = None,
) -> int:
    """Replay the registered service graphs end to end, with churn.

    Prints each graph's per-route table, throughput and the head of its
    churn log; optionally writes the full per-workload payloads to
    ``output``.  Exits non-zero on any per-hop or end-to-end violation,
    or when a hop misses its expected input-class coverage.
    """
    specs = [spec for spec in GRAPH_MATRIX if graph is None or spec.name == graph]
    if not specs:
        known = ", ".join(spec.name for spec in GRAPH_MATRIX)
        print(f"FAIL: unknown graph {graph!r} (registered: {known})")
        return 2
    failures = 0
    report: Dict[str, object] = {}
    for spec in specs:
        _section(spec.title)
        probe = spec.bench_workloads(_cell_seed(seed, spec.name, "<cells>"), 1)
        record: Dict[str, object] = {}
        model_names = tuple(model.name for model in _bench_models())
        for workload in probe:
            cell = _graph_cell(("graph", spec.name, workload.name, seed, packets, model_names))
            print(cell["text"])
            churn = cell["payload"]["churn"]  # type: ignore[index]
            for line in churn["log"][:8]:
                print(f"  churn {line}")
            if churn["events"] > 8:
                print(f"  ... {churn['events'] - 8} more churn events")
            failures += cell["failures"]  # type: ignore[operator]
            record[workload.name] = cell["payload"]
        report[spec.name] = record
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {output}")
    print()
    print(
        "GRAPH FAILED"
        if failures
        else "GRAPH OK: measured <= predicted at every hop and end to end"
    )
    return 1 if failures else 0


# --------------------------------------------------------------------------- #
# contract-diff: golden-contract regression gate
# --------------------------------------------------------------------------- #
def _simulated_calibration(spec: NFSpec, contract: PerformanceContract):
    """Replay one NF's calibration stream under the cache simulator.

    The stream is a pure function of the bench seed and the NF's name —
    the first bench workload, regenerated at a dedicated ``<tails>``
    seed and :data:`TAIL_CALIBRATION_PACKETS` packets — so every caller
    (golden regeneration, golden diffing, the ct-audit note) observes
    the identical per-class cycle distributions.

    Returns:
        ``(model, result)``: the fresh :class:`~repro.hw.SimulatedModel`
        the replay priced cycles under, and its
        :class:`~repro.traffic.ReplayResult`.
    """
    workload = spec.bench_workloads(
        _cell_seed(BENCH_SEED, spec.name, "<tails>"), TAIL_CALIBRATION_PACKETS
    )[0]
    model = SimulatedModel()
    result = Replayer(workload.harness, contract, models=[model]).replay(
        workload.stimuli, workload=workload.name
    )
    return model, result


def _attach_tail_columns(spec: NFSpec, contract: PerformanceContract) -> None:
    """Attach the p50/p95/p99 cycle columns to an NF's gate contract.

    Each exercised class's column is the nearest-rank percentile of the
    calibration replay's *predicted* per-packet cycle population under
    the cache simulator — the same envelope the bench holds measured
    tails under — recorded as an exact constant expression.  Classes the
    calibration stream never reaches keep no tail columns (an empty
    population has no percentiles).
    """
    model, result = _simulated_calibration(spec, contract)
    scale = result.cycle_scale
    for index, entry in enumerate(contract.entries):
        summary = result.summaries.get(entry.input_class.name)
        if summary is None:
            continue
        envelope = summary.cycle_tail_envelopes.get(model.name)
        if not envelope:
            continue
        exprs = dict(entry.exprs)
        for metric, percentile in zip(TAIL_METRICS, TAIL_PERCENTILES):
            exprs[metric] = PerfExpr.constant(Fraction(envelope[percentile], scale))
        contract.entries[index] = replace(entry, exprs=exprs)


def _gate_targets(
    names: Optional[Sequence[str]] = None,
) -> List[Tuple[str, PerformanceContract, Tuple[Structure, ...]]]:
    """Regenerate every gated contract at bench geometry.

    One target per NF in :data:`NF_MATRIX` (its bench contract, with the
    calibrated tail columns attached) plus one per service graph in
    :data:`GRAPH_MATRIX` (its *composed* contract, one entry per
    reachable route; route populations mix per-hop classes, so composed
    contracts stay tail-free).  Each target ships the structure
    instances behind its PCVs so cycle deltas price memory per owner.
    """
    selected = set(names) if names else None
    targets: List[Tuple[str, PerformanceContract, Tuple[Structure, ...]]] = []
    for spec in NF_MATRIX:
        if selected is not None and spec.name not in selected:
            continue
        workload = spec.bench_workloads(_cell_seed(BENCH_SEED, spec.name, "<gate>"), 1)[0]
        contract = spec.bench_contract()
        _attach_tail_columns(spec, contract)
        targets.append((spec.name, contract, tuple(workload.harness.structures)))
    for spec in GRAPH_MATRIX:
        if selected is not None and spec.name not in selected:
            continue
        graph = spec.bench_workloads(_cell_seed(BENCH_SEED, spec.name, "<gate>"), 1)[0].graph
        targets.append((spec.name, graph.compose(), graph.structures()))
    return targets


def run_contract_diff(
    *,
    golden_dir: str = GOLDEN_DIR,
    update: bool = False,
    names: Optional[Sequence[str]] = None,
) -> int:
    """Diff freshly generated contracts against the checked-in goldens.

    With ``--update``, (re)write the goldens instead — the acknowledgement
    step for an *intentional* bound change.  Exit codes: 0 no drift,
    1 any drift (the drifted classes are named), 2 a golden file is
    missing or a ``--nf`` name is unknown.
    """
    known = {spec.name for spec in NF_MATRIX} | {spec.name for spec in GRAPH_MATRIX}
    unknown = sorted(set(names or ()) - known)
    if unknown:
        print(f"FAIL: unknown contract-diff targets {unknown} (known: {sorted(known)})")
        return 2
    targets = _gate_targets(names)
    if update:
        os.makedirs(golden_dir, exist_ok=True)
        for name, contract, _ in targets:
            path = os.path.join(golden_dir, f"{name}.json")
            dump_contract(contract, path)
            print(f"wrote golden contract {path} ({len(contract)} classes)")
        return 0
    models = _bench_models()
    drifted = 0
    missing = 0
    for name, contract, structures in targets:
        _section(f"contract-diff: {name}")
        path = os.path.join(golden_dir, f"{name}.json")
        if not os.path.exists(path):
            missing += 1
            print(
                f"FAIL: no golden contract at {path} "
                "(run `python -m repro.cli contract-diff --update` and commit it)"
            )
            continue
        diff = diff_contracts(load_contract(path), contract, models=models, structures=structures)
        print(diff.render())
        if not diff.ok:
            drifted += 1
            names = diff.worsened_classes or sorted(d.class_name for d in diff.drifted)
            print(f"drifted classes: {names}")
    print()
    if missing:
        print("CONTRACT DIFF FAILED: goldens missing")
        return 2
    print(
        "CONTRACT DIFF FAILED: bounds drifted against the goldens "
        "(intentional? regenerate with --update and commit)"
        if drifted
        else "CONTRACT DIFF OK: every contract matches its golden"
    )
    return 1 if drifted else 0


# --------------------------------------------------------------------------- #
# ct-audit: constant-time audit of secret-dependent input classes
# --------------------------------------------------------------------------- #
def _simulated_tails(
    spec: NFSpec, contract: PerformanceContract
) -> Dict[str, Dict[int, float]]:
    """Measured per-class cycle tails of the NF's calibration replay."""
    model, result = _simulated_calibration(spec, contract)
    scale = result.cycle_scale
    return {
        name: {p: tails[p] / scale for p in TAIL_PERCENTILES}
        for name, summary in result.summaries.items()
        if (tails := summary.cycle_tails.get(model.name))
    }


def run_ct_audit(*, names: Optional[Sequence[str]] = None, strict: bool = False) -> int:
    """Audit every NF's secret class sets under every hardware model.

    A pair proven constant-time is a *polynomial* identity: the bound is
    the same for both classes under every model.  The measured
    distributions can still differ — cache state depends on the whole
    stream, so two identically-bounded classes may sit at different
    simulated tails — which is worth surfacing (a remote observer times
    actual executions, not bounds) but is not a contract leak; those
    pairs get an informational ``note:`` line, never a failure.

    Exit codes: 0 every computed verdict matches its declared expectation
    (known leaks stay documented, claimed constant-time pairs stay
    proven), 1 a verdict contradicts its declaration — or, with
    ``--strict``, any leak at all — and 2 an unknown ``--nf`` name.
    """
    known = {spec.name for spec in NF_MATRIX}
    unknown = sorted(set(names or ()) - known)
    if unknown:
        print(f"FAIL: unknown NFs {unknown} (known: {sorted(known)})")
        return 2
    models = _bench_models()
    failures = 0
    audited = 0
    for spec in NF_MATRIX:
        if names and spec.name not in set(names):
            continue
        secret_sets = SECRET_CLASS_SETS.get(spec.name, ())
        _section(f"ct-audit: {spec.name}")
        if not secret_sets:
            print(f"no secret class sets declared for {spec.name}")
            continue
        contract = spec.bench_contract()
        workload = spec.bench_workloads(_cell_seed(BENCH_SEED, spec.name, "<gate>"), 1)[0]
        findings = audit_contract(
            contract,
            secret_sets,
            models=models,
            structures=tuple(workload.harness.structures),
        )
        for finding in findings:
            audited += 1
            for line in finding.render(contract.registry):
                print(line)
            if not finding.matches_expectation:
                failures += 1
                print(
                    f"FAIL: {spec.name}/{finding.secret_set.name} is "
                    f"{finding.verdict} but declared "
                    f"{finding.secret_set.expectation} — update "
                    "repro.audit.SECRET_CLASS_SETS if this is intentional"
                )
            elif strict and finding.leaks:
                failures += 1
                print(f"FAIL (--strict): {spec.name}/{finding.secret_set.name} leaks")
        proven = [finding for finding in findings if not finding.leaks]
        if proven:
            tails = _simulated_tails(spec, contract)
            for finding in proven:
                classes = finding.secret_set.classes
                for index, class_a in enumerate(classes):
                    for class_b in classes[index + 1 :]:
                        tails_a = tails.get(class_a)
                        tails_b = tails.get(class_b)
                        if not tails_a or not tails_b or tails_a == tails_b:
                            continue
                        print(
                            f"  note: {class_a} vs {class_b} measured tails diverge "
                            f"under simulation (p99 {tails_a[99]:.1f} vs "
                            f"{tails_b[99]:.1f} cycles) — cache-state variance "
                            "across the stream, not a contract leak"
                        )
    print()
    print(
        "CT AUDIT FAILED"
        if failures
        else f"CT AUDIT OK: {audited} secret class sets match their declarations"
    )
    return 1 if failures else 0


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="BOLT reproduction: contract validation and evaluation bench.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("smoke", help="validate structure and NF contracts (default)")
    bench = sub.add_parser("bench", help="measured-vs-predicted evaluation bench")
    bench.add_argument("--output", default=BENCH_OUTPUT, help="report path (BENCH_*.json)")
    bench.add_argument(
        "--packets", type=int, default=BENCH_PACKETS, help="packets per uniform/zipf workload"
    )
    bench.add_argument("--seed", type=int, default=BENCH_SEED, help="workload RNG seed")
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="bench cells run in parallel (default: all CPUs); the report "
        "is bit-identical for every value",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="profile one bench cell under cProfile and exit",
    )
    bench.add_argument(
        "--nf",
        action="append",
        metavar="NAME",
        help="bench only this NF (repeatable; makes the report partial)",
    )
    bench.add_argument(
        "--graph",
        action="append",
        metavar="NAME",
        help="bench only this service graph (repeatable; makes the report partial)",
    )
    bench.add_argument(
        "--models",
        action="append",
        metavar="NAME",
        help="price cycles only under this hardware model (repeatable; "
        "default: conservative, realistic and simulated)",
    )
    graph = sub.add_parser(
        "graph", help="end-to-end service-graph replay with mid-stream churn"
    )
    graph.add_argument(
        "--graph", default=None, metavar="NAME", help="graph name (default: all registered)"
    )
    graph.add_argument(
        "--packets", type=int, default=GRAPH_PACKETS, help="stream length to replay"
    )
    graph.add_argument("--seed", type=int, default=BENCH_SEED, help="cell seed")
    graph.add_argument(
        "--output", default=None, help="optionally write the replay payloads as JSON"
    )
    diff = sub.add_parser(
        "contract-diff",
        help="diff regenerated contracts against the golden snapshots",
    )
    diff.add_argument(
        "--golden",
        default=GOLDEN_DIR,
        metavar="DIR",
        help=f"golden snapshot directory (default: {GOLDEN_DIR})",
    )
    diff.add_argument(
        "--update",
        action="store_true",
        help="regenerate the goldens (acknowledge an intentional bound change)",
    )
    diff.add_argument(
        "--nf",
        action="append",
        metavar="NAME",
        help="diff only this NF or graph (repeatable; default: all)",
    )
    audit = sub.add_parser(
        "ct-audit",
        help="constant-time audit: prove or refute class cycle-indistinguishability",
    )
    audit.add_argument(
        "--nf",
        action="append",
        metavar="NAME",
        help="audit only this NF (repeatable; default: all)",
    )
    audit.add_argument(
        "--strict",
        action="store_true",
        help="fail on any leak, even ones declared as accepted",
    )
    args = parser.parse_args(argv)
    if args.command == "bench":
        return run_bench(
            output=args.output,
            packets=args.packets,
            seed=args.seed,
            workers=args.workers,
            profile=args.profile,
            nfs=args.nf,
            graphs=args.graph,
            models=args.models,
        )
    if args.command == "graph":
        return run_graph(
            graph=args.graph,
            packets=args.packets,
            seed=args.seed,
            output=args.output,
        )
    if args.command == "contract-diff":
        return run_contract_diff(golden_dir=args.golden, update=args.update, names=args.nf)
    if args.command == "ct-audit":
        return run_ct_audit(names=args.nf, strict=args.strict)
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())
