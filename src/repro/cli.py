"""Contract-validation smoke runner (``python -m repro.cli``).

Runs the full pipeline for everything shipped in the repository and prints
the artefacts a human (or a CI log reader) needs to spot a regression in
generated bounds:

1. every library structure's hand-derived per-operation contract,
   cross-validated against Bolt via
   :func:`repro.structures.validation.validate_structure_contract`;
2. the generated contracts of both NFs (bridge and LPM router), with every
   symbolic path's feasibility.

Output is printed section by section as it is produced, so even a crash
mid-run leaves the already-validated tables in the job log.  Exits
non-zero when a structure's hand contract disagrees with Bolt or an NF
contract loses an expected input class, so CI fails loudly instead of
shipping silently-changed bounds.
"""

from __future__ import annotations

import sys

import repro.structures as structures_pkg
from repro.nf.bridge import generate_bridge_contract
from repro.nf.router import generate_router_contract
from repro.structures import (
    ChainingHashMap,
    ExpiringMap,
    LpmTrie,
    Structure,
    StructureContractError,
    validate_structure_contract,
)

#: Input classes each NF contract must keep covering.
EXPECTED_BRIDGE_CLASSES = {"short", "miss", "hairpin", "hit"}
EXPECTED_ROUTER_CLASSES = {"short", "non_ip", "ttl_expired", "no_route", "routed"}


def _section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def run_structure_validation() -> int:
    """Validate every library structure's contract against Bolt."""
    failures = 0
    structures = [
        ChainingHashMap("flow_map", capacity=64, value_bound=64),
        ExpiringMap("mac_table", capacity=64, timeout=300, value_bound=64),
        LpmTrie("fib", value_bound=64),
    ]
    # Guard against a structure being added to the library but forgotten
    # here: every exported Structure subclass must be smoke-validated.
    exported = {
        cls
        for name in structures_pkg.__all__
        if isinstance(cls := getattr(structures_pkg, name), type)
        and issubclass(cls, Structure)
        and cls is not Structure
    }
    covered = {type(structure) for structure in structures}
    if exported - covered:
        missing = sorted(cls.__name__ for cls in exported - covered)
        print(f"FAIL: structures not covered by the smoke run: {missing}")
        failures += 1
    for structure in structures:
        _section(f"structure {structure.name} ({structure.kind})")
        print(structure.operation_contract().render())
        try:
            checks = validate_structure_contract(structure)
        except StructureContractError as error:
            failures += 1
            print(f"FAIL: {error}")
            continue
        for check in checks:
            overhead = ", ".join(
                f"{metric}+{int(constant)}" for metric, constant in check.driver_overhead.items()
            )
            print(f"  {check.method}: Bolt agrees (driver overhead {overhead})")
    return failures


def run_nf_contracts() -> int:
    """Generate and render both NF contracts; check their input classes."""
    failures = 0
    for title, generate, expected in (
        ("NF: MAC learning bridge", generate_bridge_contract, EXPECTED_BRIDGE_CLASSES),
        ("NF: static LPM router", generate_router_contract, EXPECTED_ROUTER_CLASSES),
    ):
        _section(title)
        contract = generate()
        print(contract.render())
        feasibility = {path.feasibility for entry in contract for path in entry.paths}
        print(f"path feasibility: {sorted(feasibility)}")
        missing = expected - set(contract.class_names())
        if missing:
            failures += 1
            print(f"FAIL: contract lost input classes {sorted(missing)}")
    return failures


def main() -> int:
    failures = run_structure_validation()
    failures += run_nf_contracts()
    print()
    print("SMOKE FAILED" if failures else "SMOKE OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
