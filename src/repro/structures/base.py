"""Common machinery of the Vigor-style stateful structure library.

The paper's NFs are all assembled from a small library of verified stateful
data structures whose performance the analysis takes on contract rather
than re-deriving (§3.2); every structure in :mod:`repro.structures` ships
the three artefacts the BOLT pipeline needs:

1. a **concrete instrumented implementation** — the structure is an
   :class:`repro.nfil.interpreter.ExternHandler` whose handlers report the
   instruction/memory cost of each call through the
   :mod:`repro.nfil.tracer` conventions, together with the PCV values the
   call actually incurred;
2. a **symbolic model** — :class:`StructureModel` plugs any set of
   structures into :class:`repro.sym.engine.SymbolicEngine`: extern outputs
   become fresh symbols (optionally constrained) and every call charges the
   PCV-parameterised cost its operation contract promises;
3. a **hand-derived per-operation contract** — one
   :class:`~repro.core.contract.PerformanceContract` entry per method
   (:meth:`Structure.operation_contract`), validated by Bolt against the
   symbolic paths in :mod:`repro.structures.validation` and against 100+
   traced concrete operations in the test suite.

The cost formulas live in each structure's :class:`OpSpec` table and are the
*single source of truth*: the symbolic model charges them verbatim, the
concrete handlers charge at most them (some fast paths charge slightly
less), and the hand contract is assembled from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.contract import ContractEntry, Metric, PerformanceContract
from repro.core.input_class import InputClass
from repro.core.pcv import PCV, PCVRegistry
from repro.core.perfexpr import PerfExpr
from repro.nfil.interpreter import ExternHandler, ExternResult
from repro.nfil.program import ExternDecl, Module
from repro.sym import expr as E
from repro.sym.engine import ModelOutcome, SymbolicModel
from repro.sym.expr import BV, Const, Sym
from repro.sym.state import SymbolicState

__all__ = [
    "NOT_FOUND",
    "OpSpec",
    "Structure",
    "StructureModel",
    "bounded_value_constraint",
    "linear_cost",
]

#: Sentinel returned by lookup-style operations for absent keys.
NOT_FOUND = (1 << 64) - 1


@dataclass(frozen=True)
class OpSpec:
    """The contract-facing specification of one structure operation.

    Attributes:
        method: method name; the extern is named ``"{instance}_{method}"``.
        arity: number of arguments the extern takes.
        returns_value: whether the extern produces a value.
        cost: hand-derived per-metric worst-case cost of one call, written
            over the structure's PCVs.  The symbolic model charges exactly
            this; the concrete handlers never charge more.
        pcvs: names of the PCVs the cost is written over.
        description: human-readable meaning, rendered in contract tables.
    """

    method: str
    arity: int
    returns_value: bool
    cost: Mapping[Metric, PerfExpr] = field(default_factory=dict)
    pcvs: Tuple[str, ...] = ()
    description: str = ""


def linear_cost(
    pcv: str, *, instr: Tuple[int, int], mem: Tuple[int, int]
) -> Dict[Metric, PerfExpr]:
    """Build the ``base + slope*pcv`` cost shape most operations use."""
    base_i, per_i = instr
    base_m, per_m = mem
    return {
        Metric.INSTRUCTIONS: PerfExpr.from_terms(**{pcv: per_i, "const": base_i}),
        Metric.MEMORY_ACCESSES: PerfExpr.from_terms(**{pcv: per_m, "const": base_m}),
    }


class Structure(ExternHandler):
    """Base class of every stateful structure in the library.

    A subclass defines its operation table via :meth:`ops`, implements one
    ``_op_{method}(args, memory)`` handler per operation, and provides its
    PCV registry through :meth:`registry`.  The base class derives extern
    declarations, the per-operation contract, and the handler registrations
    from that table.
    """

    #: What kind of structure this is (e.g. ``"chaining_hash_map"``).
    kind: str = "structure"

    def __init__(self, name: str) -> None:
        super().__init__()
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"invalid structure instance name: {name!r}")
        self.name = name
        # Snapshot the op table once: op() sits on the hot concrete replay
        # path (every charge() resolves its spec).
        self._ops_by_method: Dict[str, OpSpec] = {op.method: op for op in self.ops()}
        for op in self._ops_by_method.values():
            handler = getattr(self, f"_op_{op.method}", None)
            if handler is None:
                raise TypeError(
                    f"{type(self).__name__} declares op {op.method!r} "
                    f"but implements no _op_{op.method}"
                )
            self.register(self.extern_name(op.method), handler)

    # -- the operation table (overridden by subclasses) ------------------ #
    def ops(self) -> Sequence[OpSpec]:
        """Return the operation table of the structure."""
        raise NotImplementedError

    def registry(self) -> PCVRegistry:
        """Return the PCVs (with instance-specific bounds) of the structure."""
        raise NotImplementedError

    def result_constraints(self, method: str, result: BV, args: Tuple[BV, ...]) -> Tuple[BV, ...]:
        """Symbolic assumptions about the output of a value-returning op.

        The default constrains nothing; subclasses with a known value range
        (e.g. a map storing switch ports) narrow the havoced output here.
        """
        return ()

    # -- derived plumbing ------------------------------------------------ #
    def extern_name(self, method: str) -> str:
        """Return the extern symbol of one method of this instance."""
        return f"{self.name}_{method}"

    def op(self, method: str) -> OpSpec:
        """Return the spec of the named operation (as snapshot at init)."""
        try:
            return self._ops_by_method[method]
        except KeyError:
            raise KeyError(f"{self.name}: unknown operation {method!r}") from None

    def declare(self, module: Module) -> None:
        """Declare this instance's externs on ``module``."""
        for op in self.ops():
            module.declare_extern(
                self.extern_name(op.method),
                op.arity,
                returns_value=op.returns_value,
                structure=self.name,
                method=op.method,
            )

    def operation_contract(self) -> PerformanceContract:
        """The hand-derived contract: one entry per operation."""
        contract = PerformanceContract(f"{self.name}({self.kind})", registry=self.registry())
        for op in self.ops():
            contract.add_entry(
                ContractEntry(
                    input_class=InputClass(op.method, description=op.description),
                    exprs=dict(op.cost),
                )
            )
        return contract

    def charge(
        self,
        method: str,
        value: Optional[int] = None,
        *,
        discount_instructions: int = 0,
        **pcvs: int,
    ) -> ExternResult:
        """Build the :class:`ExternResult` of one concrete call.

        Evaluates the operation's cost formulas at the observed PCV values;
        ``discount_instructions`` lets a fast path report fewer instructions
        than the worst-case formula (never more), keeping the hand contract
        a genuine upper bound rather than a tautology.
        """
        op = self.op(method)
        bindings = {name: pcvs.get(name, 0) for name in op.pcvs}
        instructions = op.cost[Metric.INSTRUCTIONS].evaluate_int(bindings)
        if discount_instructions < 0 or discount_instructions >= instructions:
            raise ValueError(f"bad instruction discount {discount_instructions}")
        return ExternResult(
            value,
            instructions=instructions - discount_instructions,
            memory_accesses=op.cost[Metric.MEMORY_ACCESSES].evaluate_int(bindings),
            pcvs=dict(bindings),
        )


def _widen(a: PCV, b: PCV) -> PCV:
    """Merge two same-named PCV declarations into one shared, loosest one."""
    if a == b:
        return a
    if a.max_value is None or b.max_value is None:
        max_value = None
    else:
        max_value = max(a.max_value, b.max_value)
    return PCV(
        name=a.name,
        description=a.description or b.description,
        structure=a.structure if a.structure == b.structure else None,
        min_value=min(a.min_value, b.min_value),
        max_value=max_value,
        unit=a.unit or b.unit,
    )


class StructureModel(SymbolicModel):
    """Symbolic model over any set of library structures.

    Dispatches each extern call to the owning structure's operation table:
    value-returning operations havoc their output (constrained by the
    structure's :meth:`~Structure.result_constraints`) and every call
    charges the PCV-parameterised cost its operation contract promises —
    byte-for-byte the formulas the concrete handlers charge.
    """

    def __init__(self, *structures: Structure) -> None:
        self._by_extern: Dict[str, Tuple[Structure, OpSpec]] = {}
        for structure in structures:
            for op in structure.ops():
                self._by_extern[structure.extern_name(op.method)] = (structure, op)

    def registry(self) -> PCVRegistry:
        """Return the merged PCV registry of all modelled structures.

        Structures of different kinds may declare the same PCV name (both
        map structures use ``t`` for chain links).  Sharing the symbol is
        sound for upper bounds — concrete traces merge per-call PCV
        observations by ``max`` — so colliding declarations are widened
        (loosest bounds win) rather than rejected.
        """
        pcvs: Dict[str, PCV] = {}
        seen: set[int] = set()
        for structure, _ in self._by_extern.values():
            if id(structure) in seen:
                continue
            seen.add(id(structure))
            for pcv in structure.registry():
                existing = pcvs.get(pcv.name)
                pcvs[pcv.name] = pcv if existing is None else _widen(existing, pcv)
        return PCVRegistry(pcvs.values())

    def apply(
        self,
        decl: ExternDecl,
        args: Tuple[BV, ...],
        state: SymbolicState,
        index: int,
    ) -> ModelOutcome:
        entry = self._by_extern.get(decl.name)
        if entry is None:
            return super().apply(decl, args, state, index)
        structure, op = entry
        value: Optional[Sym] = None
        constraints: Tuple[BV, ...] = ()
        if op.returns_value:
            value = self.fresh(decl, index)
            constraints = structure.result_constraints(op.method, value, args)
        return ModelOutcome(value=value, constraints=constraints, cost=op.cost, pcvs=op.pcvs)


def bounded_value_constraint(result: BV, bound: Optional[int]) -> Tuple[BV, ...]:
    """The usual lookup-output constraint: NOT_FOUND or below ``bound``."""
    if bound is None:
        return ()
    return (
        E.bool_or(
            E.eq(result, Const(NOT_FOUND, 64)),
            E.ult(result, Const(bound, 64)),
        ),
    )
