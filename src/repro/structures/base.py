"""Common machinery of the Vigor-style stateful structure library.

The paper's NFs are all assembled from a small library of verified stateful
data structures whose performance the analysis takes on contract rather
than re-deriving (§3.2); every structure in :mod:`repro.structures` ships
the three artefacts the BOLT pipeline needs:

1. a **concrete instrumented implementation** — the structure is an
   :class:`repro.nfil.interpreter.ExternHandler` whose handlers report the
   instruction/memory cost of each call through the
   :mod:`repro.nfil.tracer` conventions, together with the PCV values the
   call actually incurred;
2. a **symbolic model** — :class:`StructureModel` plugs any set of
   structures into :class:`repro.sym.engine.SymbolicEngine`: extern outputs
   become fresh symbols (optionally constrained) and every call charges the
   PCV-parameterised cost its operation contract promises;
3. a **hand-derived per-operation contract** — one
   :class:`~repro.core.contract.PerformanceContract` entry per method
   (:meth:`Structure.operation_contract`), validated by Bolt against the
   symbolic paths in :mod:`repro.structures.validation` and against 100+
   traced concrete operations in the test suite.

The cost formulas live in each structure's :class:`OpSpec` table and are the
*single source of truth*: the symbolic model charges them verbatim, the
concrete handlers charge at most them (some fast paths charge slightly
less), and the hand contract is assembled from them.

**Per-instance PCV namespacing.**  A structure *kind* documents its cost
formulas over local PCV symbols (``t``, ``w``, ``e``); a structure
*instance* emits them under instance-qualified names
(``{instance}.{symbol}``, e.g. ``fwd.t`` vs ``rev.t`` for a NAT's two flow
tables).  The base class performs the qualification in one place
(:meth:`Structure.qualify_spec` / :meth:`Structure.pcv_name`), so the
symbolic model's charges, the concrete handlers' reported PCV
observations, the hand contract and the PCV registry all agree on the
qualified form — and two instances of the same kind inside one NF can
never alias each other's PCVs, contract columns or adversarial bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import re
import zlib

from repro.core.contract import ContractEntry, Metric, PerformanceContract
from repro.core.input_class import InputClass
from repro.core.pcv import PCV, PCVRegistry, qualify_name
from repro.core.perfexpr import PerfExpr
from repro.nfil.interpreter import ExternHandler, ExternResult
from repro.nfil.program import ExternDecl, Module
from repro.sym import expr as E
from repro.sym.engine import ModelOutcome, SymbolicModel
from repro.sym.expr import BV, Const, Sym
from repro.sym.state import SymbolicState

__all__ = [
    "NOT_FOUND",
    "OpSpec",
    "Structure",
    "StructureModel",
    "bounded_value_constraint",
    "check_extern_collisions",
    "linear_cost",
]

#: Sentinel returned by lookup-style operations for absent keys.
NOT_FOUND = (1 << 64) - 1

#: Allowed shape of a structure instance name (also the rule quoted by the
#: validation error, so users learn it from the message).  Matches the PCV
#: name-part rule in :mod:`repro.core.pcv` exactly — a looser rule here
#: would let a structure construct and then crash on its first PCV use.
#: Dots are reserved as the PCV namespace separator.
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
NAME_CHARSET = "letters, digits and underscores, not starting with a digit"


@dataclass(frozen=True)
class OpSpec:
    """The contract-facing specification of one structure operation.

    Attributes:
        method: method name; the extern is named ``"{instance}_{method}"``.
        arity: number of arguments the extern takes.
        returns_value: whether the extern produces a value.
        cost: hand-derived per-metric worst-case cost of one call, written
            over the structure's PCVs.  The symbolic model charges exactly
            this; the concrete handlers never charge more.
        pcvs: names of the PCVs the cost is written over.
        description: human-readable meaning, rendered in contract tables.
    """

    method: str
    arity: int
    returns_value: bool
    cost: Mapping[Metric, PerfExpr] = field(default_factory=dict)
    pcvs: Tuple[str, ...] = ()
    description: str = ""


def linear_cost(
    pcv: str, *, instr: Tuple[int, int], mem: Tuple[int, int]
) -> Dict[Metric, PerfExpr]:
    """Build the ``base + slope*pcv`` cost shape most operations use."""
    base_i, per_i = instr
    base_m, per_m = mem
    return {
        Metric.INSTRUCTIONS: PerfExpr.from_terms(**{pcv: per_i, "const": base_i}),
        Metric.MEMORY_ACCESSES: PerfExpr.from_terms(**{pcv: per_m, "const": base_m}),
    }


class Structure(ExternHandler):
    """Base class of every stateful structure in the library.

    A subclass defines its operation table via :meth:`ops`, implements one
    ``_op_{method}(args, memory)`` handler per operation, and declares its
    PCVs (as *local* symbols) through :meth:`pcvs`.  The base class derives
    extern declarations, the per-operation contract, the instance-qualified
    PCV registry, and the handler registrations from those tables.
    """

    #: What kind of structure this is (e.g. ``"chaining_hash_map"``).
    kind: str = "structure"

    def __init__(self, name: str) -> None:
        super().__init__()
        if not name or not _NAME_RE.match(name):
            raise ValueError(
                f"invalid structure instance name: {name!r} "
                f"(allowed characters: {NAME_CHARSET})"
            )
        self.name = name
        # A deterministic per-instance heap region for the simulated cache
        # model: derived purely from the instance name (no global counter,
        # no allocation order), so recorded address streams — and therefore
        # the bench's tail percentiles — are bit-identical across workers
        # and runs.  256 KiB-aligned regions spread instances across cache
        # sets; a rare name-hash collision merely shares lines.
        self.heap_base = 0x1000_0000 + (zlib.crc32(name.encode("utf-8")) & 0x3FFF) * 0x4_0000
        # Snapshot the op table once: op() sits on the hot concrete replay
        # path (every charge() resolves its spec).
        self._ops_by_method: Dict[str, OpSpec] = {op.method: op for op in self.ops()}
        # Qualified names are also resolved per extern call; precompute them
        # for every symbol the op table uses.
        self._qualified: Dict[str, str] = {
            symbol: qualify_name(name, symbol)
            for op in self._ops_by_method.values()
            for symbol in op.pcvs
        }
        for op in self._ops_by_method.values():
            handler = getattr(self, f"_op_{op.method}", None)
            if handler is None:
                raise TypeError(
                    f"{type(self).__name__} declares op {op.method!r} "
                    f"but implements no _op_{op.method}"
                )
            self.register(self.extern_name(op.method), handler)

    # -- the operation table (overridden by subclasses) ------------------ #
    def ops(self) -> Sequence[OpSpec]:
        """Return the operation table of the structure (local PCV symbols)."""
        raise NotImplementedError

    def pcvs(self) -> Sequence[PCV]:
        """Return the structure's PCVs as *local* symbols with instance bounds."""
        raise NotImplementedError

    def registry(self) -> PCVRegistry:
        """Return the instance-qualified PCV registry of the structure.

        Every PCV of :meth:`pcvs` is namespaced as
        ``{instance}.{symbol}``, so two instances of the same kind expose
        disjoint registries.
        """
        return PCVRegistry(pcv.qualify(self.name) for pcv in self.pcvs())

    def result_constraints(self, method: str, result: BV, args: Tuple[BV, ...]) -> Tuple[BV, ...]:
        """Symbolic assumptions about the output of a value-returning op.

        The default constrains nothing; subclasses with a known value range
        (e.g. a map storing switch ports) narrow the havoced output here.
        """
        return ()

    # -- derived plumbing ------------------------------------------------ #
    def extern_name(self, method: str) -> str:
        """Return the extern symbol of one method of this instance."""
        return f"{self.name}_{method}"

    def slot_addr(self, slot: int) -> int:
        """Model address of logical 8-byte slot ``slot`` in this instance's heap.

        Handlers use this to report *which* addresses an operation touched
        (``charge(..., touched=[...])``): slots that model the same storage
        (a bucket head, a trie node, a counter cell) map to the same
        address every call, which is what gives the cache simulator real
        re-use to observe.  The layout is a model, not an allocator — only
        identity and adjacency of slots matter, not their absolute values.
        """
        return self.heap_base + 8 * slot

    def pcv_name(self, symbol: str) -> str:
        """Return the instance-qualified name of a local PCV symbol."""
        cached = self._qualified.get(symbol)
        if cached is not None:
            return cached
        return qualify_name(self.name, symbol)

    def qualify_spec(self, op: OpSpec) -> OpSpec:
        """Return ``op`` rewritten over this instance's qualified PCVs.

        The cost formulas' variables and the spec's PCV tuple are renamed
        from local symbols (``t``) to instance-qualified names
        (``{instance}.t``); everything else is kept verbatim.
        """
        mapping = {symbol: self.pcv_name(symbol) for symbol in op.pcvs}
        return OpSpec(
            method=op.method,
            arity=op.arity,
            returns_value=op.returns_value,
            cost={metric: expr.rename(mapping) for metric, expr in op.cost.items()},
            pcvs=tuple(mapping[symbol] for symbol in op.pcvs),
            description=op.description,
        )

    def op(self, method: str) -> OpSpec:
        """Return the spec of the named operation (as snapshot at init).

        The returned spec is in *local* form; :meth:`qualify_spec` turns it
        into the instance-qualified form the contract surface emits.
        """
        try:
            return self._ops_by_method[method]
        except KeyError:
            raise KeyError(f"{self.name}: unknown operation {method!r}") from None

    def declare(self, module: Module) -> None:
        """Declare this instance's externs on ``module``."""
        for op in self.ops():
            module.declare_extern(
                self.extern_name(op.method),
                op.arity,
                returns_value=op.returns_value,
                structure=self.name,
                method=op.method,
            )

    def operation_contract(self) -> PerformanceContract:
        """The hand-derived contract: one entry per operation.

        Emitted in instance-qualified PCV form, matching what the symbolic
        model charges and what the concrete handlers report.
        """
        contract = PerformanceContract(f"{self.name}({self.kind})", registry=self.registry())
        for op in self.ops():
            qualified = self.qualify_spec(op)
            contract.add_entry(
                ContractEntry(
                    input_class=InputClass(op.method, description=op.description),
                    exprs=dict(qualified.cost),
                )
            )
        return contract

    def charge(
        self,
        method: str,
        value: Optional[int] = None,
        *,
        discount_instructions: int = 0,
        touched: Sequence[int] = (),
        **pcvs: int,
    ) -> ExternResult:
        """Build the :class:`ExternResult` of one concrete call.

        Evaluates the operation's cost formulas at the observed PCV values
        (callers pass *local* symbols, e.g. ``t=3``); the reported PCV
        observations are instance-qualified (``{"fwd.t": 3}``) so traces
        line up with the contract's namespaced variables.
        ``discount_instructions`` lets a fast path report fewer instructions
        than the worst-case formula (never more), keeping the hand contract
        a genuine upper bound rather than a tautology.

        ``touched`` optionally names the addresses the call accessed (in
        touch order, usually built with :meth:`slot_addr`) for the cache
        simulator.  The reported tuple is normalised to exactly the
        formula's access count: extra entries are dropped, and the
        remainder is padded with :attr:`heap_base` (the instance's header
        word — a realistic stand-in for the bookkeeping accesses the cost
        formula charges but the handler does not enumerate).
        """
        op = self.op(method)
        bindings = {name: pcvs.get(name, 0) for name in op.pcvs}
        instructions = op.cost[Metric.INSTRUCTIONS].evaluate_int(bindings)
        if discount_instructions < 0 or discount_instructions >= instructions:
            raise ValueError(f"bad instruction discount {discount_instructions}")
        memory_accesses = op.cost[Metric.MEMORY_ACCESSES].evaluate_int(bindings)
        accesses = tuple(touched[:memory_accesses])
        if len(accesses) < memory_accesses:
            accesses += (self.heap_base,) * (memory_accesses - len(accesses))
        return ExternResult(
            value,
            instructions=instructions - discount_instructions,
            memory_accesses=memory_accesses,
            pcvs={self.pcv_name(name): observed for name, observed in bindings.items()},
            accesses=accesses,
        )


def _widen(a: PCV, b: PCV) -> PCV:
    """Merge two same-named PCV declarations into one shared, loosest one."""
    if a == b:
        return a
    if a.max_value is None or b.max_value is None:
        max_value = None
    else:
        max_value = max(a.max_value, b.max_value)
    return PCV(
        name=a.name,
        description=a.description or b.description,
        structure=a.structure if a.structure == b.structure else None,
        min_value=min(a.min_value, b.min_value),
        max_value=max_value,
        unit=a.unit or b.unit,
    )


def check_extern_collisions(structures: Sequence[Structure]) -> None:
    """Reject structure sets whose mangled extern names collide.

    Externs are mangled ``{instance}_{method}``, which is ambiguous when
    underscores straddle the boundary: instance ``a_b`` with method ``c``
    and instance ``a`` with method ``b_c`` both mangle to ``a_b_c``.  A
    collision would silently cross-wire dispatch, cost attribution and
    trace matching, so every aggregation point (the symbolic model, the
    harness handler merge, the module's extern declarations) must refuse
    it loudly.

    Two *distinct* instances sharing one name are rejected for the same
    reason: their externs mangle identically, so the symbolic model would
    silently rebind dispatch to whichever instance came last (while the
    concrete handler merge errors), splitting the two pipelines.  The same
    instance object appearing twice is fine.

    Raises:
        ValueError: two distinct (instance, method) claims — from
            different names or different objects under one name — produce
            the same extern symbol.
    """
    owners: Dict[str, Tuple[int, str, str]] = {}
    for structure in structures:
        for op in structure.ops():
            extern = structure.extern_name(op.method)
            claim = (id(structure), structure.name, op.method)
            existing = owners.get(extern)
            if existing is not None and existing != claim:
                if existing[1:] == claim[1:]:
                    raise ValueError(
                        f"two distinct structure instances both named "
                        f"{structure.name!r} claim extern {extern!r}; "
                        f"instance names must be unique"
                    )
                raise ValueError(
                    f"extern name {extern!r} is ambiguous after mangling: "
                    f"instance {existing[1]!r} method {existing[2]!r} vs "
                    f"instance {claim[1]!r} method {claim[2]!r}"
                )
            owners[extern] = claim


class StructureModel(SymbolicModel):
    """Symbolic model over any set of library structures.

    Dispatches each extern call to the owning structure's operation table:
    value-returning operations havoc their output (constrained by the
    structure's :meth:`~Structure.result_constraints`) and every call
    charges the PCV-parameterised cost its operation contract promises —
    byte-for-byte the formulas the concrete handlers charge, in the
    instance-qualified PCV form (``fwd.t``, never bare ``t``).
    """

    def __init__(self, *structures: Structure) -> None:
        check_extern_collisions(structures)
        self._by_extern: Dict[str, Tuple[Structure, OpSpec]] = {}
        for structure in structures:
            for op in structure.ops():
                self._by_extern[structure.extern_name(op.method)] = (
                    structure,
                    structure.qualify_spec(op),
                )

    def registry(self) -> PCVRegistry:
        """Return the merged PCV registry of all modelled structures.

        Instance qualification makes the per-structure registries disjoint
        by construction (``fwd.t`` vs ``rev.t``), so the merge is a plain
        union; same-named declarations (only possible for one instance
        registered twice with drifting bounds) are widened defensively
        rather than rejected.
        """
        pcvs: Dict[str, PCV] = {}
        seen: set[int] = set()
        for structure, _ in self._by_extern.values():
            if id(structure) in seen:
                continue
            seen.add(id(structure))
            for pcv in structure.registry():
                existing = pcvs.get(pcv.name)
                pcvs[pcv.name] = pcv if existing is None else _widen(existing, pcv)
        return PCVRegistry(pcvs.values())

    def apply(
        self,
        decl: ExternDecl,
        args: Tuple[BV, ...],
        state: SymbolicState,
        index: int,
    ) -> ModelOutcome:
        entry = self._by_extern.get(decl.name)
        if entry is None:
            return super().apply(decl, args, state, index)
        structure, op = entry
        value: Optional[Sym] = None
        constraints: Tuple[BV, ...] = ()
        if op.returns_value:
            value = self.fresh(decl, index)
            constraints = structure.result_constraints(op.method, value, args)
        return ModelOutcome(value=value, constraints=constraints, cost=op.cost, pcvs=op.pcvs)


def bounded_value_constraint(result: BV, bound: Optional[int]) -> Tuple[BV, ...]:
    """The usual lookup-output constraint: NOT_FOUND or below ``bound``."""
    if bound is None:
        return ()
    return (
        E.bool_or(
            E.eq(result, Const(NOT_FOUND, 64)),
            E.ult(result, Const(bound, 64)),
        ),
    )
