"""Longest-prefix-match trie over 32-bit (IPv4) addresses.

A binary trie: each level tests one address bit (most significant first),
and a lookup walks from the root remembering the value of the deepest node
that carries one.  The cost of a lookup is linear in the number of trie
nodes visited — the PCV ``d``, bounded by 33 (the root plus one node per
address bit), which is the paper's "prefix depth" PCV for LPM routers
(§2.2: PCVs may describe coarse input properties, not just state).

Route insertion is *configuration* (control plane), not a per-packet
operation, so only ``lookup`` is exposed as an extern; ``add_route`` is a
host-side method used to build the FIB before traffic runs.

Hand-derived per-operation contract (PCV ``d`` = trie nodes visited):

==========  ==================  ===================
operation   instructions        memory accesses
==========  ==================  ===================
``lookup``  ``3 + 5·d``         ``1 + 2·d``
==========  ==================  ===================

**PCVs.**  ``d`` — trie nodes visited by one lookup, declared with
``max_value = 33`` (:data:`MAX_DEPTH`): the root plus one node per
address bit, a bound fixed by IPv4 itself rather than by configuration.

**Worst case.**  ``d = 33`` requires a FIB with a route chain covering
every prefix length 1–32 along the looked-up address —
:func:`repro.nf.workloads.router_fib_routes` installs exactly that chain
and the router's adversarial stream routes its tip, so the bound is
provably attained (not just declared).  A miss below an empty root costs
``d = 1``; the miss fast path charges one instruction under the formula
(no next-hop copy), keeping the contract strict.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.pcv import PCV
from repro.nfil.interpreter import ExternResult, Memory
from repro.structures.base import (
    NOT_FOUND,
    OpSpec,
    Structure,
    bounded_value_constraint,
    linear_cost,
)
from repro.sym.expr import BV

__all__ = ["LpmTrie"]

ADDRESS_BITS = 32
#: Deepest possible lookup: the root plus one node per address bit.
MAX_DEPTH = ADDRESS_BITS + 1

_LOOKUP = linear_cost("d", instr=(3, 5), mem=(1, 2))


class _Node:
    __slots__ = ("children", "value")

    def __init__(self) -> None:
        self.children: Dict[int, "_Node"] = {}
        self.value: Optional[int] = None


class LpmTrie(Structure):
    """Instrumented binary LPM trie (IPv4 prefix -> 64-bit value).

    Args:
        name: instance name; the lookup extern is ``{name}_lookup``.
        value_bound: when given, the symbolic model constrains lookup
            outputs to ``NOT_FOUND`` or a value below this bound (e.g. the
            number of router ports).
    """

    kind = "lpm_trie"

    def __init__(self, name: str, *, value_bound: Optional[int] = None) -> None:
        self.value_bound = value_bound
        self._root = _Node()
        self._routes = 0
        super().__init__(name)

    # ------------------------------------------------------------------ #
    # Contract surface
    # ------------------------------------------------------------------ #
    def ops(self) -> Sequence[OpSpec]:
        return (
            OpSpec(
                "lookup",
                1,
                True,
                _LOOKUP,
                ("d",),
                "longest-prefix match; NOT_FOUND when no prefix covers the address",
            ),
        )

    def pcvs(self) -> Sequence[PCV]:
        return (
            PCV(
                "d",
                "trie nodes visited by one LPM lookup",
                structure=self.name,
                max_value=MAX_DEPTH,
                unit="nodes",
            ),
        )

    def result_constraints(self, method: str, result: BV, args: Tuple[BV, ...]) -> Tuple[BV, ...]:
        if method == "lookup":
            return bounded_value_constraint(result, self.value_bound)
        return ()

    # ------------------------------------------------------------------ #
    # Control plane (host-side configuration, not traced)
    # ------------------------------------------------------------------ #
    def add_route(self, prefix: int, length: int, value: int) -> None:
        """Install ``value`` for ``prefix/length`` (host byte order)."""
        if not 0 <= length <= ADDRESS_BITS:
            raise ValueError(f"prefix length {length} out of [0, {ADDRESS_BITS}]")
        if not 0 <= prefix < (1 << ADDRESS_BITS):
            raise ValueError(f"prefix {prefix:#x} is not a 32-bit address")
        if value == NOT_FOUND:
            raise ValueError("value collides with the NOT_FOUND sentinel")
        node = self._root
        for level in range(length):
            bit = (prefix >> (ADDRESS_BITS - 1 - level)) & 1
            node = node.children.setdefault(bit, _Node())
        if node.value is None:
            self._routes += 1
        node.value = value

    def route_count(self) -> int:
        """Number of installed prefixes."""
        return self._routes

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def lookup(self, address: int) -> Tuple[Optional[int], int]:
        """Return ``(value of the longest match or None, nodes visited)``."""
        node = self._root
        visited = 1
        best = node.value
        for level in range(ADDRESS_BITS):
            bit = (address >> (ADDRESS_BITS - 1 - level)) & 1
            child = node.children.get(bit)
            if child is None:
                break
            node = child
            visited += 1
            if node.value is not None:
                best = node.value
        return best, visited

    def _path_touched(self, address: int, visited: int) -> list:
        """Addresses of the visited trie path, two words per node.

        A node is identified by (level, prefix bits so far), so every
        lookup re-touches the root and the shared top levels — the "hot
        top of the trie" locality the realistic model could only assume.
        Prefixes alias into 512 slots per level to keep the model heap
        inside the instance's region; aliasing is deterministic, so the
        stream stays reproducible.
        """
        touched = []
        for level in range(visited):
            prefix = address >> (ADDRESS_BITS - level) if level else 0
            slot = level * 512 + (prefix & 511)
            touched.append(self.slot_addr(2 * slot))
            touched.append(self.slot_addr(2 * slot + 1))
        return touched

    def _op_lookup(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (address,) = args
        address &= (1 << ADDRESS_BITS) - 1
        value, visited = self.lookup(address)
        touched = self._path_touched(address, visited)
        if value is None:
            # Miss fast path: no next-hop copy.
            return self.charge(
                "lookup", NOT_FOUND, d=visited, discount_instructions=1, touched=touched
            )
        return self.charge("lookup", value, d=visited, touched=touched)
