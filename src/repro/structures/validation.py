"""Bolt cross-validation of the hand-derived structure contracts.

The paper trusts the library's contracts the way Vigor trusts its proofs
(§3.2); this module earns that trust mechanically instead.

Each structure in the library promises a hand-derived per-operation cost
(:meth:`repro.structures.base.Structure.operation_contract`).  This module
closes the loop: for every operation it synthesises a one-call NFIL driver,
runs the full Bolt pipeline over it with the structure's symbolic model,
and checks that the generated contract agrees with the hand-derived one on
every PCV term — the only admissible difference is the (constant,
non-negative) stateless cost of the driver itself.

A disagreement means the symbolic model charges something other than what
the structure's documented contract promises, which is exactly the
regression the CI contract-smoke step exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from repro.core.bolt import Bolt, BoltConfig
from repro.core.contract import Metric, PerformanceContract
from repro.core.perfexpr import PerfExpr
from repro.nfil.builder import FunctionBuilder
from repro.nfil.program import Module
from repro.nfil.validate import validate_module
from repro.structures.base import Structure, StructureModel
from repro.sym.expr import Sym

__all__ = [
    "OperationCheck",
    "StructureContractError",
    "bolt_operation_contract",
    "operation_module",
    "validate_structure_contract",
]


class StructureContractError(ValueError):
    """Bolt disagrees with a structure's hand-derived contract."""


def operation_module(structure: Structure, method: str) -> Tuple[Module, str]:
    """Synthesise a minimal NFIL driver calling one operation once."""
    op = structure.op(method)
    module = Module(f"{structure.name}_{method}_driver")
    structure.declare(module)
    function_name = f"drive_{method}"
    b = FunctionBuilder(function_name, params=tuple(f"a{i}" for i in range(op.arity)))
    args = [b.param(f"a{i}") for i in range(op.arity)]
    if op.returns_value:
        result = b.call(structure.extern_name(method), *args, name="result")
        b.ret(result)
    else:
        b.call(structure.extern_name(method), *args, void=True)
        b.ret(0)
    module.add_function(b.build())
    return validate_module(module), function_name


def bolt_operation_contract(structure: Structure, method: str) -> PerformanceContract:
    """Run Bolt end-to-end on the one-operation driver."""
    module, function_name = operation_module(structure, method)
    bolt = Bolt(
        module,
        function_name,
        model=StructureModel(structure),
        registry=structure.registry(),
        config=BoltConfig(classifier=lambda path: method),
    )
    op = structure.op(method)
    return bolt.generate([Sym(f"a{i}", 64) for i in range(op.arity)])


@dataclass(frozen=True)
class OperationCheck:
    """Outcome of validating one operation's contract against Bolt.

    ``driver_overhead`` is the per-metric constant by which the generated
    expression exceeds the hand-derived one: the stateless instruction and
    memory cost of the synthesised driver.
    """

    structure: str
    method: str
    hand: Dict[Metric, PerfExpr]
    generated: Dict[Metric, PerfExpr]
    driver_overhead: Dict[Metric, Fraction]


def validate_structure_contract(
    structure: Structure,
    *,
    metrics: Sequence[Metric] = (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES),
) -> List[OperationCheck]:
    """Validate every operation of ``structure`` against Bolt.

    Returns one :class:`OperationCheck` per operation.

    Raises:
        StructureContractError: the Bolt-generated cost differs from the
            hand-derived cost by anything other than a non-negative
            constant (the driver's stateless cost).
    """
    checks: List[OperationCheck] = []
    for op in structure.ops():
        # Re-read the promise fresh (never the init-time snapshot) and
        # qualify it, so a structure whose ops() drifts after construction
        # is caught as a mismatch instead of validated against itself.
        hand_spec = structure.qualify_spec(op)
        contract = bolt_operation_contract(structure, op.method)
        entry = contract.entry_for(op.method)
        overhead: Dict[Metric, Fraction] = {}
        for metric in metrics:
            hand = hand_spec.cost.get(metric, PerfExpr.zero())
            generated = entry.expr(metric)
            diff = generated - hand
            if not diff.is_constant() or diff.constant_term() < 0:
                raise StructureContractError(
                    f"{structure.name}.{op.method} [{metric}]: Bolt derived "
                    f"'{generated}' but the hand contract promises '{hand}' "
                    f"(difference '{diff}' is not a non-negative constant)"
                )
            overhead[metric] = diff.constant_term()
        checks.append(
            OperationCheck(
                structure=structure.name,
                method=op.method,
                hand={metric: hand_spec.cost.get(metric, PerfExpr.zero()) for metric in metrics},
                generated={metric: entry.expr(metric) for metric in metrics},
                driver_overhead=overhead,
            )
        )
    return checks
