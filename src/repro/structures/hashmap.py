"""Chaining hash map: the workhorse structure of the Vigor-style library.

Keys hash into a fixed array of buckets; colliding entries chain off the
bucket as a linked list.  Every operation's cost is linear in the number of
chain links it inspects, which is exactly the PCV ``t`` the paper's bridge
and NAT contracts are written over (§2.2, Table 4; the hash-table
traversal bound shows up throughout the §5 evaluation).

Hand-derived per-operation contract (PCV ``t`` = chain links inspected):

=========  ======================  =====================
operation  instructions            memory accesses
=========  ======================  =====================
``get``    ``5 + 6·t``             ``2 + 2·t``
``put``    ``8 + 6·t``             ``3 + 2·t``
``remove`` ``6 + 6·t``             ``2 + 2·t``
=========  ======================  =====================

The concrete handlers charge these formulas at the observed ``t``, minus a
small fast-path discount where the real code does less work (a miss skips
the value copy, a refreshing ``put`` skips the link allocation), so the
contract is a genuine upper bound on the traced executions.

**PCVs.**  ``t`` — chain links inspected by one operation, declared with
``max_value = capacity``: with a fixed allocation, one bucket can hold at
most every stored entry.

**Worst case.**  ``t = capacity`` requires ``capacity`` keys sharing one
bucket — constructible for any geometry by hash search
(:func:`repro.nf.workloads.colliding_keys`), which is how the bridge and
NAT adversarial streams drive their tables' ``t`` to the declared bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pcv import PCV
from repro.nfil.interpreter import ExternResult, Memory
from repro.structures.base import (
    NOT_FOUND,
    OpSpec,
    Structure,
    bounded_value_constraint,
    linear_cost,
)
from repro.sym.expr import BV

__all__ = ["ChainingHashMap"]

_GET = linear_cost("t", instr=(5, 6), mem=(2, 2))
_PUT = linear_cost("t", instr=(8, 6), mem=(3, 2))
_REMOVE = linear_cost("t", instr=(6, 6), mem=(2, 2))


class ChainingHashMap(Structure):
    """Instrumented chaining hash map (key -> 64-bit value).

    Args:
        name: instance name; externs are ``{name}_get`` / ``{name}_put`` /
            ``{name}_remove``.
        capacity: maximum number of stored entries; inserts beyond it are
            dropped (the Vigor maps never grow past their allocation).
        buckets: number of hash buckets (defaults to ``capacity``).
        value_bound: when given, the symbolic model constrains ``get``
            outputs to ``NOT_FOUND`` or a value below this bound (e.g. the
            number of switch ports).
    """

    kind = "chaining_hash_map"

    def __init__(
        self,
        name: str,
        *,
        capacity: int = 64,
        buckets: Optional[int] = None,
        value_bound: Optional[int] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.buckets = buckets if buckets is not None else capacity
        if self.buckets <= 0:
            raise ValueError("buckets must be positive")
        self.value_bound = value_bound
        # bucket index -> chain of [key, value] links, head first.
        self._chains: Dict[int, List[List[int]]] = {}
        self._size = 0
        super().__init__(name)

    # ------------------------------------------------------------------ #
    # Contract surface
    # ------------------------------------------------------------------ #
    def ops(self) -> Sequence[OpSpec]:
        return (
            OpSpec("get", 1, True, _GET, ("t",), "look a key up; NOT_FOUND on miss"),
            OpSpec("put", 2, False, _PUT, ("t",), "insert or refresh a key"),
            OpSpec("remove", 1, False, _REMOVE, ("t",), "delete a key if present"),
        )

    def pcvs(self) -> Sequence[PCV]:
        return (
            PCV(
                "t",
                "chain links inspected in one hash-map operation",
                structure=self.name,
                max_value=self.capacity,
                unit="links",
            ),
        )

    def result_constraints(self, method: str, result: BV, args: Tuple[BV, ...]) -> Tuple[BV, ...]:
        if method == "get":
            return bounded_value_constraint(result, self.value_bound)
        return ()

    # ------------------------------------------------------------------ #
    # Core map logic (shared with composing structures)
    # ------------------------------------------------------------------ #
    def _hash(self, key: int) -> int:
        return ((key * 2654435761) ^ (key >> 29)) % self.buckets

    def occupancy(self) -> int:
        """Number of stored entries."""
        return self._size

    def keys(self) -> List[int]:
        """All stored keys (diagnostics and composing structures)."""
        return [link[0] for chain in self._chains.values() for link in chain]

    def lookup(self, key: int) -> Tuple[Optional[int], int]:
        """Return ``(value or None, links inspected)``."""
        chain = self._chains.get(self._hash(key), [])
        for traversed, link in enumerate(chain, start=1):
            if link[0] == key:
                return link[1], traversed
        return None, len(chain)

    def insert(self, key: int, value: int) -> Tuple[str, int]:
        """Insert or refresh; return ``(status, links inspected)``.

        ``status`` is ``"refreshed"`` (key existed), ``"inserted"`` (new
        link appended) or ``"dropped"`` — a full map drops brand-new keys,
        matching the fixed-allocation Vigor maps.
        """
        if value == NOT_FOUND:
            raise ValueError("value collides with the NOT_FOUND sentinel")
        chain = self._chains.setdefault(self._hash(key), [])
        for traversed, link in enumerate(chain, start=1):
            if link[0] == key:
                link[1] = value
                return "refreshed", traversed
        if self._size >= self.capacity:
            return "dropped", len(chain)
        chain.append([key, value])
        self._size += 1
        return "inserted", len(chain) - 1

    def delete(self, key: int) -> Tuple[bool, int]:
        """Delete; return ``(removed, links inspected)``."""
        bucket = self._hash(key)
        chain = self._chains.get(bucket, [])
        for traversed, link in enumerate(chain, start=1):
            if link[0] == key:
                chain.remove(link)
                self._size -= 1
                if not chain:
                    del self._chains[bucket]
                return True, traversed
        return False, len(chain)

    def chain_touched(self, key: int, traversed: int) -> List[int]:
        """Addresses one operation touched: bucket head, then chain links.

        Link *i* of bucket *b* lives at a stable pair of slots (key word,
        value word) in the instance's heap region, so re-walking a hot
        bucket re-touches the same cache lines — the locality the cache
        simulator is there to observe.  (Positions are stable per (bucket,
        index), a faithful model of a chain that only ever appends and
        compacts.)
        """
        bucket = self._hash(key)
        base = self.buckets + 2 * bucket * self.capacity
        touched = [self.slot_addr(bucket)]
        for i in range(traversed):
            touched.append(self.slot_addr(base + 2 * i))
            touched.append(self.slot_addr(base + 2 * i + 1))
        return touched

    # ------------------------------------------------------------------ #
    # Instrumented extern handlers
    # ------------------------------------------------------------------ #
    def _op_get(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (key,) = args
        value, traversed = self.lookup(key)
        touched = self.chain_touched(key, traversed)
        if value is None:
            # Miss fast path: no value copy.
            return self.charge(
                "get", NOT_FOUND, t=traversed, discount_instructions=1, touched=touched
            )
        return self.charge("get", value, t=traversed, touched=touched)

    def _op_put(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        key, value = args
        status, traversed = self.insert(key, value)
        touched = self.chain_touched(key, traversed)
        if status == "refreshed":
            # Refresh fast path: no link allocation.
            return self.charge(
                "put", t=traversed, discount_instructions=1, touched=touched
            )
        return self.charge("put", t=traversed, touched=touched)

    def _op_remove(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (key,) = args
        _, traversed = self.delete(key)
        return self.charge(
            "remove", t=traversed, touched=self.chain_touched(key, traversed)
        )
