"""Port allocator: the lease pool behind the NAT's external ports.

VigNAT-style NATs pair their flow tables with an allocator that hands out
external ports (the paper's §5 NAT keeps a pool alongside the double map).
This reproduction models the allocator as the simplest structure that is
honest about cost: a pre-computed free list served LIFO, so both
``alloc`` and ``release`` are constant-time — the allocator contributes
**no** PCVs, and the NAT contract's state-dependent terms come entirely
from the two flow tables.

The pool is explicit configuration: the host hands the allocator the exact
port numbers it may lease (``PortAllocator("ports", pool=range(1024,
1088))``).  That makes adversarial workloads able to pick pools whose
ports collide in the reverse flow table's hash — the lever that drives
``rev.t`` to its declared bound.

Hand-derived per-operation contract (no PCVs; constant formulas):

===========  ==============  ===============
operation    instructions    memory accesses
===========  ==============  ===============
``alloc``    ``6``           ``2``
``release``  ``5``           ``2``
===========  ==============  ===============

**PCVs: none.**  A LIFO free list pops and pushes at the tail whatever
the pool size or lease pattern, so no state-dependent variable exists to
parameterise — the structure's contribution to any NF contract is the
constant rows above.

**Worst case.**  Identical to the best case, by construction: ``alloc``
is one pop plus one membership insert, ``release`` one membership discard
plus one push, regardless of history.  (The allocator still *shapes*
worst cases elsewhere: the NAT's adversarial stream chooses a pool whose
ports collide in the reverse flow table, driving ``rev.t`` — the
state-dependent cost lives in the map, not here.)  The only fast paths
are the exhausted ``alloc`` and the unknown-port ``release``, each one
instruction cheaper than the formula.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.contract import Metric
from repro.core.pcv import PCV
from repro.core.perfexpr import PerfExpr
from repro.nfil.interpreter import ExternResult, Memory
from repro.structures.base import NOT_FOUND, OpSpec, Structure, bounded_value_constraint
from repro.sym.expr import BV

__all__ = ["PortAllocator"]

_ALLOC = {
    Metric.INSTRUCTIONS: PerfExpr.constant(6),
    Metric.MEMORY_ACCESSES: PerfExpr.constant(2),
}
_RELEASE = {
    Metric.INSTRUCTIONS: PerfExpr.constant(5),
    Metric.MEMORY_ACCESSES: PerfExpr.constant(2),
}


class PortAllocator(Structure):
    """Instrumented LIFO free-list allocator over an explicit port pool.

    Args:
        name: instance name; externs are ``{name}_alloc`` /
            ``{name}_release``.
        pool: the exact port numbers the allocator may lease, in the order
            they should be handed out first-to-last.  Must be non-empty,
            duplicate-free and free of the ``NOT_FOUND`` sentinel.
    """

    kind = "port_allocator"

    def __init__(self, name: str, *, pool: Iterable[int]) -> None:
        ports = list(pool)
        if not ports:
            raise ValueError("port pool must be non-empty")
        if len(set(ports)) != len(ports):
            raise ValueError("port pool contains duplicates")
        if NOT_FOUND in ports:
            raise ValueError("port collides with the NOT_FOUND sentinel")
        if any(not 0 <= port < (1 << 16) for port in ports):
            raise ValueError("ports must be 16-bit values")
        self.pool: Tuple[int, ...] = tuple(ports)
        # Free list kept reversed so .pop() serves pool order first-to-last.
        self._free: List[int] = list(reversed(ports))
        self._leased: Set[int] = set()
        super().__init__(name)

    # ------------------------------------------------------------------ #
    # Contract surface
    # ------------------------------------------------------------------ #
    def ops(self) -> Sequence[OpSpec]:
        return (
            OpSpec("alloc", 0, True, _ALLOC, (), "lease a free port; NOT_FOUND when exhausted"),
            OpSpec("release", 1, False, _RELEASE, (), "return a leased port to the pool"),
        )

    def pcvs(self) -> Sequence[PCV]:
        return ()

    def result_constraints(self, method: str, result: BV, args: Tuple[BV, ...]) -> Tuple[BV, ...]:
        if method == "alloc":
            # Bound by the port space, not max(pool)+1: the contract must
            # stay valid for any pool the deployment (or a workload)
            # configures, and every pool is validated to be 16-bit.
            return bounded_value_constraint(result, 1 << 16)
        return ()

    # ------------------------------------------------------------------ #
    # Core logic (usable directly by tests and workload builders)
    # ------------------------------------------------------------------ #
    def available(self) -> int:
        """Number of ports still free."""
        return len(self._free)

    def leased(self) -> int:
        """Number of ports currently leased."""
        return len(self._leased)

    def take(self) -> int:
        """Lease one port; ``NOT_FOUND`` when the pool is exhausted."""
        if not self._free:
            return NOT_FOUND
        port = self._free.pop()
        self._leased.add(port)
        return port

    def give_back(self, port: int) -> bool:
        """Return a leased port; False when it was not leased."""
        if port not in self._leased:
            return False
        self._leased.discard(port)
        self._free.append(port)
        return True

    # ------------------------------------------------------------------ #
    # Instrumented extern handlers
    # ------------------------------------------------------------------ #
    def _op_alloc(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        port = self.take()
        if port == NOT_FOUND:
            # Exhausted fast path: no free-list pop (only the header read).
            return self.charge(
                "alloc", NOT_FOUND, discount_instructions=1, touched=[self.slot_addr(0)]
            )
        # Free-list tail word, then the leased-set slot of the port.
        touched = [self.slot_addr(1 + len(self._free)), self.slot_addr(self._lease_slot(port))]
        return self.charge("alloc", port, touched=touched)

    def _lease_slot(self, port: int) -> int:
        # Leased-set membership word: one slot per pool port, after the
        # header word and the free-list array.
        return 2 + len(self.pool) + port % len(self.pool)

    def _op_release(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (port,) = args
        if not self.give_back(port):
            # Unknown-port fast path: nothing returned to the list.
            return self.charge(
                "release",
                discount_instructions=1,
                touched=[self.slot_addr(self._lease_slot(port))],
            )
        touched = [self.slot_addr(self._lease_slot(port)), self.slot_addr(len(self._free))]
        return self.charge("release", touched=touched)
