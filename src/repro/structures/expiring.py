"""Expiring map: a chaining hash map with time-wheel expiry.

The structure behind every learning/flow table in the paper's NFs (the
bridge's MAC table of Table 4, VigNAT's flow table — whose expiry term
``e`` drives the §5.3 batching finding): entries
are inserted (or refreshed) with a deadline ``now + timeout`` and an
``expire(now)`` sweep removes the ones whose deadline passed.  Deadlines are
indexed in a **time wheel** — a ring of ``wheel_slots`` buckets, one per
time tick — so a sweep only visits the slots between the previous ``now``
and the current one instead of scanning the whole table.

Hand-derived per-operation contract (PCVs: ``w`` wheel slots advanced,
``e`` entries expired, ``t`` chain links inspected):

==========  =========================  ====================
operation   instructions               memory accesses
==========  =========================  ====================
``expire``  ``4 + 3·w + 9·e``          ``2 + w + 4·e``
``put``     ``10 + 6·t``               ``4 + 2·t``
``get``     ``6 + 6·t``                ``2 + 2·t``
==========  =========================  ====================

The wheel must have more slots than the timeout spans ticks
(``wheel_slots > timeout``): every live deadline then lies at most one full
revolution ahead, so a sweep capped at ``wheel_slots`` advanced slots never
misses an expired entry.

**PCVs.**  ``t`` — chain links inspected (bound ``capacity``, as in
:mod:`repro.structures.hashmap`); ``w`` — wheel slots advanced by one
sweep (bound ``wheel_slots``: the advance is capped at one revolution);
``e`` — entries expired by one sweep (bound ``capacity``).

**Worst case.**  All three bounds are attained by one two-phase stream:
insert ``capacity`` colliding keys (a tail refresh then inspects
``t = capacity`` links), and jump time a full revolution past every
deadline (one sweep advances ``w = wheel_slots`` slots and expires
``e = capacity`` entries) — the shape of every ``*_adversarial`` workload
built on this structure.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.core.contract import Metric
from repro.core.pcv import PCV
from repro.core.perfexpr import PerfExpr
from repro.nfil.interpreter import ExternResult, Memory
from repro.structures.base import (
    NOT_FOUND,
    OpSpec,
    Structure,
    bounded_value_constraint,
    linear_cost,
)
from repro.structures.hashmap import ChainingHashMap
from repro.sym.expr import BV

__all__ = ["ExpiringMap"]

_EXPIRE = {
    Metric.INSTRUCTIONS: PerfExpr.from_terms(w=3, e=9, const=4),
    Metric.MEMORY_ACCESSES: PerfExpr.from_terms(w=1, e=4, const=2),
}
_PUT = linear_cost("t", instr=(10, 6), mem=(4, 2))
_GET = linear_cost("t", instr=(6, 6), mem=(2, 2))


class ExpiringMap(Structure):
    """Instrumented expiring map (key -> 64-bit value, time-wheel expiry).

    Args:
        name: instance name; externs are ``{name}_expire`` / ``{name}_put``
            / ``{name}_get``.
        capacity: maximum number of live entries.
        timeout: entries expire ``timeout`` ticks after their last refresh.
        wheel_slots: size of the time wheel; must exceed ``timeout``
            (defaults to ``timeout + 1``).
        buckets: hash buckets of the underlying chaining map.
        value_bound: when given, the symbolic model constrains ``get``
            outputs to ``NOT_FOUND`` or a value below this bound.
    """

    kind = "expiring_map"

    def __init__(
        self,
        name: str,
        *,
        capacity: int = 64,
        timeout: int = 300,
        wheel_slots: Optional[int] = None,
        buckets: Optional[int] = None,
        value_bound: Optional[int] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self.wheel_slots = wheel_slots if wheel_slots is not None else timeout + 1
        if self.wheel_slots <= timeout:
            raise ValueError(f"wheel_slots ({self.wheel_slots}) must exceed timeout ({timeout})")
        self.capacity = capacity
        self.value_bound = value_bound
        self.now = 0
        self._map = ChainingHashMap(f"{name}_inner", capacity=capacity, buckets=buckets)
        self._deadline: Dict[int, int] = {}
        # wheel slot (deadline % wheel_slots) -> keys due in that slot.
        self._wheel: Dict[int, Set[int]] = {}
        super().__init__(name)

    # ------------------------------------------------------------------ #
    # Contract surface
    # ------------------------------------------------------------------ #
    def ops(self) -> Sequence[OpSpec]:
        return (
            OpSpec("expire", 1, False, _EXPIRE, ("w", "e"), "sweep entries past their deadline"),
            OpSpec("put", 2, False, _PUT, ("t",), "insert or refresh a key's value and deadline"),
            OpSpec("get", 1, True, _GET, ("t",), "look a key up; NOT_FOUND on miss"),
        )

    def pcvs(self) -> Sequence[PCV]:
        return (
            PCV(
                "w",
                "time-wheel slots advanced by one expiry sweep",
                structure=self.name,
                max_value=self.wheel_slots,
                unit="slots",
            ),
            PCV(
                "e",
                "entries expired by one expiry sweep",
                structure=self.name,
                max_value=self.capacity,
                unit="entries",
            ),
            PCV(
                "t",
                "chain links inspected in one hash-map operation",
                structure=self.name,
                max_value=self.capacity,
                unit="links",
            ),
        )

    def result_constraints(self, method: str, result: BV, args: Tuple[BV, ...]) -> Tuple[BV, ...]:
        if method == "get":
            return bounded_value_constraint(result, self.value_bound)
        return ()

    # ------------------------------------------------------------------ #
    # Core logic (usable directly by tests and composing code)
    # ------------------------------------------------------------------ #
    def occupancy(self) -> int:
        """Number of live entries."""
        return self._map.occupancy()

    def _unschedule(self, key: int) -> None:
        deadline = self._deadline.pop(key, None)
        if deadline is None:
            return
        slot = self._wheel.get(deadline % self.wheel_slots)
        if slot is not None:
            slot.discard(key)
            if not slot:
                del self._wheel[deadline % self.wheel_slots]

    def insert(self, key: int, value: int, now: Optional[int] = None) -> Tuple[str, int]:
        """Insert or refresh ``key`` at time ``now`` (defaults to the last sweep).

        Passing a ``now`` ahead of the wheel cursor sweeps first: the cursor
        must never skip ticks, or entries due in the skipped slots would
        outlive their deadline by a full wheel revolution.
        """
        if now is not None:
            self.sweep(now)
        status, traversed = self._map.insert(key, value)
        if status != "dropped":
            self._unschedule(key)
            deadline = self.now + self.timeout
            self._deadline[key] = deadline
            self._wheel.setdefault(deadline % self.wheel_slots, set()).add(key)
        return status, traversed

    def sweep(self, now: int) -> Tuple[int, int]:
        """Advance the wheel to ``now``; return ``(slots advanced, expired)``."""
        if now <= self.now:
            return 0, 0
        advanced = min(now - self.now, self.wheel_slots)
        expired = 0
        for tick in range(self.now + 1, self.now + advanced + 1):
            slot = self._wheel.get(tick % self.wheel_slots)
            if not slot:
                continue
            for key in [k for k in slot if self._deadline.get(k, now + 1) <= now]:
                self._unschedule(key)
                self._map.delete(key)
                expired += 1
        self.now = now
        return advanced, expired

    # ------------------------------------------------------------------ #
    # Instrumented extern handlers
    # ------------------------------------------------------------------ #
    def _op_expire(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (now,) = args
        previous = self.now
        advanced, expired = self.sweep(now)
        if advanced == 0:
            # Idle fast path: the wheel cursor did not move.
            return self.charge(
                "expire", w=0, e=0, discount_instructions=1, touched=[self.slot_addr(0)]
            )
        # The sweep reads each advanced wheel slot; the per-entry unlink
        # work is covered by the charge() padding.  Wheel slots occupy this
        # instance's own heap region (the chain data lives in the inner
        # map's region), so a sweep and a lookup exercise disjoint lines.
        touched = [
            self.slot_addr(tick % self.wheel_slots)
            for tick in range(previous + 1, previous + advanced + 1)
        ]
        return self.charge("expire", w=advanced, e=expired, touched=touched)

    def _op_put(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        key, value = args
        status, traversed = self.insert(key, value)
        touched = self._map.chain_touched(key, traversed)
        touched.append(self.slot_addr((self.now + self.timeout) % self.wheel_slots))
        if status == "refreshed":
            # Refresh fast path: no link allocation.
            return self.charge(
                "put", t=traversed, discount_instructions=1, touched=touched
            )
        return self.charge("put", t=traversed, touched=touched)

    def _op_get(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (key,) = args
        value, traversed = self._map.lookup(key)
        touched = self._map.chain_touched(key, traversed)
        if value is None:
            # Miss fast path: no value copy.
            return self.charge(
                "get", NOT_FOUND, t=traversed, discount_instructions=1, touched=touched
            )
        return self.charge("get", value, t=traversed, touched=touched)
