"""The Vigor-style stateful data-structure library.

Every NF in this repository is split, as in the paper, into stateless NFIL
code and calls into a small library of stateful structures.  Each structure
here ships the three artefacts the BOLT pipeline needs — a concrete
instrumented implementation (an extern handler charging documented cost
formulas), a symbolic model (via :class:`~repro.structures.base.StructureModel`),
and a hand-derived per-operation performance contract — plus the machinery
in :mod:`repro.structures.validation` that cross-checks the contract
against Bolt's symbolic paths.

Structures:

* :class:`~repro.structures.hashmap.ChainingHashMap` — hash map with
  chaining (PCV ``t``, chain links inspected).
* :class:`~repro.structures.expiring.ExpiringMap` — hash map with
  time-wheel expiry (PCVs ``w``/``e``/``t``); backs the MAC bridge.
* :class:`~repro.structures.lpm.LpmTrie` — longest-prefix-match trie over
  IPv4 addresses (PCV ``d``, trie depth); backs the LPM router.
* :class:`~repro.structures.portalloc.PortAllocator` — constant-time port
  lease pool (no PCVs); backs the NAT's external-port allocation.
* :class:`~repro.structures.maglev.MaglevTable` — Maglev-style
  consistent-hash lookup table (PCV ``f``, fill iterations per
  repopulation — the library's first control-plane-dominated cost); backs
  the load balancer's backend selection.
* :class:`~repro.structures.sketch.CountMinSketch` — fixed-geometry
  count-min sketch with saturating counters (no PCVs; collisions corrupt
  estimates, never latency); backs the heavy-hitter monitor.

Structure *kinds* document their cost formulas over local PCV symbols;
every *instance* emits them instance-qualified (``fwd.t`` vs ``rev.t``),
so an NF may compose several instances of the same kind — the NAT's
forward and reverse flow tables — without PCV aliasing.
"""

from repro.structures.base import (
    NOT_FOUND,
    OpSpec,
    Structure,
    StructureModel,
    bounded_value_constraint,
    check_extern_collisions,
    linear_cost,
)
from repro.structures.expiring import ExpiringMap
from repro.structures.hashmap import ChainingHashMap
from repro.structures.lpm import LpmTrie
from repro.structures.maglev import MaglevTable, max_fill_iterations
from repro.structures.portalloc import PortAllocator
from repro.structures.sketch import CountMinSketch
from repro.structures.validation import (
    OperationCheck,
    StructureContractError,
    bolt_operation_contract,
    validate_structure_contract,
)

__all__ = [
    "NOT_FOUND",
    "ChainingHashMap",
    "CountMinSketch",
    "ExpiringMap",
    "LpmTrie",
    "MaglevTable",
    "OpSpec",
    "OperationCheck",
    "PortAllocator",
    "Structure",
    "StructureContractError",
    "StructureModel",
    "bolt_operation_contract",
    "bounded_value_constraint",
    "check_extern_collisions",
    "linear_cost",
    "max_fill_iterations",
    "validate_structure_contract",
]
