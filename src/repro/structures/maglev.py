"""Maglev-style consistent-hash table: backend selection for load balancers.

The structure behind Google's Maglev load balancer (and this repository's
``repro.nf.lb``): a fixed-size lookup array mapping ``hash(flow) %
table_size`` to a backend id.  The array is (re)populated by **permutation
filling** — each backend ``b`` derives a permutation of the table slots
from two hashes (``offset``, ``skip``), and the fill visits backends round
robin, each claiming the first still-free slot of its own permutation —
which spreads slots almost evenly across backends and moves few slots when
a backend is added or removed (minimal disruption).

The table is the library's first structure whose *dominant* cost is a
control-plane operation: per-packet ``lookup``/``active`` are constant
time (one hash and one array read), while ``add``/``remove`` trigger a
repopulation whose cost is the PCV ``f`` — the number of fill iterations
(permutation probes) the refill performs.

PCVs (local symbols; instances emit ``{instance}.f`` etc.):

* ``f`` — fill iterations of one repopulation, bounded by
  :func:`max_fill_iterations` (see below).  ``lookup`` and ``active``
  contribute no PCVs: they are constant time by construction.

Hand-derived per-operation contract:

==========  ==================  ===================
operation   instructions        memory accesses
==========  ==================  ===================
``lookup``  ``7``               ``2``
``active``  ``5``               ``1``
``add``     ``14 + 7·f``        ``5 + 2·f``
``remove``  ``12 + 7·f``        ``4 + 2·f``
==========  ==================  ===================

**Worst case of ``f`` (exact).**  With ``N`` active backends and ``M``
table slots, the round-robin fill claims exactly one slot per turn, so
backend ``i`` (in rotation order, 1-based) makes its ``k``-th claim as
overall claim number ``(k−1)·N + i``.  Every *collision* probe of backend
``i`` hits a distinct slot (a permutation visits each slot once) that some
*other* backend claimed earlier, so backend ``i`` incurs at most
``(kᵢ−1)·(N−1) + (i−1)`` collisions over its ``kᵢ`` claims.  Summing
claims plus collisions over all backends (``Σkᵢ = M``) gives

    ``f  ≤  N·(M − N) + N·(N+1)/2``

and the bound is *tight*: when all ``N`` backends share one permutation
(equal ``offset`` and ``skip`` — arrangeable by searching backend ids for
hash collisions, exactly how the adversarial workload pins the bound),
every backend probes the full already-claimed prefix on each turn and the
fill performs exactly that many iterations.  A repopulation observed above
the bound is therefore a bug, and :meth:`MaglevTable._repopulate` raises
rather than under-charge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.contract import Metric
from repro.core.pcv import PCV
from repro.core.perfexpr import PerfExpr
from repro.nfil.interpreter import ExternResult, Memory
from repro.structures.base import (
    NOT_FOUND,
    OpSpec,
    Structure,
    bounded_value_constraint,
    linear_cost,
)
from repro.sym import expr as E
from repro.sym.expr import BV, Const

__all__ = ["MaglevTable", "max_fill_iterations"]

#: Backend ids are 16-bit values (like ports: small, dense, sentinel-free).
BACKEND_BITS = 16
BACKEND_SPACE = 1 << BACKEND_BITS

_LOOKUP = {
    Metric.INSTRUCTIONS: PerfExpr.constant(7),
    Metric.MEMORY_ACCESSES: PerfExpr.constant(2),
}
_ACTIVE = {
    Metric.INSTRUCTIONS: PerfExpr.constant(5),
    Metric.MEMORY_ACCESSES: PerfExpr.constant(1),
}
_ADD = linear_cost("f", instr=(14, 7), mem=(5, 2))
_REMOVE = linear_cost("f", instr=(12, 7), mem=(4, 2))


def max_fill_iterations(backends: int, table_size: int) -> int:
    """Exact worst-case fill iterations of one repopulation.

    ``N·(M − N) + N·(N+1)/2`` for ``N = backends`` and ``M = table_size``
    (see the module docstring for the derivation); the empty repopulation
    (``N = 0``) performs one clearing pass of ``M`` iterations, which the
    ``N ≥ 1`` bound also covers.
    """
    if not 0 <= backends <= table_size:
        raise ValueError(f"backends ({backends}) must lie in [0, table_size={table_size}]")
    if backends == 0:
        return table_size
    return backends * (table_size - backends) + backends * (backends + 1) // 2


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    factor = 2
    while factor * factor <= n:
        if n % factor == 0:
            return False
        factor += 1
    return True


class MaglevTable(Structure):
    """Instrumented Maglev-style consistent-hash table (flow -> backend id).

    Args:
        name: instance name; externs are ``{name}_lookup`` /
            ``{name}_active`` / ``{name}_add`` / ``{name}_remove``.
        table_size: number of lookup slots; must be **prime** (so every
            ``skip`` generates a full permutation of the slots) and at
            least ``max_backends``.
        max_backends: most backends that may be active at once; adds
            beyond it are dropped (fixed allocation, like the Vigor maps).
            Also fixes the declared bound of the ``f`` PCV.
        value_bound: when given, the symbolic model constrains ``lookup``
            outputs to ``NOT_FOUND`` or a value below this bound (e.g. the
            backend id space).
    """

    kind = "maglev_table"

    def __init__(
        self,
        name: str,
        *,
        table_size: int = 13,
        max_backends: int = 4,
        value_bound: Optional[int] = None,
    ) -> None:
        if max_backends < 1:
            raise ValueError("max_backends must be positive")
        if table_size < max_backends:
            raise ValueError(
                f"table_size ({table_size}) must be at least max_backends ({max_backends})"
            )
        if not _is_prime(table_size):
            raise ValueError(
                f"table_size ({table_size}) must be prime so every skip value "
                "generates a full permutation of the slots"
            )
        self.table_size = table_size
        self.max_backends = max_backends
        self.value_bound = value_bound
        self._backends: Set[int] = set()
        self._params: Dict[int, Tuple[int, int]] = {}
        self._table: List[int] = [NOT_FOUND] * table_size
        super().__init__(name)

    # ------------------------------------------------------------------ #
    # Contract surface
    # ------------------------------------------------------------------ #
    def ops(self) -> Sequence[OpSpec]:
        return (
            OpSpec(
                "lookup",
                1,
                True,
                _LOOKUP,
                (),
                "consistent-hash a flow to a backend; NOT_FOUND when none are active",
            ),
            OpSpec("active", 1, True, _ACTIVE, (), "1 when the backend serves traffic, else 0"),
            OpSpec("add", 1, False, _ADD, ("f",), "activate a backend; repopulate the table"),
            OpSpec("remove", 1, False, _REMOVE, ("f",), "drain a backend; repopulate the table"),
        )

    def pcvs(self) -> Sequence[PCV]:
        return (
            PCV(
                "f",
                "fill iterations of one table repopulation",
                structure=self.name,
                max_value=max_fill_iterations(self.max_backends, self.table_size),
                unit="iterations",
            ),
        )

    def result_constraints(self, method: str, result: BV, args: Tuple[BV, ...]) -> Tuple[BV, ...]:
        if method == "lookup":
            return bounded_value_constraint(result, self.value_bound)
        if method == "active":
            return (E.ult(result, Const(2, 64)),)
        return ()

    # ------------------------------------------------------------------ #
    # Core logic (usable directly by tests and workload builders)
    # ------------------------------------------------------------------ #
    def permutation_params(self, backend: int) -> Tuple[int, int]:
        """Return the ``(offset, skip)`` pair of one backend's permutation.

        Exposed so adversarial workloads can search for backend ids whose
        parameters collide (identical permutations attain the ``f`` bound).
        """
        h1 = (backend * 2654435761) ^ (backend >> 13)
        h2 = (backend * 0x9E3779B1) ^ (backend >> 7)
        # table_size is prime, hence >= 2; any skip in [1, table_size) works.
        return h1 % self.table_size, h2 % (self.table_size - 1) + 1

    def _repopulate(self) -> int:
        """Run the Maglev fill; return the fill iterations performed."""
        table = [NOT_FOUND] * self.table_size
        backends = sorted(self._backends)
        if not backends:
            self._table = table
            return self.table_size  # one clearing pass over the array
        pointer = {backend: 0 for backend in backends}
        filled = 0
        probes = 0
        while filled < self.table_size:
            for backend in backends:
                offset, skip = self._params[backend]
                while True:
                    slot = (offset + pointer[backend] * skip) % self.table_size
                    pointer[backend] += 1
                    probes += 1
                    if table[slot] == NOT_FOUND:
                        table[slot] = backend
                        filled += 1
                        break
                if filled == self.table_size:
                    break
        if probes > max_fill_iterations(len(backends), self.table_size):  # pragma: no cover
            # The bound is proven tight (module docstring); exceeding it
            # means the fill under-charges and the contract is a lie.
            raise AssertionError(
                f"{self.name}: repopulation took {probes} iterations, above the "
                f"declared bound {max_fill_iterations(len(backends), self.table_size)}"
            )
        self._table = table
        return probes

    def backend_count(self) -> int:
        """Number of active backends."""
        return len(self._backends)

    def backends(self) -> List[int]:
        """The active backend ids, sorted (diagnostics and workloads)."""
        return sorted(self._backends)

    def table(self) -> Tuple[int, ...]:
        """A snapshot of the lookup array (slot index -> backend id)."""
        return tuple(self._table)

    def is_active(self, backend: int) -> bool:
        """Whether ``backend`` currently serves traffic."""
        return backend in self._backends

    def select(self, flow: int) -> Optional[int]:
        """Consistent-hash ``flow`` to a backend; ``None`` when none active."""
        slot = ((flow * 2654435761) ^ (flow >> 29)) % self.table_size
        backend = self._table[slot]
        return None if backend == NOT_FOUND else backend

    def add_backend(self, backend: int) -> Tuple[str, int]:
        """Activate ``backend``; return ``(status, fill iterations)``.

        ``status`` is ``"added"`` (repopulation ran), ``"present"`` (the
        backend was already active; no-op) or ``"dropped"`` (the set is at
        ``max_backends``, matching the fixed-allocation Vigor structures).
        """
        if not 0 <= backend < BACKEND_SPACE:
            raise ValueError(f"backend {backend} is not a {BACKEND_BITS}-bit id")
        if backend in self._backends:
            return "present", 0
        if len(self._backends) >= self.max_backends:
            return "dropped", 0
        self._backends.add(backend)
        self._params[backend] = self.permutation_params(backend)
        return "added", self._repopulate()

    def remove_backend(self, backend: int) -> Tuple[bool, int]:
        """Drain ``backend``; return ``(removed, fill iterations)``."""
        if backend not in self._backends:
            return False, 0
        self._backends.discard(backend)
        del self._params[backend]
        return True, self._repopulate()

    # ------------------------------------------------------------------ #
    # Instrumented extern handlers
    # ------------------------------------------------------------------ #
    def _fill_touched(self, probes: int) -> list:
        """Table slots a repopulation pass wrote, modelled as a sweep.

        The real fill probes permutation order; a sequential sweep over
        the same number of slots has the same footprint and set pressure,
        which is what the cache simulator prices.
        """
        return [self.slot_addr(i % self.table_size) for i in range(probes)]

    def _op_lookup(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (flow,) = args
        backend = self.select(flow)
        slot = ((flow * 2654435761) ^ (flow >> 29)) % self.table_size
        touched = [self.slot_addr(slot)]
        if backend is None:
            # Empty-table fast path: no backend id copy.
            return self.charge(
                "lookup", NOT_FOUND, discount_instructions=1, touched=touched
            )
        return self.charge("lookup", backend, touched=touched)

    def _op_active(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (backend,) = args
        backend %= BACKEND_SPACE
        # Membership word: one slot per backend id, after the lookup array.
        touched = [self.slot_addr(self.table_size + backend % self.max_backends)]
        return self.charge("active", 1 if self.is_active(backend) else 0, touched=touched)

    def _op_add(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (backend,) = args
        status, probes = self.add_backend(backend % BACKEND_SPACE)
        if status != "added":
            # Present/dropped fast path: no repopulation ran.
            return self.charge(
                "add", f=0, discount_instructions=1, touched=[self.slot_addr(0)]
            )
        return self.charge("add", f=probes, touched=self._fill_touched(probes))

    def _op_remove(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (backend,) = args
        removed, probes = self.remove_backend(backend % BACKEND_SPACE)
        if not removed:
            # Unknown-backend fast path: no repopulation ran.
            return self.charge(
                "remove", f=0, discount_instructions=1, touched=[self.slot_addr(0)]
            )
        return self.charge("remove", f=probes, touched=self._fill_touched(probes))
