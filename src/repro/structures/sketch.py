"""Count-min sketch: the heavy-hitter counter behind the monitor NF.

Measurement NFs (the paper's §5 matrix closes with a traffic monitor)
count flows without keeping per-flow state: a count-min sketch maintains
a fixed ``depth × width`` array of saturating counters, hashes each key
into one counter per row, and estimates a key's frequency as the minimum
over its row counters.  The estimate can over-count (row collisions) but
never under-counts — and, crucially for the contract story, *cost never
depends on the data*: every ``update`` touches exactly ``depth``
counters, every ``query`` reads exactly ``depth`` counters, whatever the
key distribution.  Unlike the chaining maps there is no collision chain
to walk — collisions corrupt the *estimate*, not the *latency* — so the
cost shape is deliberately collision-free.

The geometry is explicit configuration (``CountMinSketch("hh", depth=4,
width=64)``); ``depth`` is fixed at construction, so the per-operation
formulas below are constants of the instance, not PCVs.  Counters
saturate at ``counter_max`` instead of wrapping: a flood can pin a
counter to the ceiling (the ``header_flood`` workloads do exactly that)
but can never roll an estimate back to zero.

Hand-derived per-operation contract (no PCVs; constant formulas in the
configured depth ``d``):

===========  ==============  ===============
operation    instructions    memory accesses
===========  ==============  ===============
``update``   ``6 + 5·d``     ``2 + 2·d``
``query``    ``4 + 4·d``     ``1 + d``
===========  ==============  ===============

Per row, ``update`` computes one index hash (2 instructions), loads the
counter (1 access), saturating-increments it (2 instructions), stores it
back (1 access) and folds it into the running minimum (1 instruction);
``query`` does the same minus the increment and the store.  The constant
terms cover argument marshalling and returning the estimate.

**PCVs: none.**  The row walk is a counted loop over the configured
depth — no probe sequence, chain or occupancy can stretch it — so there
is no state-dependent variable to parameterise.  The structure's
contribution to any NF contract is the constant rows above, which is
what lets the monitor's hot/cold classes price identically and the
constant-time audit *prove* indistinguishability as a zero polynomial.

**Worst case.**  Identical to the best case, by construction: both
operations visit exactly ``depth`` counters regardless of history or key
distribution.  The only fast paths are the fully-saturated ``update``
(every row counter already at ``counter_max``: the increment
short-circuits) and the never-seen ``query`` (a zero counter ends the
min-fold early), each one instruction cheaper than the formula.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.contract import Metric
from repro.core.pcv import PCV
from repro.core.perfexpr import PerfExpr
from repro.nfil.interpreter import ExternResult, Memory
from repro.structures.base import OpSpec, Structure, bounded_value_constraint
from repro.sym.expr import BV

__all__ = ["CountMinSketch"]

#: Per-row index salts: large odd multipliers, one per row (cycled when
#: depth exceeds the table).  Distinct rows must hash independently or
#: the sketch degenerates into ``depth`` copies of one row.
_ROW_SALTS = (
    2654435761,
    2246822519,
    3266489917,
    668265263,
    374761393,
    3405691931,
    2909871661,
    1640531527,
)


class CountMinSketch(Structure):
    """Instrumented fixed-geometry count-min sketch with saturating counters.

    Args:
        name: instance name; externs are ``{name}_update`` /
            ``{name}_query``.
        depth: number of hash rows (independent counters per key).
        width: counters per row; collisions within a row over-count.
        counter_max: saturation ceiling of every counter; estimates are
            always in ``[0, counter_max]``.
    """

    kind = "count_min_sketch"

    def __init__(
        self, name: str, *, depth: int = 4, width: int = 64, counter_max: int = 255
    ) -> None:
        if depth < 1:
            raise ValueError("sketch depth must be at least 1")
        if width < 1:
            raise ValueError("sketch width must be at least 1")
        if counter_max < 1:
            raise ValueError("counter ceiling must be at least 1")
        self.depth = depth
        self.width = width
        self.counter_max = counter_max
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        super().__init__(name)

    # ------------------------------------------------------------------ #
    # Contract surface
    # ------------------------------------------------------------------ #
    def ops(self) -> Sequence[OpSpec]:
        update_cost = {
            Metric.INSTRUCTIONS: PerfExpr.constant(6 + 5 * self.depth),
            Metric.MEMORY_ACCESSES: PerfExpr.constant(2 + 2 * self.depth),
        }
        query_cost = {
            Metric.INSTRUCTIONS: PerfExpr.constant(4 + 4 * self.depth),
            Metric.MEMORY_ACCESSES: PerfExpr.constant(1 + self.depth),
        }
        return (
            OpSpec(
                "update",
                1,
                True,
                update_cost,
                (),
                "count one key occurrence; returns the updated estimate",
            ),
            OpSpec("query", 1, True, query_cost, (), "min-over-rows frequency estimate"),
        )

    def pcvs(self) -> Sequence[PCV]:
        return ()

    def result_constraints(self, method: str, result: BV, args: Tuple[BV, ...]) -> Tuple[BV, ...]:
        # Both operations return an estimate in [0, counter_max].
        return bounded_value_constraint(result, self.counter_max + 1)

    # ------------------------------------------------------------------ #
    # Core logic (usable directly by tests and workload builders)
    # ------------------------------------------------------------------ #
    def _index(self, row: int, key: int) -> int:
        salt = _ROW_SALTS[row % len(_ROW_SALTS)]
        mixed = (key * salt) & 0xFFFFFFFFFFFFFFFF
        return (mixed ^ (mixed >> 29) ^ row) % self.width

    def observe(self, key: int) -> int:
        """Count one occurrence of ``key``; returns the updated estimate."""
        estimate = self.counter_max
        for row in range(self.depth):
            counters = self._rows[row]
            index = self._index(row, key)
            counters[index] = min(counters[index] + 1, self.counter_max)
            estimate = min(estimate, counters[index])
        return estimate

    def estimate(self, key: int) -> int:
        """Min-over-rows frequency estimate for ``key`` (never under-counts)."""
        return min(
            self._rows[row][self._index(row, key)] for row in range(self.depth)
        )

    def saturated(self, key: int) -> bool:
        """Whether every one of ``key``'s row counters sits at the ceiling."""
        return self.estimate(key) == self.counter_max

    # ------------------------------------------------------------------ #
    # Instrumented extern handlers
    # ------------------------------------------------------------------ #
    def _counter_touched(self, key: int) -> list:
        """The key's counter cell in each row (the data-independent walk)."""
        return [
            self.slot_addr(row * self.width + self._index(row, key))
            for row in range(self.depth)
        ]

    def _op_update(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (key,) = args
        touched = self._counter_touched(key)
        # The update stores each counter back: same cells, touched twice.
        touched = [addr for addr in touched for _ in range(2)]
        if self.saturated(key):
            # Fully-saturated fast path: the increment short-circuits.
            return self.charge(
                "update", self.counter_max, discount_instructions=1, touched=touched
            )
        return self.charge("update", self.observe(key), touched=touched)

    def _op_query(self, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        (key,) = args
        touched = self._counter_touched(key)
        estimate = self.estimate(key)
        if estimate == 0:
            # Never-seen fast path: a zero counter ends the min-fold early.
            return self.charge("query", 0, discount_instructions=1, touched=touched)
        return self.charge("query", estimate, touched=touched)
