"""Fluent construction of NFIL functions.

:class:`FunctionBuilder` removes the boilerplate of writing NFIL by hand:
it auto-names temporary registers, coerces Python ints to immediates, and
validates the finished function.  The bridge NF reads like pseudo-code::

    b = FunctionBuilder("process", params=("pkt", "len", "in_port"))
    short = b.ult(b.param("len"), 14)
    b.br(short, "drop", "lookup")
    b.block("drop")
    b.ret(DROP)
    b.block("lookup")
    ...
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.nfil.instructions import (
    ACCESS_SIZES,
    BinOp,
    Br,
    Call,
    Cmp,
    ConstInstr,
    Instruction,
    Jmp,
    Load,
    Operand,
    Reg,
    Ret,
    Select,
    Store,
    as_operand,
)
from repro.nfil.program import BasicBlock, Function, Param
from repro.nfil.validate import validate_function

__all__ = ["BuilderError", "FunctionBuilder"]

OperandLike = Union[Operand, int]


class BuilderError(RuntimeError):
    """The builder was used inconsistently."""


class FunctionBuilder:
    """Builds one NFIL :class:`~repro.nfil.program.Function` fluently."""

    def __init__(
        self,
        name: str,
        params: Sequence[str] = (),
        *,
        entry: str = "entry",
    ) -> None:
        self._function = Function(name=name, params=[Param(p) for p in params], entry=entry)
        self._current: Optional[BasicBlock] = None
        self._temp_counter = 0
        self._label_counters: Dict[str, int] = {}
        self.block(entry)

    # ------------------------------------------------------------------ #
    # Blocks and labels
    # ------------------------------------------------------------------ #
    def block(self, label: str) -> "FunctionBuilder":
        """Create (or switch to) the block named ``label``."""
        block = self._function.block(label)
        if block.terminator is not None:
            raise BuilderError(f"block {label!r} is already terminated")
        self._current = block
        return self

    def fresh_label(self, prefix: str = "bb") -> str:
        """Return a fresh label like ``bb0``, ``bb1`` ... per prefix."""
        count = self._label_counters.get(prefix, 0)
        self._label_counters[prefix] = count + 1
        return f"{prefix}{count}"

    @property
    def current_label(self) -> str:
        """Label of the block instructions are currently appended to."""
        if self._current is None:  # pragma: no cover - defensive
            raise BuilderError("no current block")
        return self._current.label

    # ------------------------------------------------------------------ #
    # Operand helpers
    # ------------------------------------------------------------------ #
    def param(self, name: str) -> Reg:
        """Return the register holding the parameter ``name``."""
        if name not in self._function.param_names():
            raise BuilderError(f"unknown parameter {name!r}")
        return Reg(name)

    def _fresh(self, name: Optional[str]) -> str:
        if name is not None:
            return name
        self._temp_counter += 1
        return f"t{self._temp_counter - 1}"

    def _append(self, instruction: Instruction) -> None:
        if self._current is None:  # pragma: no cover - defensive
            raise BuilderError("no current block")
        if self._current.terminator is not None:
            raise BuilderError(
                f"appending {instruction} after terminator in {self._current.label!r}"
            )
        self._current.append(instruction)

    # ------------------------------------------------------------------ #
    # Instructions
    # ------------------------------------------------------------------ #
    def const(self, value: int, name: Optional[str] = None) -> Reg:
        dest = self._fresh(name)
        self._append(ConstInstr(dest, value))
        return Reg(dest)

    def binop(self, op: str, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        dest = self._fresh(name)
        self._append(BinOp(op, dest, as_operand(a), as_operand(b)))
        return Reg(dest)

    def cmp(self, op: str, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        dest = self._fresh(name)
        self._append(Cmp(op, dest, as_operand(a), as_operand(b)))
        return Reg(dest)

    def select(
        self,
        cond: OperandLike,
        a: OperandLike,
        b: OperandLike,
        name: Optional[str] = None,
    ) -> Reg:
        dest = self._fresh(name)
        self._append(Select(dest, as_operand(cond), as_operand(a), as_operand(b)))
        return Reg(dest)

    def load(self, addr: OperandLike, size: int = 8, name: Optional[str] = None) -> Reg:
        if size not in ACCESS_SIZES:
            raise BuilderError(f"illegal load size {size}")
        dest = self._fresh(name)
        self._append(Load(dest, as_operand(addr), size))
        return Reg(dest)

    def store(self, addr: OperandLike, value: OperandLike, size: int = 8) -> "FunctionBuilder":
        if size not in ACCESS_SIZES:
            raise BuilderError(f"illegal store size {size}")
        self._append(Store(as_operand(addr), as_operand(value), size))
        return self

    def call(
        self,
        callee: str,
        *args: OperandLike,
        name: Optional[str] = None,
        void: bool = False,
    ) -> Optional[Reg]:
        """Emit a call; returns the destination register unless ``void``."""
        operands = tuple(as_operand(arg) for arg in args)
        if void:
            if name is not None:
                raise BuilderError("void call cannot name a destination")
            self._append(Call(None, callee, operands))
            return None
        dest = self._fresh(name)
        self._append(Call(dest, callee, operands))
        return Reg(dest)

    def br(self, cond: OperandLike, then_label: str, else_label: str) -> "FunctionBuilder":
        self._append(Br(as_operand(cond), then_label, else_label))
        return self

    def jmp(self, label: str) -> "FunctionBuilder":
        self._append(Jmp(label))
        return self

    def ret(self, value: Optional[OperandLike] = None) -> "FunctionBuilder":
        self._append(Ret(as_operand(value) if value is not None else None))
        return self

    # Arithmetic / comparison sugar ------------------------------------- #
    def add(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.binop("add", a, b, name)

    def sub(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.binop("sub", a, b, name)

    def mul(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.binop("mul", a, b, name)

    def and_(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.binop("and", a, b, name)

    def or_(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.binop("or", a, b, name)

    def xor(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.binop("xor", a, b, name)

    def shl(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.binop("shl", a, b, name)

    def lshr(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.binop("lshr", a, b, name)

    def eq(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.cmp("eq", a, b, name)

    def ne(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.cmp("ne", a, b, name)

    def ult(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.cmp("ult", a, b, name)

    def ule(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.cmp("ule", a, b, name)

    def ugt(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.cmp("ugt", a, b, name)

    def uge(self, a: OperandLike, b: OperandLike, name: Optional[str] = None) -> Reg:
        return self.cmp("uge", a, b, name)

    # ------------------------------------------------------------------ #
    # Finishing
    # ------------------------------------------------------------------ #
    def build(self, *, validate: bool = True) -> Function:
        """Return the finished function, validating by default.

        Validation here is module-free (call arities are checked by
        :func:`repro.nfil.validate.validate_module` once the function is
        registered in its module).
        """
        if validate:
            validate_function(self._function)
        return self._function
