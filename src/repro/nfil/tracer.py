"""Execution traces: the reproduction's stand-in for Intel Pin.

The paper replays concrete inputs under binary instrumentation to count the
dynamic instructions and memory accesses of each execution (§3.2).  Here the
concrete :class:`repro.nfil.interpreter.Interpreter` plays that role: it
feeds an :class:`ExecutionTrace` one event per executed instruction, memory
access and extern call.

Costs split into two layers, mirroring the Vigor-style separation the paper
relies on:

* *stateless* costs — NFIL instructions executed by the interpreter itself
  (one dynamic instruction per executed NFIL instruction, one memory access
  per load or store), and
* *extern* costs — the instruction/memory-access cost reported by the
  instrumented stateful data structure backing each extern call, together
  with the PCV values (collisions, traversals, expired entries, ...) the
  structure observed while serving the call.

``total_instructions()`` / ``total_memory_accesses()`` add both layers and
are what performance contracts must upper-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["ExecutionTrace", "ExternCall", "MemAccess"]


@dataclass(frozen=True, slots=True)
class MemAccess:
    """One concrete memory access performed by the stateless code."""

    addr: int
    size: int
    kind: str  # "load" | "store"
    function: str = ""

    @property
    def is_store(self) -> bool:
        return self.kind == "store"


@dataclass(frozen=True, slots=True)
class ExternCall:
    """One call into the stateful library, with its instrumented cost.

    Attributes:
        index: position of the call in the execution (0-based, counting
            every extern call, including ones that return no value).  The
            symbolic engine numbers its model outputs the same way, which is
            what lets a concrete trace be matched back to a symbolic path.
        name: extern symbol called.
        args: concrete argument values.
        result: concrete return value, or None for void externs.
        instructions: dynamic instructions the structure spent on the call.
        memory_accesses: memory accesses the structure spent on the call.
        pcvs: PCV values observed while serving the call (e.g. ``{"t": 3}``).
    """

    index: int
    name: str
    args: Tuple[int, ...]
    result: Optional[int]
    instructions: int = 0
    memory_accesses: int = 0
    pcvs: Mapping[str, int] = field(default_factory=dict)


class ExecutionTrace:
    """Dynamic instruction/memory counts for one concrete execution."""

    def __init__(self, *, record_accesses: bool = True) -> None:
        self.instructions: int = 0
        self.category_counts: Dict[str, int] = {}
        self.mem_reads: int = 0
        self.mem_writes: int = 0
        self.accesses: List[MemAccess] = []
        self.extern_calls: List[ExternCall] = []
        self._record_accesses = record_accesses

    # ------------------------------------------------------------------ #
    # Recording (called by the interpreter)
    # ------------------------------------------------------------------ #
    def record_instruction(self, category: str) -> None:
        """Count one executed stateless NFIL instruction."""
        self.instructions += 1
        self.category_counts[category] = self.category_counts.get(category, 0) + 1

    def record_access(self, addr: int, size: int, kind: str, function: str = "") -> None:
        """Count one stateless memory access."""
        if kind == "store":
            self.mem_writes += 1
        else:
            self.mem_reads += 1
        if self._record_accesses:
            self.accesses.append(MemAccess(addr, size, kind, function))

    def record_extern(
        self,
        name: str,
        args: Tuple[int, ...],
        result: Optional[int],
        *,
        instructions: int = 0,
        memory_accesses: int = 0,
        pcvs: Mapping[str, int] | None = None,
        accesses: Tuple[int, ...] = (),
    ) -> ExternCall:
        """Record one extern call and its instrumented cost.

        When address recording is on, the structure's touched addresses
        (``accesses``) join :attr:`accesses` in execution order alongside
        the stateless stream, so a cache simulator replays the packet's
        full interleaved address trace.  Structure accesses are modelled
        as 8-byte loads — line granularity is what the simulator keys on,
        so load/store and operand width do not affect pricing.
        """
        call = ExternCall(
            index=len(self.extern_calls),
            name=name,
            args=tuple(args),
            result=result,
            instructions=instructions,
            memory_accesses=memory_accesses,
            pcvs=dict(pcvs or {}),
        )
        self.extern_calls.append(call)
        if self._record_accesses:
            for addr in accesses:
                self.accesses.append(MemAccess(addr, 8, "load", name))
        return call

    # ------------------------------------------------------------------ #
    # Aggregation (consumed by tests and the contract cross-check)
    # ------------------------------------------------------------------ #
    @property
    def memory_accesses(self) -> int:
        """Stateless memory accesses (loads + stores)."""
        return self.mem_reads + self.mem_writes

    def extern_instructions(self) -> int:
        """Instructions spent inside the stateful library."""
        return sum(call.instructions for call in self.extern_calls)

    def extern_memory_accesses(self) -> int:
        """Memory accesses spent inside the stateful library."""
        return sum(call.memory_accesses for call in self.extern_calls)

    def total_instructions(self) -> int:
        """Stateless + extern dynamic instruction count."""
        return self.instructions + self.extern_instructions()

    def total_memory_accesses(self) -> int:
        """Stateless + extern memory access count."""
        return self.memory_accesses + self.extern_memory_accesses()

    def pcv_bindings(self, *, merge: str = "max") -> Dict[str, int]:
        """Merge the per-call PCV observations into one binding per PCV.

        Args:
            merge: ``"max"`` (default) keeps the largest observation, which
                is the sound choice when a contract charges a shared PCV at
                every call site; ``"sum"`` adds observations up.
        """
        if merge not in ("max", "sum"):
            raise ValueError(f"unknown merge mode {merge!r}")
        bindings: Dict[str, int] = {}
        for call in self.extern_calls:
            for name, value in call.pcvs.items():
                if merge == "sum":
                    bindings[name] = bindings.get(name, 0) + int(value)
                else:
                    bindings[name] = max(bindings.get(name, 0), int(value))
        return bindings

    def summary(self) -> str:
        """Render a one-line human-readable summary."""
        return (
            f"instructions={self.total_instructions()} "
            f"(stateless {self.instructions} + extern {self.extern_instructions()}), "
            f"memory={self.total_memory_accesses()} "
            f"(stateless {self.memory_accesses} + extern {self.extern_memory_accesses()}), "
            f"extern_calls={len(self.extern_calls)}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExecutionTrace {self.summary()}>"
