"""Concrete NFIL interpreter and instrumented memory.

The interpreter executes one NFIL function on concrete 64-bit values.  Every
executed instruction and memory access is reported to an
:class:`repro.nfil.tracer.ExecutionTrace`, which makes the interpreter the
reproduction's replacement for running the NF under Intel Pin (§3.2 of the
paper).

Extern calls (the stateful data-structure methods of the Vigor-style
library) are dispatched to an :class:`ExternHandler`; the handler returns
the call's value together with the instrumented cost of serving it and the
PCV values it observed, so the trace carries everything a performance
contract must bound.

The arithmetic here deliberately mirrors the semantics of
:mod:`repro.sym.expr` (which the symbolic engine uses) without importing
it — NFIL is the bottom layer and must stay import-free of ``repro.sym`` —
and the test suite cross-checks the two by replaying symbolic models
concretely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.nfil.instructions import (
    BinOp,
    Br,
    Call,
    Cmp,
    ConstInstr,
    Imm,
    Instruction,
    Jmp,
    Load,
    Operand,
    Reg,
    Ret,
    Select,
    Store,
    WORD_BITS,
    WORD_MASK,
)
from repro.nfil.program import Function, Module
from repro.nfil.tracer import ExecutionTrace

__all__ = [
    "ExternHandler",
    "ExternResult",
    "Interpreter",
    "InterpreterError",
    "Memory",
    "StepLimitExceeded",
]


class InterpreterError(RuntimeError):
    """An ill-formed program reached the interpreter."""


class StepLimitExceeded(InterpreterError):
    """The execution exceeded the configured step budget."""


def _truncate(value: int) -> int:
    return value & WORD_MASK


def _to_signed(value: int) -> int:
    value &= WORD_MASK
    if value >= 1 << (WORD_BITS - 1):
        value -= 1 << WORD_BITS
    return value


_BINOP_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: _truncate(a + b),
    "sub": lambda a, b: _truncate(a - b),
    "mul": lambda a, b: _truncate(a * b),
    "udiv": lambda a, b: _truncate(a // b) if b != 0 else WORD_MASK,
    "urem": lambda a, b: _truncate(a % b) if b != 0 else a,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: _truncate(a << b) if b < WORD_BITS else 0,
    "lshr": lambda a, b: (a >> b) if b < WORD_BITS else 0,
}

_CMP_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "ult": lambda a, b: int(a < b),
    "ule": lambda a, b: int(a <= b),
    "ugt": lambda a, b: int(a > b),
    "uge": lambda a, b: int(a >= b),
    "slt": lambda a, b: int(_to_signed(a) < _to_signed(b)),
    "sle": lambda a, b: int(_to_signed(a) <= _to_signed(b)),
    "sgt": lambda a, b: int(_to_signed(a) > _to_signed(b)),
    "sge": lambda a, b: int(_to_signed(a) >= _to_signed(b)),
}


class Memory:
    """Sparse byte-addressable memory; unwritten bytes read as zero."""

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}

    def load(self, addr: int, size: int) -> int:
        """Load ``size`` bytes little-endian, zero-extended to 64 bits."""
        value = 0
        for offset in range(size):
            value |= self._bytes.get(addr + offset, 0) << (8 * offset)
        return value

    def store(self, addr: int, value: int, size: int) -> None:
        """Store the low ``size`` bytes of ``value`` little-endian."""
        for offset in range(size):
            self._bytes[addr + offset] = (value >> (8 * offset)) & 0xFF

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Bulk-write raw bytes (e.g. a packet buffer)."""
        for offset, byte in enumerate(data):
            self._bytes[addr + offset] = byte

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Bulk-read raw bytes."""
        return bytes(self._bytes.get(addr + offset, 0) for offset in range(size))

    def clear(self) -> None:
        """Reset all memory to zero."""
        self._bytes.clear()


@dataclass(frozen=True)
class ExternResult:
    """What an extern handler returns for one call.

    ``accesses`` optionally carries the concrete addresses the structure
    touched while serving the call (one per counted memory access, in
    touch order) so cache-simulating hardware models can observe the
    structure's locality; an empty tuple means counts only.
    """

    value: Optional[int] = None
    instructions: int = 0
    memory_accesses: int = 0
    pcvs: Mapping[str, int] = field(default_factory=dict)
    accesses: Tuple[int, ...] = ()


#: Handlers may return a plain int (the value), None (void) or ExternResult.
HandlerFn = Callable[[Tuple[int, ...], Memory], Union[ExternResult, int, None]]


class ExternHandler:
    """Dispatch table for extern (stateful library) calls.

    Either register plain callables with :meth:`register`, or subclass and
    register bound methods in ``__init__`` — the instrumented data
    structures in :mod:`repro.nf` do the latter.
    """

    def __init__(self) -> None:
        self._handlers: Dict[str, HandlerFn] = {}

    def register(self, name: str, fn: HandlerFn) -> None:
        """Register the handler for extern ``name``."""
        self._handlers[name] = fn

    def knows(self, name: str) -> bool:
        """Return True when a handler for ``name`` is registered."""
        return name in self._handlers

    def merge(self, other: "ExternHandler") -> "ExternHandler":
        """Adopt every registration of ``other``; returns self.

        Lets an NF that composes several stateful structures (each of which
        is its own handler) present one dispatch table to the interpreter.
        Name collisions raise, since silently shadowing a structure's
        handler would corrupt the cost accounting.
        """
        for name, fn in other._handlers.items():
            if name in self._handlers:
                raise ValueError(f"extern {name!r} already has a handler")
            self._handlers[name] = fn
        return self

    def handle(self, name: str, args: Tuple[int, ...], memory: Memory) -> ExternResult:
        """Serve one extern call; coerce shorthand returns to ExternResult."""
        try:
            fn = self._handlers[name]
        except KeyError:
            raise InterpreterError(f"no handler registered for extern {name!r}") from None
        result = fn(args, memory)
        if result is None:
            return ExternResult(None)
        if isinstance(result, int):
            return ExternResult(result & WORD_MASK)
        return result


@dataclass
class _Frame:
    function: Function
    block: str
    index: int
    registers: Dict[str, int]
    ret_dest: Optional[str]


class Interpreter:
    """Concrete executor for NFIL modules, doubling as the tracer driver."""

    def __init__(
        self,
        module: Module,
        *,
        handler: Optional[ExternHandler] = None,
        max_steps: int = 1_000_000,
    ) -> None:
        self.module = module
        self.handler = handler or ExternHandler()
        self.max_steps = max_steps

    def run(
        self,
        function_name: str,
        args: Sequence[int],
        *,
        memory: Optional[Memory] = None,
        trace: Optional[ExecutionTrace] = None,
    ) -> Tuple[Optional[int], ExecutionTrace]:
        """Execute ``function_name`` on concrete ``args``.

        Returns:
            ``(return value or None, execution trace)``.
        """
        function = self.module.functions.get(function_name)
        if function is None:
            raise InterpreterError(f"unknown function {function_name!r}")
        if len(args) != len(function.params):
            raise InterpreterError(
                f"{function_name} expects {len(function.params)} args, got {len(args)}"
            )
        memory = memory if memory is not None else Memory()
        trace = trace if trace is not None else ExecutionTrace()
        registers = {
            param.name: _truncate(int(value))
            for param, value in zip(function.params, args)
        }
        frames: List[_Frame] = [_Frame(function, function.entry, 0, registers, None)]
        steps = 0
        while frames:
            if steps >= self.max_steps:
                raise StepLimitExceeded(f"exceeded {self.max_steps} steps")
            steps += 1
            frame = frames[-1]
            block = frame.function.blocks.get(frame.block)
            if block is None:
                raise InterpreterError(f"{frame.function.name}: unknown block {frame.block!r}")
            if frame.index >= len(block.instructions):
                raise InterpreterError(
                    f"{frame.function.name}:{frame.block} fell through without terminator"
                )
            instruction = block.instructions[frame.index]
            frame.index += 1
            trace.record_instruction(self._category(instruction))
            returned = self._step(instruction, frame, frames, memory, trace)
            if returned is not _NOT_RETURNED:
                return returned, trace
        raise InterpreterError("empty frame stack")  # pragma: no cover - defensive

    # ------------------------------------------------------------------ #
    # Instruction dispatch
    # ------------------------------------------------------------------ #
    @staticmethod
    def _category(instruction: Instruction) -> str:
        return instruction.category

    def _value(self, operand: Operand, frame: _Frame) -> int:
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Reg):
            try:
                return frame.registers[operand.name]
            except KeyError:
                raise InterpreterError(
                    f"{frame.function.name}: read of undefined register %{operand.name}"
                ) from None
        raise InterpreterError(f"bad operand {operand!r}")  # pragma: no cover

    def _step(
        self,
        instruction: Instruction,
        frame: _Frame,
        frames: List[_Frame],
        memory: Memory,
        trace: ExecutionTrace,
    ) -> Optional[int]:
        regs = frame.registers
        if isinstance(instruction, ConstInstr):
            regs[instruction.dest] = _truncate(instruction.value)
        elif isinstance(instruction, BinOp):
            a = self._value(instruction.a, frame)
            b = self._value(instruction.b, frame)
            regs[instruction.dest] = _BINOP_FUNCS[instruction.op](a, b)
        elif isinstance(instruction, Cmp):
            a = self._value(instruction.a, frame)
            b = self._value(instruction.b, frame)
            regs[instruction.dest] = _CMP_FUNCS[instruction.op](a, b)
        elif isinstance(instruction, Select):
            cond = self._value(instruction.cond, frame)
            picked = instruction.a if cond != 0 else instruction.b
            regs[instruction.dest] = self._value(picked, frame)
        elif isinstance(instruction, Load):
            addr = self._value(instruction.addr, frame)
            trace.record_access(addr, instruction.size, "load", frame.function.name)
            regs[instruction.dest] = memory.load(addr, instruction.size)
        elif isinstance(instruction, Store):
            addr = self._value(instruction.addr, frame)
            value = self._value(instruction.value, frame)
            trace.record_access(addr, instruction.size, "store", frame.function.name)
            memory.store(addr, value, instruction.size)
        elif isinstance(instruction, Br):
            cond = self._value(instruction.cond, frame)
            frame.block = instruction.then_label if cond != 0 else instruction.else_label
            frame.index = 0
        elif isinstance(instruction, Jmp):
            frame.block = instruction.label
            frame.index = 0
        elif isinstance(instruction, Call):
            self._call(instruction, frame, frames, memory, trace)
        elif isinstance(instruction, Ret):
            value = (
                self._value(instruction.value, frame)
                if instruction.value is not None
                else None
            )
            frames.pop()
            if not frames:
                return value
            caller = frames[-1]
            if caller.ret_dest is not None:
                if value is None:
                    raise InterpreterError(
                        f"{frame.function.name} returned void into %{caller.ret_dest}"
                    )
                caller.registers[caller.ret_dest] = value
                caller.ret_dest = None
        else:  # pragma: no cover - defensive
            raise InterpreterError(f"cannot execute {type(instruction).__name__}")
        return _NOT_RETURNED

    def _call(
        self,
        instruction: Call,
        frame: _Frame,
        frames: List[_Frame],
        memory: Memory,
        trace: ExecutionTrace,
    ) -> None:
        args = tuple(self._value(arg, frame) for arg in instruction.args)
        if self.module.is_extern(instruction.callee):
            decl = self.module.externs[instruction.callee]
            if len(args) != decl.arity:
                raise InterpreterError(
                    f"extern {decl.name} expects {decl.arity} args, got {len(args)}"
                )
            result = self.handler.handle(decl.name, args, memory)
            trace.record_extern(
                decl.name,
                args,
                result.value,
                instructions=result.instructions,
                memory_accesses=result.memory_accesses,
                pcvs=result.pcvs,
                accesses=result.accesses,
            )
            if instruction.dest is not None:
                if result.value is None:
                    raise InterpreterError(
                        f"extern {decl.name} returned no value into %{instruction.dest}"
                    )
                frame.registers[instruction.dest] = _truncate(result.value)
            return
        callee = self.module.functions.get(instruction.callee)
        if callee is None:
            raise InterpreterError(f"call to unknown symbol {instruction.callee!r}")
        if len(args) != len(callee.params):
            raise InterpreterError(
                f"{callee.name} expects {len(callee.params)} args, got {len(args)}"
            )
        frame.ret_dest = instruction.dest
        registers = {param.name: value for param, value in zip(callee.params, args)}
        frames.append(_Frame(callee, callee.entry, 0, registers, None))


#: Sentinel distinguishing "no top-level return yet" from "returned None".
_NOT_RETURNED = object()
