"""NFIL — the NF intermediate language.

The paper analyses NFs written in C by compiling them to LLVM bit-code,
symbolically executing the stateless part, and replaying concrete inputs
under a binary instrumentation tool to count instructions and memory
accesses.  This reproduction substitutes a small intermediate language with
the same observables:

* a register machine (64-bit registers) with arithmetic, comparisons,
  loads/stores into a byte-addressable memory, conditional branches and
  calls,
* *extern* calls representing the stateful data-structure methods of the
  Vigor-style library (replaced by symbolic models during analysis and by
  the real instrumented structures during measurement),
* a concrete interpreter that doubles as the instruction/memory tracer
  (the role Intel Pin plays in the paper), and
* a verifier for the IR.

One executed NFIL instruction counts as one dynamic instruction; one load or
store counts as one memory access.
"""

from repro.nfil.instructions import (
    BinOp,
    Br,
    Call,
    Cmp,
    ConstInstr,
    Imm,
    Jmp,
    Load,
    Ret,
    Reg,
    Select,
    Store,
    WORD_BITS,
)
from repro.nfil.program import BasicBlock, ExternDecl, Function, Module, Param
from repro.nfil.builder import FunctionBuilder
from repro.nfil.interpreter import (
    ExternHandler,
    ExternResult,
    Interpreter,
    InterpreterError,
    Memory,
    StepLimitExceeded,
)
from repro.nfil.tracer import ExecutionTrace, ExternCall, MemAccess
from repro.nfil.validate import ValidationError, validate_function, validate_module

__all__ = [
    "BasicBlock",
    "BinOp",
    "Br",
    "Call",
    "Cmp",
    "ConstInstr",
    "ExecutionTrace",
    "ExternCall",
    "ExternDecl",
    "ExternHandler",
    "ExternResult",
    "Function",
    "FunctionBuilder",
    "Imm",
    "Interpreter",
    "InterpreterError",
    "Jmp",
    "Load",
    "MemAccess",
    "Memory",
    "Module",
    "Param",
    "Reg",
    "Ret",
    "Select",
    "StepLimitExceeded",
    "Store",
    "ValidationError",
    "WORD_BITS",
    "validate_function",
    "validate_module",
]
