"""NFIL program containers: basic blocks, functions, modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.nfil.instructions import Instruction


@dataclass
class Param:
    """A function parameter (always a 64-bit register)."""

    name: str


@dataclass
class BasicBlock:
    """A labelled, straight-line sequence of instructions.

    The last instruction must be a terminator (branch, jump or return); the
    verifier in :mod:`repro.nfil.validate` enforces this.
    """

    label: str
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> None:
        """Append an instruction to the block."""
        self.instructions.append(instruction)

    @property
    def terminator(self) -> Optional[Instruction]:
        """Return the block's terminator, or None if it has none yet."""
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {instruction}" for instruction in self.instructions)
        return "\n".join(lines)


@dataclass
class Function:
    """An NFIL function: parameters, labelled blocks, entry label."""

    name: str
    params: List[Param] = field(default_factory=list)
    blocks: Dict[str, BasicBlock] = field(default_factory=dict)
    entry: str = "entry"

    def block(self, label: str) -> BasicBlock:
        """Return (creating if needed) the block with the given label."""
        if label not in self.blocks:
            self.blocks[label] = BasicBlock(label)
        return self.blocks[label]

    def param_names(self) -> List[str]:
        """Return the parameter names in declaration order."""
        return [param.name for param in self.params]

    def instruction_count(self) -> int:
        """Return the static number of instructions in the function."""
        return sum(len(block.instructions) for block in self.blocks.values())

    def __str__(self) -> str:
        header = f"func {self.name}({', '.join(self.param_names())})"
        body = "\n".join(str(self.blocks[label]) for label in self.blocks)
        return f"{header}\n{body}"


@dataclass(frozen=True)
class ExternDecl:
    """Declaration of an extern (stateful library method).

    Attributes:
        name: symbol used at call sites.
        arity: number of arguments the extern expects.
        returns_value: whether the extern produces a return value.
        structure: name of the data structure the extern belongs to (used to
            look up symbolic models and performance contracts).
        method: method name within the structure.
    """

    name: str
    arity: int
    returns_value: bool = True
    structure: str = ""
    method: str = ""


@dataclass
class Module:
    """A collection of NFIL functions plus extern declarations."""

    name: str
    functions: Dict[str, Function] = field(default_factory=dict)
    externs: Dict[str, ExternDecl] = field(default_factory=dict)

    def add_function(self, function: Function) -> Function:
        """Register a function; raises on duplicate names."""
        if function.name in self.functions or function.name in self.externs:
            raise ValueError(f"duplicate symbol {function.name!r} in module {self.name!r}")
        self.functions[function.name] = function
        return function

    def declare_extern(
        self,
        name: str,
        arity: int,
        *,
        returns_value: bool = True,
        structure: str = "",
        method: str = "",
    ) -> ExternDecl:
        """Declare an extern symbol; re-declaration must be identical."""
        decl = ExternDecl(name, arity, returns_value, structure, method)
        existing = self.externs.get(name)
        if existing is not None:
            if existing != decl:
                raise ValueError(f"conflicting extern declarations for {name!r}")
            return existing
        if name in self.functions:
            raise ValueError(f"symbol {name!r} already defined as a function")
        self.externs[name] = decl
        return decl

    def get_function(self, name: str) -> Function:
        """Return the function named ``name``."""
        return self.functions[name]

    def is_extern(self, name: str) -> bool:
        """Return True when ``name`` refers to an extern declaration."""
        return name in self.externs

    def instruction_count(self) -> int:
        """Return the static instruction count over all functions."""
        return sum(function.instruction_count() for function in self.functions.values())

    def __str__(self) -> str:
        parts = [f"module {self.name}"]
        for decl in self.externs.values():
            parts.append(f"extern {decl.name}/{decl.arity}")
        parts.extend(str(function) for function in self.functions.values())
        return "\n\n".join(parts)
