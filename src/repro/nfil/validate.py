"""Static checks for NFIL programs.

The verifier enforces the structural invariants the interpreter and the
symbolic engine rely on:

* the entry block exists, every block is non-empty, ends with exactly one
  terminator, and has no terminator in the middle;
* every branch/jump target names an existing block;
* every register read is *must-defined*: on every CFG path from entry to
  the use, the register was written first (computed by a forward
  intersection dataflow over the CFG);
* calls name a known function or extern, with matching arity, and only
  value-returning callees may write a destination register.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.nfil.instructions import (
    Br,
    Call,
    Imm,
    Instruction,
    Jmp,
    Reg,
)
from repro.nfil.program import BasicBlock, Function, Module

__all__ = ["ValidationError", "validate_function", "validate_module"]


class ValidationError(ValueError):
    """An NFIL program violates a structural invariant."""


def _successors(block: BasicBlock) -> Tuple[str, ...]:
    terminator = block.instructions[-1]
    if isinstance(terminator, Br):
        return (terminator.then_label, terminator.else_label)
    if isinstance(terminator, Jmp):
        return (terminator.label,)
    return ()


def _check_structure(function: Function) -> None:
    if not function.blocks:
        raise ValidationError(f"{function.name}: function has no blocks")
    if function.entry not in function.blocks:
        raise ValidationError(f"{function.name}: entry block {function.entry!r} does not exist")
    for label, block in function.blocks.items():
        if label != block.label:
            raise ValidationError(
                f"{function.name}: block registered as {label!r} is labelled {block.label!r}"
            )
        if not block.instructions:
            raise ValidationError(f"{function.name}:{label}: empty basic block")
        for instruction in block.instructions[:-1]:
            if instruction.is_terminator():
                raise ValidationError(
                    f"{function.name}:{label}: terminator {instruction} not at block end"
                )
        if not block.instructions[-1].is_terminator():
            raise ValidationError(f"{function.name}:{label}: block does not end with a terminator")
        for target in _successors(block):
            if target not in function.blocks:
                raise ValidationError(
                    f"{function.name}:{label}: branch to unknown block {target!r}"
                )


def _check_calls(function: Function, module: Optional[Module]) -> None:
    if module is None:
        return
    for block in function.blocks.values():
        for instruction in block.instructions:
            if not isinstance(instruction, Call):
                continue
            where = f"{function.name}:{block.label}"
            if module.is_extern(instruction.callee):
                decl = module.externs[instruction.callee]
                if len(instruction.args) != decl.arity:
                    raise ValidationError(
                        f"{where}: extern {decl.name} expects {decl.arity} args, "
                        f"got {len(instruction.args)}"
                    )
                if instruction.dest is not None and not decl.returns_value:
                    raise ValidationError(
                        f"{where}: void extern {decl.name} used with destination "
                        f"%{instruction.dest}"
                    )
            elif instruction.callee in module.functions:
                callee = module.functions[instruction.callee]
                if len(instruction.args) != len(callee.params):
                    raise ValidationError(
                        f"{where}: {callee.name} expects {len(callee.params)} args, "
                        f"got {len(instruction.args)}"
                    )
            else:
                raise ValidationError(f"{where}: call to unknown symbol {instruction.callee!r}")


def _uses(instruction: Instruction) -> List[str]:
    names: List[str] = []
    for operand in instruction.operands():
        if isinstance(operand, Reg):
            names.append(operand.name)
        elif not isinstance(operand, Imm):  # pragma: no cover - defensive
            raise ValidationError(f"bad operand {operand!r} in {instruction}")
    return names


def _check_definitions(function: Function) -> None:
    """Forward must-defined dataflow: every use is dominated by a def."""
    params = set(function.param_names())
    labels = list(function.blocks)
    # block label -> set of registers defined on every path to block entry
    defined_in: Dict[str, Optional[Set[str]]] = {label: None for label in labels}
    defined_in[function.entry] = set(params)
    preds: Dict[str, List[str]] = {label: [] for label in labels}
    for label, block in function.blocks.items():
        for successor in _successors(block):
            preds[successor].append(label)

    def block_out(label: str, incoming: Set[str]) -> Set[str]:
        out = set(incoming)
        for instruction in function.blocks[label].instructions:
            dest = instruction.defines()
            if dest is not None:
                out.add(dest)
        return out

    changed = True
    while changed:
        changed = False
        for label in labels:
            if label == function.entry:
                incoming: Optional[Set[str]] = set(params)
            else:
                incoming = None
                for pred in preds[label]:
                    pred_in = defined_in[pred]
                    if pred_in is None:
                        continue  # predecessor not yet reached
                    pred_out = block_out(pred, pred_in)
                    incoming = pred_out if incoming is None else incoming & pred_out
            if incoming is not None and incoming != defined_in[label]:
                defined_in[label] = incoming
                changed = True

    for label in labels:
        incoming = defined_in[label]
        if incoming is None:
            continue  # unreachable block: nothing to check
        available = set(incoming)
        for instruction in function.blocks[label].instructions:
            for name in _uses(instruction):
                if name not in available:
                    raise ValidationError(
                        f"{function.name}:{label}: register %{name} used before "
                        f"definition in {instruction}"
                    )
            dest = instruction.defines()
            if dest is not None:
                available.add(dest)


def validate_function(function: Function, module: Optional[Module] = None) -> Function:
    """Validate one function; returns it unchanged on success.

    Raises:
        ValidationError: a structural invariant is violated.
    """
    _check_structure(function)
    _check_definitions(function)
    _check_calls(function, module)
    return function


def validate_module(module: Module) -> Module:
    """Validate every function of a module; returns it unchanged on success."""
    for function in module.functions.values():
        validate_function(function, module)
    return module
