"""NFIL instruction set.

All registers are 64-bit unsigned integers (:data:`WORD_BITS`); loads
zero-extend, stores truncate to the access size.  Comparison results are 0
or 1 in a 64-bit register; branches test for non-zero.  Keeping a single
register width keeps both the interpreter and the symbolic engine simple
without affecting the performance observables BOLT cares about (dynamic
instruction count, memory access count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1

#: Binary operations supported by :class:`BinOp`.
BINARY_OPS = ("add", "sub", "mul", "udiv", "urem", "and", "or", "xor", "shl", "lshr")

#: Comparison predicates supported by :class:`Cmp`.
CMP_OPS = ("eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge")

#: Legal memory access sizes, in bytes.
ACCESS_SIZES = (1, 2, 4, 8)


@dataclass(frozen=True, slots=True)
class Reg:
    """A reference to a virtual register."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate operand (64-bit unsigned)."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & WORD_MASK)

    def __str__(self) -> str:
        return str(self.value)


Operand = Union[Reg, Imm]


def as_operand(value: Union[Operand, int]) -> Operand:
    """Coerce an int into an :class:`Imm`; pass registers through."""
    if isinstance(value, (Reg, Imm)):
        return value
    if isinstance(value, int):
        return Imm(value)
    raise TypeError(f"cannot use {type(value).__name__} as an operand")


class Instruction:
    """Base class of all NFIL instructions."""

    __slots__ = ()

    #: cost-model category, overridden per concrete instruction class.
    category = "alu"

    def operands(self) -> Tuple[Operand, ...]:
        """Return the operands read by this instruction."""
        return ()

    def defines(self) -> Optional[str]:
        """Return the register name written by this instruction, if any."""
        return None

    def is_terminator(self) -> bool:
        """Return True for instructions that end a basic block."""
        return False


@dataclass(frozen=True, slots=True)
class ConstInstr(Instruction):
    """``dest = constant``."""

    dest: str
    value: int

    category = "const"

    def defines(self) -> Optional[str]:
        return self.dest

    def __str__(self) -> str:
        return f"%{self.dest} = const {self.value & WORD_MASK}"


@dataclass(frozen=True, slots=True)
class BinOp(Instruction):
    """``dest = a <op> b``."""

    op: str
    dest: str
    a: Operand
    b: Operand

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    @property
    def category(self) -> str:  # type: ignore[override]
        if self.op == "mul":
            return "mul"
        if self.op in ("udiv", "urem"):
            return "div"
        return "alu"

    def operands(self) -> Tuple[Operand, ...]:
        return (self.a, self.b)

    def defines(self) -> Optional[str]:
        return self.dest

    def __str__(self) -> str:
        return f"%{self.dest} = {self.op} {self.a}, {self.b}"


@dataclass(frozen=True, slots=True)
class Cmp(Instruction):
    """``dest = (a <pred> b) ? 1 : 0``."""

    op: str
    dest: str
    a: Operand
    b: Operand

    category = "cmp"

    def __post_init__(self) -> None:
        if self.op not in CMP_OPS:
            raise ValueError(f"unknown comparison {self.op!r}")

    def operands(self) -> Tuple[Operand, ...]:
        return (self.a, self.b)

    def defines(self) -> Optional[str]:
        return self.dest

    def __str__(self) -> str:
        return f"%{self.dest} = cmp.{self.op} {self.a}, {self.b}"


@dataclass(frozen=True, slots=True)
class Select(Instruction):
    """``dest = cond ? a : b``."""

    dest: str
    cond: Operand
    a: Operand
    b: Operand

    category = "select"

    def operands(self) -> Tuple[Operand, ...]:
        return (self.cond, self.a, self.b)

    def defines(self) -> Optional[str]:
        return self.dest

    def __str__(self) -> str:
        return f"%{self.dest} = select {self.cond}, {self.a}, {self.b}"


@dataclass(frozen=True, slots=True)
class Load(Instruction):
    """``dest = memory[addr .. addr+size)`` (little-endian, zero-extended)."""

    dest: str
    addr: Operand
    size: int = 8

    category = "load"

    def __post_init__(self) -> None:
        if self.size not in ACCESS_SIZES:
            raise ValueError(f"illegal load size {self.size}")

    def operands(self) -> Tuple[Operand, ...]:
        return (self.addr,)

    def defines(self) -> Optional[str]:
        return self.dest

    def __str__(self) -> str:
        return f"%{self.dest} = load{self.size * 8} [{self.addr}]"


@dataclass(frozen=True, slots=True)
class Store(Instruction):
    """``memory[addr .. addr+size) = value`` (little-endian, truncated)."""

    addr: Operand
    value: Operand
    size: int = 8

    category = "store"

    def __post_init__(self) -> None:
        if self.size not in ACCESS_SIZES:
            raise ValueError(f"illegal store size {self.size}")

    def operands(self) -> Tuple[Operand, ...]:
        return (self.addr, self.value)

    def __str__(self) -> str:
        return f"store{self.size * 8} [{self.addr}], {self.value}"


@dataclass(frozen=True, slots=True)
class Br(Instruction):
    """Conditional branch: jump to ``then_label`` when ``cond != 0``."""

    cond: Operand
    then_label: str
    else_label: str

    category = "branch"

    def operands(self) -> Tuple[Operand, ...]:
        return (self.cond,)

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"br {self.cond}, {self.then_label}, {self.else_label}"


@dataclass(frozen=True, slots=True)
class Jmp(Instruction):
    """Unconditional jump."""

    label: str

    category = "jump"

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"jmp {self.label}"


@dataclass(frozen=True, slots=True)
class Call(Instruction):
    """Call an internal function or an extern (stateful library method)."""

    dest: Optional[str]
    callee: str
    args: Tuple[Operand, ...] = field(default_factory=tuple)

    category = "call"

    def operands(self) -> Tuple[Operand, ...]:
        return self.args

    def defines(self) -> Optional[str]:
        return self.dest

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.args)
        prefix = f"%{self.dest} = " if self.dest else ""
        return f"{prefix}call {self.callee}({args})"


@dataclass(frozen=True, slots=True)
class Ret(Instruction):
    """Return from the current function."""

    value: Optional[Operand] = None

    category = "ret"

    def operands(self) -> Tuple[Operand, ...]:
        return (self.value,) if self.value is not None else ()

    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"
