"""Constant-time auditing of performance contracts.

Since a contract bounds *cycles per input class* symbolically, it can
answer a security question no measurement campaign can settle: are two
secret-dependent input classes **cycle-indistinguishable**?  See
:mod:`repro.audit.ct` for the audit engine and the per-NF registry of
secret class sets.
"""

from repro.audit.ct import (
    SECRET_CLASS_SETS,
    AuditFinding,
    PairVerdict,
    SecretClassSet,
    audit_contract,
)

__all__ = [
    "SECRET_CLASS_SETS",
    "AuditFinding",
    "PairVerdict",
    "SecretClassSet",
    "audit_contract",
]
