"""Constant-time audit: prove or refute per-class cycle-indistinguishability.

The threat model is the classic remote timing side channel (Pacer's
concern, reframed as a contract property): an observer who cannot read an
NF's state can still *time* its packets.  If two input classes — whose
distinction encodes a secret, e.g. "this external port is NATed" vs "it
is not" — have different cycle costs, timing leaks the secret.

Contracts make the question decidable.  A hardware model turns each
class's instruction/memory bounds into one cycle *polynomial* over PCVs
(:meth:`repro.hw.CycleModel.cycles_expr`); two classes are
cycle-indistinguishable under that model **iff the polynomials are
identical** — equality of exact rational coefficients is a proof over
*every* PCV valuation, not a sample.  A difference is refutation: the
audit reports the offending class pair, the symbolic cycle delta, its
maximum at the PCV bounds, and a concrete witness valuation.

Each NF declares its secret-dependent class sets in
:data:`SECRET_CLASS_SETS` together with an **expectation**: ``"leak"``
for channels the NF knowingly exposes (the VigNAT-style NAT *is* a port
scan oracle — its miss path walks two flow tables the hit path never
touches), ``"constant_time"`` for pairs the implementation claims are
indistinguishable (the bridge charges its ``hit`` and ``hairpin``
classes identically, so the forwarding decision is timing-invisible).
The CLI's ``ct-audit`` exits non-zero when the *computed* verdict
contradicts the *declared* expectation — a silently appearing leak (or a
silently vanished one) fails CI, while known leaks stay documented
rather than red.  ``--strict`` additionally fails on any leak at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.contract import PerformanceContract
from repro.core.distiller import resolve_pcv
from repro.core.perfexpr import Number, PerfExpr

__all__ = [
    "SECRET_CLASS_SETS",
    "AuditFinding",
    "PairVerdict",
    "SecretClassSet",
    "audit_contract",
]

#: Expectation values a secret class set may declare.
LEAK = "leak"
CONSTANT_TIME = "constant_time"


@dataclass(frozen=True)
class SecretClassSet:
    """A set of input classes whose distinction encodes a secret.

    Attributes:
        name: short label for audit reports ("external port scan").
        classes: the input-class names to compare pairwise; every class
            must exist in the audited contract.
        secret: what an observer learns by telling the classes apart.
        expectation: :data:`LEAK` when the channel is known and accepted,
            :data:`CONSTANT_TIME` when the NF claims indistinguishability.
    """

    name: str
    classes: Tuple[str, ...]
    secret: str
    expectation: str

    def __post_init__(self) -> None:
        if len(self.classes) < 2:
            raise ValueError(f"secret class set {self.name!r} needs at least two classes")
        if self.expectation not in (LEAK, CONSTANT_TIME):
            raise ValueError(
                f"secret class set {self.name!r}: expectation must be "
                f"{LEAK!r} or {CONSTANT_TIME!r}, got {self.expectation!r}"
            )


@dataclass(frozen=True)
class PairVerdict:
    """Indistinguishability verdict for one class pair under one model."""

    model: str
    class_a: str
    class_b: str
    indistinguishable: bool
    #: ``cycles(class_a) − cycles(class_b)`` symbolically (zero on proof).
    delta: PerfExpr
    #: Largest |delta| found over the witness corners (0 on proof).
    max_delta: Fraction
    #: PCV valuation attaining ``max_delta`` (None on proof).
    witness: Optional[Mapping[str, int]]

    def render(self, registry=None) -> str:
        pair = f"{self.class_a} vs {self.class_b}"
        if self.indistinguishable:
            return f"{pair} @{self.model}: constant time (cycle polynomials identical)"
        terms = sorted(self.delta.variables())
        human = "; ".join(resolve_pcv(name, registry) for name in terms)
        line = (
            f"{pair} @{self.model}: LEAK — delta {self.delta.render()} cycles, "
            f"up to {self.max_delta} at witness {dict(self.witness or {})}"
        )
        if human:
            line += f"  [{human}]"
        return line


@dataclass(frozen=True)
class AuditFinding:
    """The audit result for one secret class set of one NF."""

    nf_name: str
    secret_set: SecretClassSet
    verdicts: Tuple[PairVerdict, ...]

    @property
    def leaks(self) -> bool:
        """True when any pair is distinguishable under any model."""
        return any(not verdict.indistinguishable for verdict in self.verdicts)

    @property
    def verdict(self) -> str:
        return LEAK if self.leaks else CONSTANT_TIME

    @property
    def matches_expectation(self) -> bool:
        return self.verdict == self.secret_set.expectation

    def render(self, registry=None) -> List[str]:
        status = self.verdict
        marker = "" if self.matches_expectation else "  ** UNEXPECTED **"
        lines = [
            f"{self.nf_name} / {self.secret_set.name} "
            f"(secret: {self.secret_set.secret}): {status} "
            f"[declared: {self.secret_set.expectation}]{marker}"
        ]
        lines.extend(f"  {verdict.render(registry)}" for verdict in self.verdicts)
        return lines


def _effective_bounds(
    contract: PerformanceContract, bounds: Optional[Mapping[str, Number]]
) -> Dict[str, Number]:
    effective: Dict[str, Number] = {name: 1 for name in contract.variables()}
    effective.update(contract.registry.default_bounds())
    if bounds:
        effective.update(bounds)
    return effective


def _witness(
    delta: PerfExpr,
    contract: PerformanceContract,
    maxima: Mapping[str, Number],
) -> Tuple[Fraction, Dict[str, int]]:
    """Search corner valuations for the largest |delta|.

    Corners: every PCV at its minimum, every PCV at its maximum, and each
    PCV one-hot at its maximum.  A nonzero polynomial difference always
    shows at one of these for the affine-in-each-variable expressions
    contracts produce (every monomial is a product of distinct PCVs with
    a nonzero coefficient, and the all-minima corner pins the constant
    term); the caller still treats the *symbolic* comparison as the
    verdict and this search as reporting.
    """
    variables = sorted(delta.variables())
    minima = {
        name: (pcv.min_value if (pcv := contract.registry.maybe_get(name)) else 0)
        for name in variables
    }
    corners: List[Dict[str, int]] = [dict(minima)]
    corners.append({name: int(maxima.get(name, 1)) for name in variables})
    for name in variables:
        corner = dict(minima)
        corner[name] = int(maxima.get(name, 1))
        corners.append(corner)
    best_value = Fraction(0)
    best_corner: Dict[str, int] = corners[0] if corners else {}
    for corner in corners:
        value = delta.evaluate(corner)
        if abs(value) > abs(best_value):
            best_value, best_corner = value, corner
    return best_value, best_corner


def audit_contract(
    contract: PerformanceContract,
    secret_sets: Sequence[SecretClassSet],
    *,
    models: Sequence[object],
    structures: Sequence[object] = (),
    bounds: Optional[Mapping[str, Number]] = None,
) -> List[AuditFinding]:
    """Audit one contract against its declared secret class sets.

    Args:
        contract: the NF's generated contract (counts, not cycles — the
            cycle columns are derived here per model).
        secret_sets: the class sets to compare (see :data:`SECRET_CLASS_SETS`).
        models: :class:`repro.hw.CycleModel` instances; each pair is
            audited under every model (typed loosely to keep this layer
            import-free of :mod:`repro.hw`).
        structures: structure instances behind the contract's PCVs, for
            per-owner memory pricing.
        bounds: PCV maxima overriding the registry's declared bounds.

    Raises:
        KeyError: a secret set names a class the contract does not have.
    """
    maxima = _effective_bounds(contract, bounds)
    findings: List[AuditFinding] = []
    for secret_set in secret_sets:
        entries = {name: contract.entry_for(name) for name in secret_set.classes}
        verdicts: List[PairVerdict] = []
        for model in models:
            cycles = {
                name: model.cycles_expr(entry, structures=structures)  # type: ignore[attr-defined]
                for name, entry in entries.items()
            }
            for index, class_a in enumerate(secret_set.classes):
                for class_b in secret_set.classes[index + 1 :]:
                    delta = cycles[class_a] - cycles[class_b]
                    if not delta:
                        verdicts.append(
                            PairVerdict(
                                model.name,  # type: ignore[attr-defined]
                                class_a,
                                class_b,
                                True,
                                delta,
                                Fraction(0),
                                None,
                            )
                        )
                        continue
                    value, corner = _witness(delta, contract, maxima)
                    verdicts.append(
                        PairVerdict(
                            model.name,  # type: ignore[attr-defined]
                            class_a,
                            class_b,
                            False,
                            delta,
                            abs(value),
                            corner,
                        )
                    )
        findings.append(AuditFinding(contract.nf_name, secret_set, tuple(verdicts)))
    return findings


#: The per-NF registry of secret-dependent class sets the CLI audits.
#: Expectations document the *accepted* security posture: a ``leak`` entry
#: is a channel the NF's design inherently exposes (with the rationale in
#: ``secret``), a ``constant_time`` entry is a claim CI must keep proving.
SECRET_CLASS_SETS: Dict[str, Tuple[SecretClassSet, ...]] = {
    "bridge": (
        SecretClassSet(
            "mac-table membership",
            ("hit", "miss"),
            "whether the destination MAC has been learned (who is on the LAN)",
            LEAK,
        ),
        SecretClassSet(
            "forwarding decision",
            ("hit", "hairpin"),
            "whether the frame was forwarded or hairpin-dropped",
            CONSTANT_TIME,
        ),
    ),
    "router": (
        # Both classes walk the trie to the same depth PCV ``d`` and charge
        # identical polynomials: timing reveals *how deep* the lookup went,
        # but not whether a route matched at that depth — the membership
        # bit itself is constant time, and CI keeps proving it.
        SecretClassSet(
            "fib membership at equal depth",
            ("routed", "no_route"),
            "whether a destination prefix exists in the FIB (topology probing)",
            CONSTANT_TIME,
        ),
    ),
    "nat": (
        SecretClassSet(
            "external port scan",
            ("external_hit", "external_miss"),
            "whether an external port maps to an internal host (NAT state oracle)",
            LEAK,
        ),
        SecretClassSet(
            "internal flow novelty",
            ("internal_new", "internal_existing"),
            "whether an internal flow was already active (traffic-pattern recovery)",
            LEAK,
        ),
    ),
    "lb": (
        SecretClassSet(
            "connection affinity",
            ("new_flow", "existing_flow"),
            "whether a flow already has backend affinity (connection-table oracle)",
            LEAK,
        ),
    ),
    "firewall": (
        SecretClassSet(
            "egress rule verdict",
            ("denied", "outbound_new"),
            "whether an outbound destination port is filtered (policy probing "
            "from the LAN: the denied path does no table work)",
            LEAK,
        ),
        SecretClassSet(
            "connection tracking",
            ("outbound_new", "outbound_established"),
            "whether an outbound flow was already tracked (conn-table oracle: "
            "admission allocates a slot the refresh path never touches)",
            LEAK,
        ),
        # The default-deny is deliberately shaped so both inbound paths do
        # one read-only lookup and return a constant: a WAN prober timing
        # the firewall cannot tell a tracked endpoint from an untracked
        # one.  CI keeps proving the polynomials identical.
        SecretClassSet(
            "inbound probe response",
            ("inbound_established", "unsolicited"),
            "whether a WAN-probed endpoint has an active connection "
            "(conn-table scan from outside)",
            CONSTANT_TIME,
        ),
    ),
    "monitor": (
        # The count-min sketch is constant-time by construction (no PCVs)
        # and the hot/cold verdict blocks are shape-identical, so the
        # cycle-delta polynomial is literally zero: timing reveals nothing
        # about which flows the monitor considers heavy hitters.
        SecretClassSet(
            "heavy-hitter status",
            ("hot_flow", "cold_flow"),
            "whether a flow is flagged as a heavy hitter (detection-threshold "
            "probing by an attacker pacing their own flows)",
            CONSTANT_TIME,
        ),
    ),
}
