"""Packet and header construction helpers for workloads and tests.

The NFs in this repository parse classic Ethernet (and, for the router,
IPv4) headers with constant offsets, so workload generation only needs to
populate the handful of fields the NFIL code actually loads.  Multi-byte
MAC values follow the NFs' little-endian load convention: the bridge
assembles a 48-bit MAC from a 4-byte and a 2-byte little-endian load, so
``mac_bytes(value)`` is ``value.to_bytes(6, "little")``.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

__all__ = [
    "ETHERNET_HEADER",
    "ETHERTYPE_IPV4",
    "IPV4_MIN_FRAME",
    "NAT_MIN_FRAME",
    "ethernet_frame",
    "ipv4_address",
    "ipv4_frame",
    "mac_bytes",
    "nat_frame",
]

#: Two MACs plus the EtherType.
ETHERNET_HEADER = 14
#: Ethernet header plus a minimal (option-free) IPv4 header.
IPV4_MIN_FRAME = 34
#: Ethernet + IPv4 + the two L4 port fields the NAT reads.
NAT_MIN_FRAME = 38
#: The IPv4 EtherType as the two on-wire bytes.
ETHERTYPE_IPV4: Tuple[int, int] = (0x08, 0x00)

_MAC_MAX = (1 << 48) - 1


def mac_bytes(value: int) -> bytes:
    """Encode a 48-bit MAC in the NFs' little-endian load order."""
    if not 0 <= value <= _MAC_MAX:
        raise ValueError(f"MAC {value:#x} is not a 48-bit value")
    return value.to_bytes(6, "little")


def ethernet_frame(
    dst: Union[int, bytes],
    src: Union[int, bytes],
    *,
    ethertype: Tuple[int, int] = ETHERTYPE_IPV4,
    payload: int = 50,
) -> bytes:
    """Build a minimal Ethernet frame (``dst | src | ethertype | zeros``)."""
    dst_b = mac_bytes(dst) if isinstance(dst, int) else bytes(dst)
    src_b = mac_bytes(src) if isinstance(src, int) else bytes(src)
    if len(dst_b) != 6 or len(src_b) != 6:
        raise ValueError("MACs must be six bytes")
    return dst_b + src_b + bytes(ethertype) + bytes(payload)


def ipv4_address(octets: Iterable[int] | int) -> int:
    """Normalise four octets (or a 32-bit int) into a host-order address."""
    if isinstance(octets, int):
        if not 0 <= octets < (1 << 32):
            raise ValueError(f"address {octets:#x} is not a 32-bit value")
        return octets
    parts = list(octets)
    if len(parts) != 4 or not all(0 <= part <= 0xFF for part in parts):
        raise ValueError(f"bad IPv4 octets: {parts!r}")
    return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]


def ipv4_frame(
    dst: Iterable[int] | int,
    *,
    ttl: int = 64,
    ethertype: Tuple[int, int] = ETHERTYPE_IPV4,
    payload: int = 16,
) -> bytes:
    """Build a minimal Ethernet+IPv4 frame.

    Only the fields the router reads are populated: the EtherType at
    offset 12, the TTL at offset 22 and the big-endian destination address
    at offsets 30–33.
    """
    if not 0 <= ttl <= 0xFF:
        raise ValueError(f"TTL {ttl} out of range")
    address = ipv4_address(dst)
    frame = bytearray(IPV4_MIN_FRAME + payload)
    frame[12], frame[13] = ethertype
    frame[22] = ttl
    frame[30:34] = address.to_bytes(4, "big")
    return bytes(frame)


def nat_frame(
    src: Iterable[int] | int,
    src_port: int,
    dst: Iterable[int] | int,
    dst_port: int,
    *,
    ethertype: Tuple[int, int] = ETHERTYPE_IPV4,
    payload: int = 12,
    ttl: int = 0,
) -> bytes:
    """Build a minimal Ethernet+IPv4+L4 frame for the NAT (and the LB).

    Populates the fields the NAT reads: the EtherType at offset 12, the
    big-endian source/destination addresses at 26–29 / 30–33 and the
    big-endian L4 ports at 34–35 / 36–37.  The TTL at offset 22 defaults
    to zero (the NAT and LB never read it); service-graph streams that
    continue into the router set it explicitly.
    """
    for port in (src_port, dst_port):
        if not 0 <= port < (1 << 16):
            raise ValueError(f"port {port} is not a 16-bit value")
    if not 0 <= ttl <= 0xFF:
        raise ValueError(f"TTL {ttl} out of range")
    frame = bytearray(NAT_MIN_FRAME + payload)
    frame[12], frame[13] = ethertype
    frame[22] = ttl
    frame[26:30] = ipv4_address(src).to_bytes(4, "big")
    frame[30:34] = ipv4_address(dst).to_bytes(4, "big")
    frame[34:36] = src_port.to_bytes(2, "big")
    frame[36:38] = dst_port.to_bytes(2, "big")
    return bytes(frame)
