"""Workload shapes: uniform, zipf and adversarial stimulus streams.

The paper's evaluation (§5) stresses each NF with workloads chosen to
exercise every contract entry, including adversarially constructed traffic
that drives the performance-critical variables to their bounds.  This
module provides the NF-agnostic half of that story:

* :class:`Stimulus` — one packet plus the scalar inputs of an invocation;
* :func:`uniform_indices` / :func:`zipf_indices` — deterministic (seeded)
  key samplers over a fixed population, uniform or Zipf-skewed;
* adversarial streams are *NF-specific* — they must know which input
  state drives a PCV to its maximum — and live next to each NF in
  :mod:`repro.nf.workloads`, built from these primitives.

Everything is deterministic under a caller-provided :class:`random.Random`
so benches are reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Mapping

__all__ = ["Stimulus", "uniform_indices", "zipf_indices", "zipf_weights"]


@dataclass(frozen=True)
class Stimulus:
    """One NF invocation: the packet buffer plus named scalar inputs.

    Attributes:
        packet: concrete packet bytes (may be truncated/short on purpose).
        scalars: the NF's non-packet inputs by symbol name (``in_port``,
            ``time``, ...).  ``len`` defaults to ``len(packet)`` when the
            harness builds the argument list.
        note: free-form tag ("fill", "worst_t", ...) carried into results
            for debugging and for adversarial worst-case bookkeeping.
    """

    packet: bytes
    scalars: Mapping[str, int] = field(default_factory=dict)
    note: str = ""


def uniform_indices(rng: random.Random, population: int, count: int) -> List[int]:
    """Sample ``count`` indices uniformly from ``range(population)``."""
    if population <= 0:
        raise ValueError("population must be positive")
    return [rng.randrange(population) for _ in range(count)]


def zipf_weights(population: int, s: float = 1.2) -> List[float]:
    """Return the (unnormalised) Zipf weights ``1 / rank**s``."""
    if population <= 0:
        raise ValueError("population must be positive")
    if s <= 0:
        raise ValueError("the Zipf exponent must be positive")
    return [1.0 / (rank**s) for rank in range(1, population + 1)]


def zipf_indices(
    rng: random.Random, population: int, count: int, *, s: float = 1.2
) -> List[int]:
    """Sample ``count`` indices Zipf-distributed over ``range(population)``.

    Index 0 is the hottest key.  The skew matches real traffic far better
    than uniform sampling: a handful of flows dominate, the tail stays
    cold — which keeps hot hash chains short but still occasionally walks
    the long ones.
    """
    weights = zipf_weights(population, s)
    return rng.choices(range(population), weights=weights, k=count)
