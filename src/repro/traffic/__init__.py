"""Traffic workloads and the measured-vs-predicted replay harness (§5).

The evaluation half of the reproduction: packet construction helpers
(:mod:`repro.traffic.packets`), deterministic uniform/Zipf key samplers
(:mod:`repro.traffic.generators`) and the MoonGen-role
:class:`~repro.traffic.replayer.Replayer`, which drives an NF through the
concrete interpreter/tracer and checks every execution — counts and
model-derived cycles — against its performance contract.

Adversarial worst-case streams are NF-specific and live in
:mod:`repro.nf.workloads`.  Capture-derived workloads come from
:mod:`repro.traffic.pcap`, a dependency-free classic-libpcap reader and
writer with adapters that turn a capture into stimulus streams (and loop
small fixtures into long, monotonic-clock benches).
"""

from repro.traffic.generators import Stimulus, uniform_indices, zipf_indices, zipf_weights
from repro.traffic.pcap import (
    Capture,
    CapturedPacket,
    LINKTYPE_ETHERNET,
    PcapFormatError,
    capture_stimuli,
    capture_ticks,
    read_pcap,
    sample_capture,
    write_pcap,
)
from repro.traffic.packets import (
    ETHERNET_HEADER,
    ETHERTYPE_IPV4,
    IPV4_MIN_FRAME,
    NAT_MIN_FRAME,
    ethernet_frame,
    ipv4_address,
    ipv4_frame,
    mac_bytes,
    nat_frame,
)
from repro.traffic.replayer import (
    ClassSummary,
    NFTarget,
    PacketOutcome,
    Replayer,
    ReplayResult,
    TAIL_PERCENTILES,
    tail_envelopes,
)

__all__ = [
    "Capture",
    "CapturedPacket",
    "ClassSummary",
    "ETHERNET_HEADER",
    "ETHERTYPE_IPV4",
    "IPV4_MIN_FRAME",
    "LINKTYPE_ETHERNET",
    "NAT_MIN_FRAME",
    "NFTarget",
    "PacketOutcome",
    "PcapFormatError",
    "ReplayResult",
    "Replayer",
    "Stimulus",
    "TAIL_PERCENTILES",
    "capture_stimuli",
    "capture_ticks",
    "ethernet_frame",
    "ipv4_address",
    "ipv4_frame",
    "mac_bytes",
    "nat_frame",
    "read_pcap",
    "sample_capture",
    "tail_envelopes",
    "uniform_indices",
    "write_pcap",
    "zipf_indices",
    "zipf_weights",
]
