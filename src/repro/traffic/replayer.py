"""The MoonGen-role replayer: measured-vs-predicted curves per workload.

The paper validates contracts by replaying traffic through the
instrumented NF and checking every execution against the prediction of
the contract entry it falls into (§3.2, §5).  :class:`Replayer` automates
that loop over a stimulus stream:

1. run the stimulus through the NF harness (concrete interpreter + tracer),
2. match the trace back to a contract entry (via the replay environment),
3. evaluate the entry at the observed PCVs → predicted instruction and
   memory counts, and through each :class:`~repro.hw.CycleModel` →
   predicted cycles,
4. price the trace under the same models → "measured" cycles,
5. record any violation of measured ≤ predicted.

The result aggregates per input class and renders as the
measured-vs-predicted table ``python -m repro.cli bench`` prints, and
serialises to the ``BENCH_*.json`` schema CI archives.

The loop is built for throughput: everything that depends only on the
(harness, contract, models) triple is resolved at construction time —
path predicates compile to closures (:func:`repro.sym.expr.
compile_conjunction`), contract polynomials and cycle pricing compile to
scaled-integer evaluators (:meth:`repro.core.perfexpr.PerfExpr.
compile_scaled`, :meth:`repro.hw.model.CycleModel.compile_measure`) — so
the per-packet work is one interpreter run plus straight-line integer
arithmetic.  Cycle values convert back to :class:`~fractions.Fraction`
only when an outcome is recorded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Protocol, Sequence, Tuple

from repro.core.contract import ContractEntry, Metric, PerformanceContract
from repro.core.perfexpr import PerfExpr
from repro.core.report import format_table
from repro.hw.model import CycleModel
from repro.nfil.tracer import ExecutionTrace
from repro.structures.base import Structure
from repro.sym.expr import compile_conjunction
from repro.traffic.generators import Stimulus

__all__ = [
    "ClassSummary",
    "NFTarget",
    "PacketOutcome",
    "Replayer",
    "ReplayResult",
    "TAIL_PERCENTILES",
    "tail_envelopes",
]

#: The percentiles the tail-latency contract columns cover.
TAIL_PERCENTILES = (50, 95, 99)


def _nearest_rank(ordered: Sequence[int], percentile: int) -> int:
    """Nearest-rank percentile of an ascending-sorted, non-empty sample set.

    ``index = ceil(percentile·n/100) − 1`` — exact integer arithmetic, no
    interpolation, so percentile values are always members of the sample
    population and stay exact in the scaled-integer domain.
    """
    return ordered[-(-percentile * len(ordered) // 100) - 1]


def tail_envelopes(predicted_samples: Sequence[int]) -> Dict[int, int]:
    """Predicted tail envelope per percentile, in scaled cycles.

    The envelope at percentile *q* is the nearest-rank *q*-percentile of
    the **predicted** per-packet cycle population of the class.  Sound by
    sorted dominance: the replay already asserts measured ≤ predicted
    per packet, and ``a_i ≤ b_i`` pointwise implies ``sorted(a)_k ≤
    sorted(b)_k`` at every rank — so each measured percentile is bounded
    by the same percentile of the predictions, a far tighter statement
    than the single worst-case envelope.  (Module-level and resolved at
    call time, so tests can swap in a doctored envelope to prove the
    bench actually checks it.)
    """
    ordered = sorted(predicted_samples)
    return {p: _nearest_rank(ordered, p) for p in TAIL_PERCENTILES}


class NFTarget(Protocol):
    """What the replayer needs from an NF harness.

    :class:`repro.nf.replay.NFHarness` is the canonical implementation.
    """

    name: str
    structures: Tuple[Structure, ...]

    def run(self, stimulus: Stimulus) -> Tuple[Optional[int], ExecutionTrace]:
        """Execute one stimulus; return (NF return value, trace)."""
        ...

    def env(self, stimulus: Stimulus, trace: ExecutionTrace) -> Dict[str, int]:
        """Build the symbol assignment the execution corresponds to."""
        ...


@dataclass(frozen=True)
class PacketOutcome:
    """Measured-vs-predicted record of one replayed stimulus."""

    index: int
    note: str
    class_name: Optional[str]
    pcvs: Mapping[str, int]
    measured: Mapping[Metric, int]
    predicted: Mapping[Metric, int]
    #: model name -> (measured cycles, predicted cycles)
    cycles: Mapping[str, Tuple[Fraction, Fraction]]
    violations: Tuple[str, ...]
    #: model name -> (measured, predicted) in scaled-integer cycles — the
    #: exact per-packet samples the tail percentiles aggregate over.
    cycles_scaled: Mapping[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ClassSummary:
    """Aggregate over every packet that fell into one input class."""

    class_name: str
    packets: int = 0
    max_measured: Dict[Metric, int] = field(default_factory=dict)
    max_predicted: Dict[Metric, int] = field(default_factory=dict)
    max_cycles: Dict[str, Tuple[Fraction, Fraction]] = field(default_factory=dict)
    violations: int = 0
    #: model name -> measured per-packet cycle samples (scaled integers).
    cycle_samples: Dict[str, List[int]] = field(default_factory=dict)
    #: model name -> predicted per-packet cycle samples (scaled integers).
    predicted_samples: Dict[str, List[int]] = field(default_factory=dict)
    #: model name -> {percentile: measured value} (scaled), filled by
    #: :meth:`compute_tails` once the class population is complete.
    cycle_tails: Dict[str, Dict[int, int]] = field(default_factory=dict)
    #: model name -> {percentile: predicted envelope} (scaled).
    cycle_tail_envelopes: Dict[str, Dict[int, int]] = field(default_factory=dict)

    def absorb(self, outcome: PacketOutcome) -> None:
        self.packets += 1
        if not outcome.ok:
            self.violations += 1
        for metric, value in outcome.measured.items():
            self.max_measured[metric] = max(self.max_measured.get(metric, 0), value)
        for metric, value in outcome.predicted.items():
            self.max_predicted[metric] = max(self.max_predicted.get(metric, 0), value)
        for model, (measured, predicted) in outcome.cycles.items():
            prev = self.max_cycles.get(model, (Fraction(0), Fraction(0)))
            self.max_cycles[model] = (max(prev[0], measured), max(prev[1], predicted))
        for model, (measured, predicted) in outcome.cycles_scaled.items():
            self.cycle_samples.setdefault(model, []).append(measured)
            self.predicted_samples.setdefault(model, []).append(predicted)

    def compute_tails(self) -> None:
        """Aggregate the per-packet samples into measured tails + envelopes.

        Percentiles are nearest-rank over the class's complete observed
        packet population; envelopes come from :func:`tail_envelopes`
        (resolved at call time so tests can doctor it).
        """
        for model, samples in self.cycle_samples.items():
            ordered = sorted(samples)
            self.cycle_tails[model] = {
                p: _nearest_rank(ordered, p) for p in TAIL_PERCENTILES
            }
            self.cycle_tail_envelopes[model] = tail_envelopes(
                self.predicted_samples.get(model, ())
            )


@dataclass
class ReplayResult:
    """Everything one workload replay produced."""

    nf_name: str
    workload: str
    outcomes: List[PacketOutcome]
    summaries: Dict[str, ClassSummary]
    #: Largest observation of each PCV across the whole workload.
    max_pcvs: Dict[str, int]
    #: Worst-case cycle envelopes per model (PCV bounds, all entries).
    envelopes: Dict[str, Fraction]
    #: The scaled-integer denominator of every ``*_scaled`` cycle value.
    cycle_scale: int = 1
    #: Distribution-level failures: a measured tail percentile escaping
    #: its predicted envelope (per class, per model, per percentile).
    tail_violations: List[str] = field(default_factory=list)

    @property
    def packets(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> List[str]:
        per_packet = [m for outcome in self.outcomes for m in outcome.violations]
        return per_packet + list(self.tail_violations)

    @property
    def ok(self) -> bool:
        return not self.violations

    def classes_seen(self) -> List[str]:
        return sorted(self.summaries)

    def table(self) -> str:
        """Render the per-class measured-vs-predicted summary table."""
        models = sorted({model for s in self.summaries.values() for model in s.max_cycles})
        tailed = sorted({model for s in self.summaries.values() for model in s.cycle_tails})
        headers = ["input class", "packets", "instr max meas≤pred", "mem max meas≤pred"]
        headers += [f"{model} cycles" for model in models]
        headers += [f"{model} p99 meas≤env" for model in tailed]
        scale = self.cycle_scale
        rows: List[List[str]] = []
        for name in sorted(self.summaries):
            summary = self.summaries[name]
            row = [name, str(summary.packets)]
            for metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
                row.append(
                    f"{summary.max_measured.get(metric, 0)} ≤ "
                    f"{summary.max_predicted.get(metric, 0)}"
                )
            for model in models:
                measured, predicted = summary.max_cycles.get(model, (Fraction(0), Fraction(0)))
                row.append(f"{float(measured):.0f} ≤ {float(predicted):.0f}")
            for model in tailed:
                tails = summary.cycle_tails.get(model)
                envelope = summary.cycle_tail_envelopes.get(model, {})
                if not tails:
                    row.append("-")
                    continue
                row.append(
                    f"{tails[99] / scale:.0f} ≤ {envelope.get(99, 0) / scale:.0f}"
                )
            rows.append(row)
        title = f"{self.nf_name} / {self.workload}: {self.packets} packets, "
        title += "no violations" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return title + "\n" + format_table(headers, rows)

    def to_json(self) -> Dict[str, object]:
        """Serialise for the ``BENCH_*.json`` report."""
        classes: Dict[str, object] = {}
        scale = self.cycle_scale
        for name, summary in self.summaries.items():
            record: Dict[str, object] = {
                "packets": summary.packets,
                "violations": summary.violations,
                "max_measured": {str(m): v for m, v in summary.max_measured.items()},
                "max_predicted": {str(m): v for m, v in summary.max_predicted.items()},
                "max_cycles": {
                    model: {"measured": float(meas), "predicted": float(pred)}
                    for model, (meas, pred) in summary.max_cycles.items()
                },
            }
            if summary.cycle_tails:
                record["cycle_tails"] = {
                    model: {
                        **{f"p{p}": tails[p] / scale for p in TAIL_PERCENTILES},
                        "max": float(summary.max_cycles[model][0]),
                    }
                    for model, tails in summary.cycle_tails.items()
                }
                record["cycle_tail_envelopes"] = {
                    model: {f"p{p}": envelope[p] / scale for p in TAIL_PERCENTILES}
                    for model, envelope in summary.cycle_tail_envelopes.items()
                }
            classes[name] = record
        return {
            "packets": self.packets,
            "ok": self.ok,
            "violations": self.violations[:20],
            "classes": classes,
            "max_pcvs": dict(self.max_pcvs),
            "cycle_envelopes": {model: float(v) for model, v in self.envelopes.items()},
        }


class Replayer:
    """Replays workloads through an NF and scores them against its contract.

    Args:
        harness: the NF under test (module + instrumented state + glue).
        contract: the generated contract predictions are read from.
        models: hardware models to derive/price cycles with; counts are
            always checked even with no models.
    """

    def __init__(
        self,
        harness: NFTarget,
        contract: PerformanceContract,
        *,
        models: Sequence[CycleModel] = (),
    ) -> None:
        self.harness = harness
        self.contract = contract
        self.models = tuple(models)
        # A cache-simulating model prices the per-access address stream;
        # switch the harness's (off-by-default) recording on for it.
        if any(model.requires_access_stream for model in self.models) and hasattr(
            harness, "record_accesses"
        ):
            harness.record_accesses = True
        # Entries charge PCVs their path never observed at zero.
        self._zero_pcvs = {name: 0 for name in contract.variables()}
        # Harness, contract and models are fixed here, so derive each
        # entry's cycle expression (and the worst-case envelopes) once
        # instead of rebuilding them for every replayed packet.
        structures = tuple(harness.structures)
        self._cycle_exprs: Dict[str, Dict[str, PerfExpr]] = {
            model.name: {
                entry.input_class.name: model.cycles_expr(entry, structures=structures)
                for entry in contract.entries
            }
            for model in self.models
        }
        self._envelopes: Dict[str, Fraction] = {
            model.name: model.envelope(contract, structures=structures)
            for model in self.models
        }
        # ---- batched-replay programs (built once, run per packet) ---- #
        # Classification: the flattened (compiled predicate, entry) list
        # preserves `contract.classify` order — first entry whose class
        # predicate (or any of whose paths) matches wins.
        self._classify_program: List[Tuple[Callable[[Mapping[str, int]], bool], ContractEntry]]
        self._classify_program = []
        for entry in contract.entries:
            if entry.paths:
                for path in entry.paths:
                    self._classify_program.append(
                        (compile_conjunction(path.constraints), entry)
                    )
            else:
                self._classify_program.append((entry.input_class.matches, entry))
        # Count predictions: ceil(expr) per (entry, metric), each compiled
        # at its own clearing scale so the ceil is exact.
        self._count_programs: Dict[int, List[Tuple[Metric, Callable[..., int]]]] = {}
        for entry in contract.entries:
            programs: List[Tuple[Metric, Callable[..., int]]] = []
            for metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
                expr = entry.expr(metric)
                denom = expr.denominator_lcm()
                scaled = expr.compile_scaled(denom)

                def ceil_eval(bindings, _f=scaled, _d=denom) -> int:
                    return -(-_f(bindings) // _d)

                programs.append((metric, ceil_eval))
            self._count_programs[id(entry)] = programs
        # Cycles: one global scale clears every model price and every
        # derived cycle coefficient, so measured/predicted stay exact
        # integers and compare without Fraction arithmetic.
        scale = 1
        for model in self.models:
            scale = math.lcm(scale, model.price_denominator(structures))
            for expr in self._cycle_exprs[model.name].values():
                scale = math.lcm(scale, expr.denominator_lcm())
        self._cycle_scale = scale
        self._cycle_programs: List[
            Tuple[str, Callable[[ExecutionTrace], int], Dict[str, Callable[..., int]]]
        ] = [
            (
                model.name,
                model.compile_measure(structures, scale=scale),
                {
                    name: expr.compile_scaled(scale)
                    for name, expr in self._cycle_exprs[model.name].items()
                },
            )
            for model in self.models
        ]

    def score(self, stimulus: Stimulus, index: int = 0) -> PacketOutcome:
        """Run ONE stimulus and score it against the contract.

        This is the per-packet primitive :meth:`replay` iterates — and
        what the service-graph replayer (:mod:`repro.net`) calls per hop,
        where each hop of a packet's journey is scored against that NF's
        own contract before the cumulative trace is checked against the
        composed one.  Violations are recorded on the outcome, never
        raised.
        """
        _, trace = self.harness.run(stimulus)
        env = self.harness.env(stimulus, trace)
        entry = None
        for predicate, candidate in self._classify_program:
            if predicate(env):
                entry = candidate
                break
        cycle_scale = self._cycle_scale
        violations: List[str] = []
        measured: Dict[Metric, int] = {
            Metric.INSTRUCTIONS: trace.total_instructions(),
            Metric.MEMORY_ACCESSES: trace.total_memory_accesses(),
        }
        predicted: Dict[Metric, int] = {}
        cycles: Dict[str, Tuple[Fraction, Fraction]] = {}
        cycles_scaled: Dict[str, Tuple[int, int]] = {}
        observed = trace.pcv_bindings()
        if entry is None:
            violations.append(f"packet {index}: no contract entry covers the execution")
            class_name = None
        else:
            class_name = entry.input_class.name
            bindings = dict(self._zero_pcvs)
            bindings.update(observed)
            for metric, evaluate_count in self._count_programs[id(entry)]:
                predicted[metric] = evaluate_count(bindings)
                if measured[metric] > predicted[metric]:
                    violations.append(
                        f"packet {index} ({class_name}): measured {metric} "
                        f"{measured[metric]} exceeds predicted {predicted[metric]}"
                    )
            for model_name, measure, predictors in self._cycle_programs:
                measured_scaled = measure(trace)
                predicted_scaled = predictors[class_name](bindings)
                cycles_scaled[model_name] = (measured_scaled, predicted_scaled)
                cycles[model_name] = (
                    Fraction(measured_scaled, cycle_scale),
                    Fraction(predicted_scaled, cycle_scale),
                )
                if measured_scaled > predicted_scaled:
                    violations.append(
                        f"packet {index} ({class_name}): {model_name} measured "
                        f"{measured_scaled / cycle_scale:.1f} cycles exceeds predicted "
                        f"{predicted_scaled / cycle_scale:.1f}"
                    )
        return PacketOutcome(
            index=index,
            note=stimulus.note,
            class_name=class_name,
            pcvs=observed,
            measured=measured,
            predicted=predicted,
            cycles=cycles,
            violations=tuple(violations),
            cycles_scaled=cycles_scaled,
        )

    def replay(self, stimuli: Iterable[Stimulus], *, workload: str = "workload") -> ReplayResult:
        """Run every stimulus; never raises on a violation — records it."""
        outcomes: List[PacketOutcome] = []
        summaries: Dict[str, ClassSummary] = {}
        max_pcvs: Dict[str, int] = dict(self._zero_pcvs)
        score = self.score
        for index, stimulus in enumerate(stimuli):
            outcome = score(stimulus, index)
            for name, value in outcome.pcvs.items():
                if value > max_pcvs.get(name, 0):
                    max_pcvs[name] = value
            outcomes.append(outcome)
            key = outcome.class_name if outcome.class_name is not None else "<unclassified>"
            summaries.setdefault(key, ClassSummary(key)).absorb(outcome)
        scale = self._cycle_scale
        tail_violations: List[str] = []
        for name in sorted(summaries):
            summary = summaries[name]
            summary.compute_tails()
            for model in sorted(summary.cycle_tails):
                tails = summary.cycle_tails[model]
                envelope = summary.cycle_tail_envelopes[model]
                for p in TAIL_PERCENTILES:
                    if tails[p] > envelope.get(p, 0):
                        tail_violations.append(
                            f"class {name}: {model} measured p{p} "
                            f"{tails[p] / scale:.1f} cycles exceeds predicted "
                            f"envelope {envelope.get(p, 0) / scale:.1f}"
                        )
        return ReplayResult(
            nf_name=self.harness.name,
            workload=workload,
            outcomes=outcomes,
            summaries=summaries,
            max_pcvs=max_pcvs,
            envelopes=dict(self._envelopes),
            cycle_scale=scale,
            tail_violations=tail_violations,
        )
