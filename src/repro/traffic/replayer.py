"""The MoonGen-role replayer: measured-vs-predicted curves per workload.

The paper validates contracts by replaying traffic through the
instrumented NF and checking every execution against the prediction of
the contract entry it falls into (§3.2, §5).  :class:`Replayer` automates
that loop over a stimulus stream:

1. run the stimulus through the NF harness (concrete interpreter + tracer),
2. match the trace back to a contract entry (via the replay environment),
3. evaluate the entry at the observed PCVs → predicted instruction and
   memory counts, and through each :class:`~repro.hw.CycleModel` →
   predicted cycles,
4. price the trace under the same models → "measured" cycles,
5. record any violation of measured ≤ predicted.

The result aggregates per input class and renders as the
measured-vs-predicted table ``python -m repro.cli bench`` prints, and
serialises to the ``BENCH_*.json`` schema CI archives.

The loop is built for throughput: everything that depends only on the
(harness, contract, models) triple is resolved at construction time —
path predicates compile to closures (:func:`repro.sym.expr.
compile_conjunction`), contract polynomials and cycle pricing compile to
scaled-integer evaluators (:meth:`repro.core.perfexpr.PerfExpr.
compile_scaled`, :meth:`repro.hw.model.CycleModel.compile_measure`) — so
the per-packet work is one interpreter run plus straight-line integer
arithmetic.  Cycle values convert back to :class:`~fractions.Fraction`
only when an outcome is recorded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Protocol, Sequence, Tuple

from repro.core.contract import ContractEntry, Metric, PerformanceContract
from repro.core.perfexpr import PerfExpr
from repro.core.report import format_table
from repro.hw.model import CycleModel
from repro.nfil.tracer import ExecutionTrace
from repro.structures.base import Structure
from repro.sym.expr import compile_conjunction
from repro.traffic.generators import Stimulus

__all__ = ["ClassSummary", "NFTarget", "PacketOutcome", "Replayer", "ReplayResult"]


class NFTarget(Protocol):
    """What the replayer needs from an NF harness.

    :class:`repro.nf.replay.NFHarness` is the canonical implementation.
    """

    name: str
    structures: Tuple[Structure, ...]

    def run(self, stimulus: Stimulus) -> Tuple[Optional[int], ExecutionTrace]:
        """Execute one stimulus; return (NF return value, trace)."""
        ...

    def env(self, stimulus: Stimulus, trace: ExecutionTrace) -> Dict[str, int]:
        """Build the symbol assignment the execution corresponds to."""
        ...


@dataclass(frozen=True)
class PacketOutcome:
    """Measured-vs-predicted record of one replayed stimulus."""

    index: int
    note: str
    class_name: Optional[str]
    pcvs: Mapping[str, int]
    measured: Mapping[Metric, int]
    predicted: Mapping[Metric, int]
    #: model name -> (measured cycles, predicted cycles)
    cycles: Mapping[str, Tuple[Fraction, Fraction]]
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ClassSummary:
    """Aggregate over every packet that fell into one input class."""

    class_name: str
    packets: int = 0
    max_measured: Dict[Metric, int] = field(default_factory=dict)
    max_predicted: Dict[Metric, int] = field(default_factory=dict)
    max_cycles: Dict[str, Tuple[Fraction, Fraction]] = field(default_factory=dict)
    violations: int = 0

    def absorb(self, outcome: PacketOutcome) -> None:
        self.packets += 1
        if not outcome.ok:
            self.violations += 1
        for metric, value in outcome.measured.items():
            self.max_measured[metric] = max(self.max_measured.get(metric, 0), value)
        for metric, value in outcome.predicted.items():
            self.max_predicted[metric] = max(self.max_predicted.get(metric, 0), value)
        for model, (measured, predicted) in outcome.cycles.items():
            prev = self.max_cycles.get(model, (Fraction(0), Fraction(0)))
            self.max_cycles[model] = (max(prev[0], measured), max(prev[1], predicted))


@dataclass
class ReplayResult:
    """Everything one workload replay produced."""

    nf_name: str
    workload: str
    outcomes: List[PacketOutcome]
    summaries: Dict[str, ClassSummary]
    #: Largest observation of each PCV across the whole workload.
    max_pcvs: Dict[str, int]
    #: Worst-case cycle envelopes per model (PCV bounds, all entries).
    envelopes: Dict[str, Fraction]

    @property
    def packets(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> List[str]:
        return [message for outcome in self.outcomes for message in outcome.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def classes_seen(self) -> List[str]:
        return sorted(self.summaries)

    def table(self) -> str:
        """Render the per-class measured-vs-predicted summary table."""
        models = sorted({model for s in self.summaries.values() for model in s.max_cycles})
        headers = ["input class", "packets", "instr max meas≤pred", "mem max meas≤pred"]
        headers += [f"{model} cycles" for model in models]
        rows: List[List[str]] = []
        for name in sorted(self.summaries):
            summary = self.summaries[name]
            row = [name, str(summary.packets)]
            for metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
                row.append(
                    f"{summary.max_measured.get(metric, 0)} ≤ "
                    f"{summary.max_predicted.get(metric, 0)}"
                )
            for model in models:
                measured, predicted = summary.max_cycles.get(model, (Fraction(0), Fraction(0)))
                row.append(f"{float(measured):.0f} ≤ {float(predicted):.0f}")
            rows.append(row)
        title = f"{self.nf_name} / {self.workload}: {self.packets} packets, "
        title += "no violations" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return title + "\n" + format_table(headers, rows)

    def to_json(self) -> Dict[str, object]:
        """Serialise for the ``BENCH_*.json`` report."""
        classes: Dict[str, object] = {}
        for name, summary in self.summaries.items():
            classes[name] = {
                "packets": summary.packets,
                "violations": summary.violations,
                "max_measured": {str(m): v for m, v in summary.max_measured.items()},
                "max_predicted": {str(m): v for m, v in summary.max_predicted.items()},
                "max_cycles": {
                    model: {"measured": float(meas), "predicted": float(pred)}
                    for model, (meas, pred) in summary.max_cycles.items()
                },
            }
        return {
            "packets": self.packets,
            "ok": self.ok,
            "violations": self.violations[:20],
            "classes": classes,
            "max_pcvs": dict(self.max_pcvs),
            "cycle_envelopes": {model: float(v) for model, v in self.envelopes.items()},
        }


class Replayer:
    """Replays workloads through an NF and scores them against its contract.

    Args:
        harness: the NF under test (module + instrumented state + glue).
        contract: the generated contract predictions are read from.
        models: hardware models to derive/price cycles with; counts are
            always checked even with no models.
    """

    def __init__(
        self,
        harness: NFTarget,
        contract: PerformanceContract,
        *,
        models: Sequence[CycleModel] = (),
    ) -> None:
        self.harness = harness
        self.contract = contract
        self.models = tuple(models)
        # Entries charge PCVs their path never observed at zero.
        self._zero_pcvs = {name: 0 for name in contract.variables()}
        # Harness, contract and models are fixed here, so derive each
        # entry's cycle expression (and the worst-case envelopes) once
        # instead of rebuilding them for every replayed packet.
        structures = tuple(harness.structures)
        self._cycle_exprs: Dict[str, Dict[str, PerfExpr]] = {
            model.name: {
                entry.input_class.name: model.cycles_expr(entry, structures=structures)
                for entry in contract.entries
            }
            for model in self.models
        }
        self._envelopes: Dict[str, Fraction] = {
            model.name: model.envelope(contract, structures=structures)
            for model in self.models
        }
        # ---- batched-replay programs (built once, run per packet) ---- #
        # Classification: the flattened (compiled predicate, entry) list
        # preserves `contract.classify` order — first entry whose class
        # predicate (or any of whose paths) matches wins.
        self._classify_program: List[Tuple[Callable[[Mapping[str, int]], bool], ContractEntry]]
        self._classify_program = []
        for entry in contract.entries:
            if entry.paths:
                for path in entry.paths:
                    self._classify_program.append(
                        (compile_conjunction(path.constraints), entry)
                    )
            else:
                self._classify_program.append((entry.input_class.matches, entry))
        # Count predictions: ceil(expr) per (entry, metric), each compiled
        # at its own clearing scale so the ceil is exact.
        self._count_programs: Dict[int, List[Tuple[Metric, Callable[..., int]]]] = {}
        for entry in contract.entries:
            programs: List[Tuple[Metric, Callable[..., int]]] = []
            for metric in (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES):
                expr = entry.expr(metric)
                denom = expr.denominator_lcm()
                scaled = expr.compile_scaled(denom)

                def ceil_eval(bindings, _f=scaled, _d=denom) -> int:
                    return -(-_f(bindings) // _d)

                programs.append((metric, ceil_eval))
            self._count_programs[id(entry)] = programs
        # Cycles: one global scale clears every model price and every
        # derived cycle coefficient, so measured/predicted stay exact
        # integers and compare without Fraction arithmetic.
        scale = 1
        for model in self.models:
            scale = math.lcm(scale, model.price_denominator(structures))
            for expr in self._cycle_exprs[model.name].values():
                scale = math.lcm(scale, expr.denominator_lcm())
        self._cycle_scale = scale
        self._cycle_programs: List[
            Tuple[str, Callable[[ExecutionTrace], int], Dict[str, Callable[..., int]]]
        ] = [
            (
                model.name,
                model.compile_measure(structures, scale=scale),
                {
                    name: expr.compile_scaled(scale)
                    for name, expr in self._cycle_exprs[model.name].items()
                },
            )
            for model in self.models
        ]

    def score(self, stimulus: Stimulus, index: int = 0) -> PacketOutcome:
        """Run ONE stimulus and score it against the contract.

        This is the per-packet primitive :meth:`replay` iterates — and
        what the service-graph replayer (:mod:`repro.net`) calls per hop,
        where each hop of a packet's journey is scored against that NF's
        own contract before the cumulative trace is checked against the
        composed one.  Violations are recorded on the outcome, never
        raised.
        """
        _, trace = self.harness.run(stimulus)
        env = self.harness.env(stimulus, trace)
        entry = None
        for predicate, candidate in self._classify_program:
            if predicate(env):
                entry = candidate
                break
        cycle_scale = self._cycle_scale
        violations: List[str] = []
        measured: Dict[Metric, int] = {
            Metric.INSTRUCTIONS: trace.total_instructions(),
            Metric.MEMORY_ACCESSES: trace.total_memory_accesses(),
        }
        predicted: Dict[Metric, int] = {}
        cycles: Dict[str, Tuple[Fraction, Fraction]] = {}
        observed = trace.pcv_bindings()
        if entry is None:
            violations.append(f"packet {index}: no contract entry covers the execution")
            class_name = None
        else:
            class_name = entry.input_class.name
            bindings = dict(self._zero_pcvs)
            bindings.update(observed)
            for metric, evaluate_count in self._count_programs[id(entry)]:
                predicted[metric] = evaluate_count(bindings)
                if measured[metric] > predicted[metric]:
                    violations.append(
                        f"packet {index} ({class_name}): measured {metric} "
                        f"{measured[metric]} exceeds predicted {predicted[metric]}"
                    )
            for model_name, measure, predictors in self._cycle_programs:
                measured_scaled = measure(trace)
                predicted_scaled = predictors[class_name](bindings)
                cycles[model_name] = (
                    Fraction(measured_scaled, cycle_scale),
                    Fraction(predicted_scaled, cycle_scale),
                )
                if measured_scaled > predicted_scaled:
                    violations.append(
                        f"packet {index} ({class_name}): {model_name} measured "
                        f"{measured_scaled / cycle_scale:.1f} cycles exceeds predicted "
                        f"{predicted_scaled / cycle_scale:.1f}"
                    )
        return PacketOutcome(
            index=index,
            note=stimulus.note,
            class_name=class_name,
            pcvs=observed,
            measured=measured,
            predicted=predicted,
            cycles=cycles,
            violations=tuple(violations),
        )

    def replay(self, stimuli: Iterable[Stimulus], *, workload: str = "workload") -> ReplayResult:
        """Run every stimulus; never raises on a violation — records it."""
        outcomes: List[PacketOutcome] = []
        summaries: Dict[str, ClassSummary] = {}
        max_pcvs: Dict[str, int] = dict(self._zero_pcvs)
        score = self.score
        for index, stimulus in enumerate(stimuli):
            outcome = score(stimulus, index)
            for name, value in outcome.pcvs.items():
                if value > max_pcvs.get(name, 0):
                    max_pcvs[name] = value
            outcomes.append(outcome)
            key = outcome.class_name if outcome.class_name is not None else "<unclassified>"
            summaries.setdefault(key, ClassSummary(key)).absorb(outcome)
        return ReplayResult(
            nf_name=self.harness.name,
            workload=workload,
            outcomes=outcomes,
            summaries=summaries,
            max_pcvs=max_pcvs,
            envelopes=dict(self._envelopes),
        )
