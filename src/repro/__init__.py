"""repro — a reproduction of "Performance Contracts for Software Network Functions".

The package re-implements, in pure Python, the BOLT system presented at
NSDI 2019 together with every substrate it depends on:

* :mod:`repro.core` — performance contracts, the BOLT contract generator,
  contract composition for NF chains, and the Distiller.
* :mod:`repro.sym` — a from-scratch symbolic-execution engine (expressions,
  solver, path exploration) used by BOLT to enumerate feasible paths through
  the stateless NF code.
* :mod:`repro.nfil` — the NF intermediate language in which the NFs of this
  repository are written (register machine with branches, loads/stores and
  calls), plus a concrete interpreter that doubles as the instruction tracer.
* :mod:`repro.hw` — the conservative hardware model used by BOLT and the
  "realistic" hardware model used by the simulated testbed.
* :mod:`repro.net` — packets, protocol headers, flows and PCAP files.
* :mod:`repro.structures` — the library of stateful NF data structures, each
  with an instrumented concrete implementation, a symbolic model and a
  hand-derived performance contract.
* :mod:`repro.dpdk`, :mod:`repro.driver` — the packet-processing framework
  and NIC-driver substrate included in "full stack" contracts.
* :mod:`repro.nf` — the network functions evaluated in the paper (MAC bridge,
  NAT, Maglev-like load balancer, LPM router, firewall, static router).
* :mod:`repro.traffic` — workload generators, the MoonGen-like replayer and
  the simulated testbed used to obtain "measured" numbers.
* :mod:`repro.analysis` — CDF/CCDF helpers and table/figure rendering.
"""

from repro.core.contract import ContractEntry, PerformanceContract
from repro.core.perfexpr import PerfExpr
from repro.core.pcv import PCV, PCVRegistry
from repro.core.bolt import Bolt, BoltConfig
from repro.core.distiller import Distiller
from repro.core.input_class import InputClass

__all__ = [
    "Bolt",
    "BoltConfig",
    "ContractEntry",
    "Distiller",
    "InputClass",
    "PCV",
    "PCVRegistry",
    "PerfExpr",
    "PerformanceContract",
]

__version__ = "1.0.0"
