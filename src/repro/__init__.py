"""repro — a reproduction of "Performance Contracts for Software Network Functions".

The package re-implements, in pure Python, the BOLT system presented at
NSDI 2019 together with the substrates it depends on:

* :mod:`repro.core` — performance contracts, the BOLT contract generator
  (Algorithm 2), contract composition for NF chains, the Distiller, and
  contract rendering.
* :mod:`repro.sym` — a from-scratch symbolic-execution engine (expressions,
  solver, symbolic state, path exploration) used by BOLT to enumerate
  feasible paths through the stateless NF code.
* :mod:`repro.nfil` — the NF intermediate language in which the NFs of this
  repository are written (register machine with branches, loads/stores and
  calls), plus a concrete interpreter that doubles as the instruction tracer
  (the role Intel Pin plays in the paper).
* :mod:`repro.structures` — the Vigor-style stateful data-structure
  library (chaining hash map, time-wheel expiring map, LPM trie); each
  structure ships an instrumented concrete implementation, a symbolic
  model, and a hand-derived per-operation contract cross-validated by Bolt.
* :mod:`repro.nf` — the network functions under analysis: the MAC learning
  bridge and a static LPM IPv4 router, both assembled from the structure
  library, plus their replay harnesses and evaluation workloads.
* :mod:`repro.hw` — hardware cycle models mapping contract
  instruction/memory counts to cycle predictions: a conservative
  worst-case model and a realistic model with per-structure cache-hit
  assumptions.
* :mod:`repro.traffic` — packet helpers, uniform/Zipf/adversarial workload
  generation, and the measured-vs-predicted replayer behind
  ``python -m repro.cli bench``.

Follow-on layers tracked in ROADMAP.md (more NFs, distiller deepening,
scale/perf work) will register here as they land.
"""

from repro.core.contract import ContractEntry, Metric, PerformanceContract
from repro.core.perfexpr import PerfExpr
from repro.core.pcv import PCV, PCVRegistry
from repro.core.bolt import Bolt, BoltConfig
from repro.core.distiller import Distiller
from repro.core.input_class import InputClass

__all__ = [
    "Bolt",
    "BoltConfig",
    "ContractEntry",
    "Distiller",
    "InputClass",
    "Metric",
    "PCV",
    "PCVRegistry",
    "PerfExpr",
    "PerformanceContract",
]

__version__ = "1.9.0"
