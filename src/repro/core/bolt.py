"""The BOLT contract generator (§3, Algorithm 2 of the paper).

BOLT derives a performance contract for an NF in three steps:

1. **Explore** — symbolically execute the stateless NF code with the
   stateful data structures replaced by their symbolic models
   (:class:`repro.sym.engine.SymbolicEngine`).  Each resulting
   :class:`~repro.sym.paths.Path` carries its exact stateless
   instruction/memory counts and one :class:`~repro.sym.paths.CallRecord`
   per stateful call.
2. **Cost** — for every path and metric, sum the (constant) stateless cost
   with the PCV-parameterised contract terms of each stateful call,
   yielding one :class:`~repro.core.perfexpr.PerfExpr` per path.
3. **Merge** — group paths into input classes (via the configured
   classifier) and merge each group with
   :func:`~repro.core.contract.upper_envelope`, producing one contract
   entry per class.  The merged entry keeps its paths, so concrete
   executions can be classified and cross-checked later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.contract import (
    ContractEntry,
    Metric,
    PerformanceContract,
    upper_envelope,
)
from repro.core.input_class import InputClass
from repro.core.pcv import PCVRegistry
from repro.core.perfexpr import PerfExpr
from repro.nfil.program import Module
from repro.sym.engine import SymbolicEngine, SymbolicModel
from repro.sym.expr import BV
from repro.sym.paths import Path
from repro.sym.solver import Solver, SolverStats
from repro.sym.state import SymbolicMemory

__all__ = ["Bolt", "BoltConfig"]

#: Maps a path to its input class: a name or a full InputClass.
Classifier = Callable[[Path], Union[str, InputClass]]


def _default_classifier(path: Path) -> str:
    """Fallback grouping: every path lands in one catch-all class."""
    return "all"


@dataclass
class BoltConfig:
    """Tuning knobs for contract generation.

    Attributes:
        metrics: which metrics the generated contract covers.
        classifier: maps each explored path to its input class; None (the
            default) groups every path into a single catch-all class.
        max_paths: path budget for symbolic exploration.
        max_steps: per-path step budget for symbolic exploration.
        solver: solver instance (shared between feasibility checks and
            model generation); a default one is created when omitted.
        solve_models: ask the solver for a concrete witness per path, so
            paths can be replayed through the concrete interpreter.
        keep_infeasible_unknown: keep paths whose feasibility the solver
            could not establish (conservative, the paper's choice).  When
            False, only solver-verified ("sat") paths enter the contract.
    """

    metrics: Tuple[Metric, ...] = (Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES)
    classifier: Optional[Classifier] = None
    max_paths: int = 256
    max_steps: int = 10_000
    solver: Optional[Solver] = None
    solve_models: bool = True
    keep_infeasible_unknown: bool = True


class Bolt:
    """Generates a performance contract for one NFIL entry function."""

    def __init__(
        self,
        module: Module,
        function: str,
        *,
        model: Optional[SymbolicModel] = None,
        registry: Optional[PCVRegistry] = None,
        config: Optional[BoltConfig] = None,
    ) -> None:
        self.module = module
        self.function = function
        self.model = model or SymbolicModel()
        self.registry = registry or PCVRegistry()
        self.config = config or BoltConfig()
        self.paths: List[Path] = []
        self._solver: Optional[Solver] = None

    @property
    def solver(self) -> Solver:
        """The solver used by exploration, created lazily and retained.

        Retention matters: the solver memoises canonical constraint forms
        and UNSAT path-condition prefixes (see :class:`repro.sym.solver.
        Solver`), so repeated explorations of the same module reuse each
        other's verdicts instead of re-solving from scratch.
        """
        if self.config.solver is not None:
            return self.config.solver
        if self._solver is None:
            self._solver = Solver()
        return self._solver

    @property
    def solver_stats(self) -> SolverStats:
        """Counters of the retained solver (cache hits, prunes, ...)."""
        return self.solver.stats

    # ------------------------------------------------------------------ #
    # Algorithm 2
    # ------------------------------------------------------------------ #
    def explore(
        self,
        args: Sequence[Union[BV, int]],
        *,
        memory: Optional[SymbolicMemory] = None,
        constraints: Sequence[BV] = (),
    ) -> List[Path]:
        """Run symbolic exploration; returns (and caches) the paths."""
        engine = SymbolicEngine(
            self.module,
            model=self.model,
            solver=self.solver,
            max_paths=self.config.max_paths,
            max_steps=self.config.max_steps,
        )
        paths = engine.explore(
            self.function,
            args,
            memory=memory,
            constraints=constraints,
            solve_models=self.config.solve_models,
        )
        if not self.config.keep_infeasible_unknown:
            paths = [path for path in paths if path.feasibility == "sat"]
        self.paths = paths
        return paths

    def path_cost(self, path: Path, metric: Metric) -> PerfExpr:
        """Stateless constant cost + the contract terms of each call."""
        if metric is Metric.INSTRUCTIONS:
            total = PerfExpr.constant(path.instructions)
        elif metric is Metric.MEMORY_ACCESSES:
            total = PerfExpr.constant(path.memory_accesses)
        else:  # pragma: no cover - defensive for future metrics
            total = PerfExpr.zero()
        for call in path.calls:
            term = call.cost.get(metric)
            if term is not None:
                total = total + PerfExpr.coerce(term)
        return total

    def generate(
        self,
        args: Sequence[Union[BV, int]],
        *,
        memory: Optional[SymbolicMemory] = None,
        constraints: Sequence[BV] = (),
    ) -> PerformanceContract:
        """Produce the performance contract for the configured function.

        Args:
            args: symbolic initial values, one per function parameter.
            memory: initial symbolic memory (symbolic packet buffer etc.).
            constraints: initial assumptions on the inputs.
        """
        paths = self.explore(args, memory=memory, constraints=constraints)
        classifier = self.config.classifier or _default_classifier
        groups: Dict[str, List[Path]] = {}
        classes: Dict[str, InputClass] = {}
        for path in paths:
            assigned = classifier(path)
            if isinstance(assigned, InputClass):
                name = assigned.name
                classes.setdefault(name, assigned)
            else:
                name = assigned
                classes.setdefault(name, InputClass(name))
            groups.setdefault(name, []).append(path)

        contract = PerformanceContract(self.function, registry=self.registry)
        for name in sorted(groups):
            group = groups[name]
            exprs = {
                metric: upper_envelope(self.path_cost(path, metric) for path in group)
                for metric in self.config.metrics
            }
            contract.add_entry(
                ContractEntry(
                    input_class=classes[name],
                    exprs=exprs,
                    paths=tuple(group),
                )
            )
        return contract
