"""Contract composition for NF chains and service graphs (§3.4, §6).

When NFs are chained (e.g. firewall → NAT → bridge), the chain's contract
is derived from the per-NF contracts.  Three compositions are provided:

* :func:`compose_contracts` — the precise cross product for a *linear*
  chain every packet fully traverses: one entry per combination of per-NF
  input classes, expressions summed metric-wise.  Class predicates are not
  combined (model-output symbols of different NFs live in different
  namespaces), so composed entries classify by name only.
* :func:`compose_graph_contracts` — the graph-aware generalisation: hops
  are nodes of a directed service graph and a *routing function* says
  which node each (node, input class) pair forwards to — or that the
  packet terminates there (drops terminate early; branches diverge).  One
  composed entry is emitted per reachable **route** (the sequence of
  (node, class) hops a packet can traverse), named by
  :func:`route_class_name`, with the per-hop expressions summed.  A linear
  chain whose every class forwards reproduces :func:`compose_contracts`
  modulo entry naming.
* :func:`naive_add_contracts` — the coarse bound: a single entry summing
  each NF's worst-case envelope.  Cheaper, and what operators use when the
  per-class traffic mix is unknown.

Instance-qualified PCVs (PR 4) are what make graph composition sound: the
merged registry keeps ``conn.t`` and ``fwd.t`` apart, so a route's summed
expression evaluates correctly at the union of the hops' observed PCVs.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.contract import (
    ContractEntry,
    Metric,
    PerformanceContract,
    upper_envelope,
)
from repro.core.input_class import InputClass
from repro.core.pcv import PCVRegistry
from repro.core.perfexpr import PerfExpr

__all__ = [
    "HOP_SEPARATOR",
    "compose_contracts",
    "compose_graph_contracts",
    "naive_add_contracts",
    "route_class_name",
]

#: Separator between hops in a composed route-entry name.
HOP_SEPARATOR = " > "


def route_class_name(hops: Sequence[Tuple[str, str]]) -> str:
    """Name the composed entry of one route: ``"lb:new_flow > nat:..."``.

    The name is reconstructible from a concrete graph replay (the node
    names and per-hop classes it observed), which is how the end-to-end
    check finds the composed entry a packet's journey falls into.
    """
    return HOP_SEPARATOR.join(f"{node}:{class_name}" for node, class_name in hops)


def _merged_registry(contracts: Sequence[PerformanceContract]) -> PCVRegistry:
    registry = PCVRegistry()
    for contract in contracts:
        registry = registry.merge(contract.registry)
    return registry


def compose_contracts(
    name: str, contracts: Sequence[PerformanceContract]
) -> PerformanceContract:
    """Cross-product composition of a chain of contracts.

    Every combination of one entry per NF becomes one entry of the chain
    contract named ``"classA & classB & ..."``, with the per-metric
    expressions summed.

    Raises:
        ValueError: no contracts, or a contract without entries, were given.
    """
    if not contracts:
        raise ValueError("compose_contracts needs at least one contract")
    for contract in contracts:
        if not contract.entries:
            raise ValueError(f"contract for {contract.nf_name!r} has no entries to compose")
    composed = PerformanceContract(name, registry=_merged_registry(contracts))
    for combo in itertools.product(*(contract.entries for contract in contracts)):
        class_name = " & ".join(entry.input_class.name for entry in combo)
        description = "; ".join(
            f"{contract.nf_name}={entry.input_class.name}"
            for contract, entry in zip(contracts, combo)
        )
        exprs: Dict[Metric, PerfExpr] = {}
        for entry in combo:
            for metric, expr in entry.exprs.items():
                exprs[metric] = exprs.get(metric, PerfExpr.zero()) + expr
        composed.add_entry(
            ContractEntry(
                input_class=InputClass(class_name, description=description),
                exprs=exprs,
            )
        )
    return composed


def compose_graph_contracts(
    name: str,
    contracts: Mapping[str, PerformanceContract],
    entry_node: str,
    next_hop: Callable[[str, str], Optional[str]],
) -> PerformanceContract:
    """Compose per-node contracts over a directed service graph.

    Args:
        name: name of the composed contract.
        contracts: per-node contracts, keyed by node name.
        entry_node: the node every packet enters the graph at.
        next_hop: routing function ``(node, class_name) -> next node`` (or
            ``None`` when a packet classified there terminates: delivered
            at a sink, or dropped mid-graph).  This is the per-link
            forwarding-predicate information of the graph, flattened.

    Returns:
        One :class:`PerformanceContract` with an entry per reachable
        route, named by :func:`route_class_name` and summing the per-hop
        expressions metric-wise.  The registry merges every *reachable*
        node's registry.

    Raises:
        ValueError: unknown entry node, a ``next_hop`` target missing from
            ``contracts``, a node without entries, or a cyclic route (a
            route revisiting a node would make the composed cost
            unbounded; model recirculation by explicit per-pass nodes
            instead).
    """
    if entry_node not in contracts:
        raise ValueError(f"entry node {entry_node!r} has no contract")
    composed = PerformanceContract(name, registry=PCVRegistry())
    reached: Dict[str, PerformanceContract] = {}

    def walk(
        node: str,
        hops: Tuple[Tuple[str, str], ...],
        exprs: Dict[Metric, PerfExpr],
    ) -> None:
        if any(node == seen for seen, _ in hops):
            cycle = [seen for seen, _ in hops] + [node]
            raise ValueError(f"cyclic route {' -> '.join(cycle)} cannot be composed")
        contract = contracts.get(node)
        if contract is None:
            raise ValueError(f"next_hop routed to unknown node {node!r}")
        if not contract.entries:
            raise ValueError(f"contract for node {node!r} has no entries to compose")
        reached[node] = contract
        for entry in contract.entries:
            class_name = entry.input_class.name
            summed = dict(exprs)
            for metric, expr in entry.exprs.items():
                summed[metric] = summed.get(metric, PerfExpr.zero()) + expr
            route = hops + ((node, class_name),)
            downstream = next_hop(node, class_name)
            if downstream is None:
                composed.add_entry(
                    ContractEntry(
                        input_class=InputClass(
                            route_class_name(route),
                            description="; ".join(f"{n}={c}" for n, c in route),
                        ),
                        exprs=summed,
                    )
                )
            else:
                walk(downstream, route, summed)

    walk(entry_node, (), {})
    composed.registry = _merged_registry(list(reached.values()))
    return composed


def naive_add_contracts(
    name: str, contracts: Sequence[PerformanceContract]
) -> PerformanceContract:
    """Single worst-case entry: sum of each contract's upper envelope."""
    if not contracts:
        raise ValueError("naive_add_contracts needs at least one contract")
    exprs: Dict[Metric, PerfExpr] = {}
    for contract in contracts:
        for metric in Metric:
            per_entry = [entry.exprs[metric] for entry in contract.entries if metric in entry.exprs]
            if not per_entry:
                continue
            envelope = upper_envelope(per_entry)
            exprs[metric] = exprs.get(metric, PerfExpr.zero()) + envelope
    summed = PerformanceContract(name, registry=_merged_registry(contracts))
    summed.add_entry(
        ContractEntry(
            input_class=InputClass(
                "worst_case",
                description="sum of per-NF worst-case envelopes",
            ),
            exprs=exprs,
        )
    )
    return summed
