"""Contract composition for NF chains (§3.4 of the paper).

When NFs are chained (e.g. firewall → NAT → bridge), the chain's contract
is derived from the per-NF contracts.  Two compositions are provided:

* :func:`compose_contracts` — the precise cross product: one entry per
  combination of per-NF input classes, expressions summed metric-wise.
  Class predicates are not combined (model-output symbols of different NFs
  live in different namespaces), so composed entries classify by name only.
* :func:`naive_add_contracts` — the coarse bound: a single entry summing
  each NF's worst-case envelope.  Cheaper, and what operators use when the
  per-class traffic mix is unknown.
"""

from __future__ import annotations

import itertools
from typing import Dict, Sequence

from repro.core.contract import (
    ContractEntry,
    Metric,
    PerformanceContract,
    upper_envelope,
)
from repro.core.input_class import InputClass
from repro.core.pcv import PCVRegistry
from repro.core.perfexpr import PerfExpr

__all__ = ["compose_contracts", "naive_add_contracts"]


def _merged_registry(contracts: Sequence[PerformanceContract]) -> PCVRegistry:
    registry = PCVRegistry()
    for contract in contracts:
        registry = registry.merge(contract.registry)
    return registry


def compose_contracts(
    name: str, contracts: Sequence[PerformanceContract]
) -> PerformanceContract:
    """Cross-product composition of a chain of contracts.

    Every combination of one entry per NF becomes one entry of the chain
    contract named ``"classA & classB & ..."``, with the per-metric
    expressions summed.

    Raises:
        ValueError: no contracts, or a contract without entries, were given.
    """
    if not contracts:
        raise ValueError("compose_contracts needs at least one contract")
    for contract in contracts:
        if not contract.entries:
            raise ValueError(f"contract for {contract.nf_name!r} has no entries to compose")
    composed = PerformanceContract(name, registry=_merged_registry(contracts))
    for combo in itertools.product(*(contract.entries for contract in contracts)):
        class_name = " & ".join(entry.input_class.name for entry in combo)
        description = "; ".join(
            f"{contract.nf_name}={entry.input_class.name}"
            for contract, entry in zip(contracts, combo)
        )
        exprs: Dict[Metric, PerfExpr] = {}
        for entry in combo:
            for metric, expr in entry.exprs.items():
                exprs[metric] = exprs.get(metric, PerfExpr.zero()) + expr
        composed.add_entry(
            ContractEntry(
                input_class=InputClass(class_name, description=description),
                exprs=exprs,
            )
        )
    return composed


def naive_add_contracts(
    name: str, contracts: Sequence[PerformanceContract]
) -> PerformanceContract:
    """Single worst-case entry: sum of each contract's upper envelope."""
    if not contracts:
        raise ValueError("naive_add_contracts needs at least one contract")
    exprs: Dict[Metric, PerfExpr] = {}
    for contract in contracts:
        for metric in Metric:
            per_entry = [entry.exprs[metric] for entry in contract.entries if metric in entry.exprs]
            if not per_entry:
                continue
            envelope = upper_envelope(per_entry)
            exprs[metric] = exprs.get(metric, PerfExpr.zero()) + envelope
    summed = PerformanceContract(name, registry=_merged_registry(contracts))
    summed.add_entry(
        ContractEntry(
            input_class=InputClass(
                "worst_case",
                description="sum of per-NF worst-case envelopes",
            ),
            exprs=exprs,
        )
    )
    return summed
