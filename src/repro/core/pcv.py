"""Performance-critical variables (PCVs).

A PCV summarises the influence on performance of anything other than the
packet currently being processed: the state built up by the input history,
the configuration of the NF, or coarse properties of the input itself (such
as the matched prefix length, §2.2 of the paper).

PCVs are the variables in which performance contracts are expressed.  The
paper's bridge contract (Table 4), for instance, is written over the PCVs
``e`` (expired MAC entries), ``c`` (hash collisions), ``t`` (bucket
traversals) and ``o`` (hash-table occupancy).

PCV names come in two forms:

* **local symbols** — a bare identifier such as ``t``, the form a structure
  *kind* documents its cost formulas in;
* **instance-qualified names** — ``{instance}.{symbol}`` such as ``fwd.t``
  vs ``rev.t``, the form every :class:`repro.structures.base.Structure`
  *instance* actually emits.  Qualification is what lets one NF use two
  instances of the same structure kind (a NAT's forward and reverse flow
  tables) without their PCVs aliasing in the contract.

:func:`qualify_name` / :func:`split_name` convert between the two forms.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

_SYMBOL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def qualify_name(instance: str, symbol: str) -> str:
    """Return the instance-qualified PCV name ``{instance}.{symbol}``.

    Raises:
        ValueError: either part is not a bare identifier (in particular,
            ``symbol`` must not already be qualified).
    """
    for part in (instance, symbol):
        if not _SYMBOL_RE.match(part):
            raise ValueError(
                f"PCV name part {part!r} must be an identifier "
                "(letters, digits and underscores, not starting with a digit)"
            )
    return f"{instance}.{symbol}"


def split_name(name: str) -> Tuple[Optional[str], str]:
    """Split a PCV name into ``(instance or None, local symbol)``."""
    instance, dot, symbol = name.rpartition(".")
    if not dot:
        return None, name
    return instance, symbol


@dataclass(frozen=True)
class PCV:
    """A single performance-critical variable.

    Attributes:
        name: symbol used inside performance expressions — a local symbol
            (``"e"``) or an instance-qualified name (``"fwd.e"``).
        description: human-readable meaning ("number of expired flows").
        structure: name of the data structure (or library routine) whose
            contract introduced the PCV, if any.
        min_value: smallest value the PCV can take (inclusive).
        max_value: largest value the PCV can take (inclusive), or ``None``
            when the bound depends on NF configuration (e.g. table capacity).
        unit: optional unit ("entries", "iterations", "bits").
    """

    name: str
    description: str = ""
    structure: Optional[str] = None
    min_value: int = 0
    max_value: Optional[int] = None
    unit: str = ""

    def __post_init__(self) -> None:
        instance, symbol = split_name(self.name)
        parts = (symbol,) if instance is None else (instance, symbol)
        if not all(_SYMBOL_RE.match(part) for part in parts):
            raise ValueError(
                f"invalid PCV name: {self.name!r} (expected an identifier or "
                "'instance.symbol', each part using letters, digits and underscores)"
            )
        if self.max_value is not None and self.max_value < self.min_value:
            raise ValueError(
                f"PCV {self.name}: max_value {self.max_value} < min_value {self.min_value}"
            )

    @property
    def instance(self) -> Optional[str]:
        """The owning instance of a qualified name (``None`` when local)."""
        return split_name(self.name)[0]

    @property
    def symbol(self) -> str:
        """The local symbol of the PCV (``"t"`` for both ``t`` and ``fwd.t``)."""
        return split_name(self.name)[1]

    def qualify(self, instance: str) -> "PCV":
        """Return a copy of this PCV namespaced under ``instance``.

        The copy's name becomes ``{instance}.{symbol}`` and its
        ``structure`` field records the owning instance.  Qualifying an
        already-qualified PCV re-homes it under the new instance.
        """
        return replace(
            self, name=qualify_name(instance, self.symbol), structure=instance
        )

    def bounded(self) -> bool:
        """Return True when the PCV has a known finite upper bound."""
        return self.max_value is not None

    def clamp(self, value: int) -> int:
        """Clamp ``value`` into the PCV's declared range."""
        value = max(value, self.min_value)
        if self.max_value is not None:
            value = min(value, self.max_value)
        return value

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class PCVRegistry:
    """A registry of PCVs used by a contract, a structure or an NF.

    The registry guarantees that two parties that talk about the PCV ``"c"``
    talk about the same variable (same description and bounds); registering
    an incompatible duplicate raises.
    """

    def __init__(self, pcvs: Iterable[PCV] = ()) -> None:
        self._pcvs: Dict[str, PCV] = {}
        for pcv in pcvs:
            self.register(pcv)

    def register(self, pcv: PCV) -> PCV:
        """Register ``pcv``; return the canonical instance.

        Registering a PCV whose name exists already is allowed only if the
        existing definition is identical (same description/bounds) or if the
        existing one has an empty description (in which case it is replaced).
        """
        existing = self._pcvs.get(pcv.name)
        if existing is None:
            self._pcvs[pcv.name] = pcv
            return pcv
        if existing == pcv:
            return existing
        if not existing.description and pcv.description:
            self._pcvs[pcv.name] = pcv
            return pcv
        if not pcv.description:
            return existing
        raise ValueError(f"conflicting definitions for PCV {pcv.name!r}: {existing} vs {pcv}")

    def get(self, name: str) -> PCV:
        """Return the PCV registered under ``name``."""
        return self._pcvs[name]

    def maybe_get(self, name: str) -> Optional[PCV]:
        """Return the PCV registered under ``name`` or ``None``."""
        return self._pcvs.get(name)

    def ensure(self, name: str, **kwargs: object) -> PCV:
        """Return the PCV named ``name``, creating a bare one if unknown."""
        if name in self._pcvs:
            return self._pcvs[name]
        return self.register(PCV(name=name, **kwargs))  # type: ignore[arg-type]

    def names(self) -> list[str]:
        """Return the registered names, sorted for deterministic output."""
        return sorted(self._pcvs)

    def merge(self, other: "PCVRegistry") -> "PCVRegistry":
        """Return a new registry containing the PCVs of both registries."""
        merged = PCVRegistry(self._pcvs.values())
        for pcv in other:
            merged.register(pcv)
        return merged

    def default_bounds(self) -> Dict[str, int]:
        """Return ``{name: max_value}`` for every bounded PCV."""
        return {
            name: pcv.max_value
            for name, pcv in self._pcvs.items()
            if pcv.max_value is not None
        }

    def __contains__(self, name: str) -> bool:
        return name in self._pcvs

    def __iter__(self) -> Iterator[PCV]:
        return iter(self._pcvs.values())

    def __len__(self) -> int:
        return len(self._pcvs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PCVRegistry({sorted(self._pcvs)})"


# PCVs that recur throughout the paper's contracts.  Individual structures
# register their own copies (possibly with structure-specific bounds); these
# constants document the conventional meaning of each symbol.
PCV_EXPIRED = PCV("e", "number of expired entries processed for this packet")
PCV_COLLISIONS = PCV("c", "number of hash collisions encountered in the hash table")
PCV_TRAVERSALS = PCV("t", "number of bucket traversals incurred in the hash table")
PCV_OCCUPANCY = PCV("o", "occupancy of the hash table (number of stored entries)")
PCV_PREFIX_LEN = PCV("l", "length of the matched IP prefix", min_value=0, max_value=32, unit="bits")
PCV_IP_OPTIONS = PCV("n", "number of IP options carried by the packet", min_value=0, max_value=10)
PCV_RING_TRAVERSALS = PCV("r", "number of hash-ring bucket traversals", min_value=0)


def standard_registry() -> PCVRegistry:
    """Return a registry pre-populated with the paper's conventional PCVs."""
    return PCVRegistry(
        [
            PCV_EXPIRED,
            PCV_COLLISIONS,
            PCV_TRAVERSALS,
            PCV_OCCUPANCY,
            PCV_PREFIX_LEN,
            PCV_IP_OPTIONS,
            PCV_RING_TRAVERSALS,
        ]
    )


def validate_bindings(
    registry: PCVRegistry, bindings: Mapping[str, int], *, partial: bool = True
) -> Dict[str, int]:
    """Validate PCV value bindings against a registry.

    Args:
        registry: the registry the bindings refer to.
        bindings: mapping from PCV name to concrete value.
        partial: when False, every registered PCV must be bound.

    Returns:
        A plain ``dict`` copy of the validated bindings.

    Raises:
        KeyError: a binding refers to an unknown PCV, or (when ``partial`` is
            False) a registered PCV is missing.
        ValueError: a value lies outside the PCV's declared range.
    """
    result: Dict[str, int] = {}
    for name, value in bindings.items():
        pcv = registry.maybe_get(name)
        if pcv is None:
            raise KeyError(f"unknown PCV {name!r}")
        if value < pcv.min_value:
            raise ValueError(f"PCV {name}={value} below minimum {pcv.min_value}")
        if pcv.max_value is not None and value > pcv.max_value:
            raise ValueError(f"PCV {name}={value} above maximum {pcv.max_value}")
        result[name] = int(value)
    if not partial:
        missing = [name for name in registry.names() if name not in result]
        if missing:
            raise KeyError(f"missing bindings for PCVs: {missing}")
    return result
