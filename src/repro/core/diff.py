"""Contract serialization and contract-vs-contract diffing.

Contracts are generated artifacts; this module is what turns them into
*gates*.  Two halves:

* **Serialization** — :func:`contract_to_json` / :func:`contract_from_json`
  write a :class:`~repro.core.contract.PerformanceContract` to a stable
  JSON schema (:data:`SCHEMA`) and read it back **exactly**: every
  coefficient round-trips as a :class:`~fractions.Fraction` string
  (``"82"``, ``"9/2"``), never a float, so ``deserialize(serialize(c))``
  compares term-for-term equal to ``c``.  What is deliberately *not*
  serialized: entry path conditions and input-class predicates.  A golden
  snapshot exists to be *diffed by class name*, not to classify packets —
  deserialized contracts carry entries with bare
  :class:`~repro.core.input_class.InputClass` names and empty paths.

* **Diffing** — :func:`diff_contracts` aligns two contracts by input-class
  name and reports drift three ways: classes added or removed, per-class
  per-metric *term-level* drift (a monomial whose coefficient changed,
  missing coefficients counting as zero), and the derived-*cycle*
  consequence of the count drift under each supplied hardware model
  (evaluated at the PCV upper bounds, so "the NAT miss path got 3 memory
  accesses worse" is also reported as "+306 conservative cycles").
  Rendering resolves drifted PCVs into the human-level terms of
  :func:`repro.core.distiller.resolve_pcv` (occupancy, collision-driven
  traversals, fill iterations), the paper's §5.3 developer story applied
  to regressions.

The CLI's ``contract-diff`` subcommand (and the CI ``contract-gate`` job)
wrap this module: regenerate the current contracts, diff against the
checked-in goldens under ``tests/golden/``, exit non-zero on any drift.
An *intentional* bound change is acknowledged by regenerating the goldens
(``contract-diff --update``) and committing them with the change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.contract import TAIL_METRICS, ContractEntry, Metric, PerformanceContract
from repro.core.distiller import resolve_pcv
from repro.core.input_class import InputClass
from repro.core.pcv import PCV, PCVRegistry
from repro.core.perfexpr import Monomial, Number, PerfExpr

__all__ = [
    "SCHEMA",
    "ClassDrift",
    "ContractDiff",
    "TermDrift",
    "contract_from_json",
    "contract_to_json",
    "diff_contracts",
    "dump_contract",
    "load_contract",
]

#: Schema identifier stamped into every serialized contract.  v2 added the
#: tail-latency metric columns (``cycles_p50``/``cycles_p95``/``cycles_p99``);
#: v1 payloads still load (they simply carry no tail columns), so existing
#: goldens keep working until regenerated with ``contract-diff --update``.
SCHEMA = "repro-contract/2"

#: Schemas :func:`contract_from_json` accepts.
_ACCEPTED_SCHEMAS = ("repro-contract/1", SCHEMA)


# --------------------------------------------------------------------------- #
# Serialization
# --------------------------------------------------------------------------- #
def _expr_to_json(expr: PerfExpr) -> List[List[object]]:
    """Serialize one expression as ``[[monomial names...], "coeff"], ...``.

    Terms are sorted (degree, then names) for byte-stable output; the
    coefficient is ``str(Fraction)`` so rationals survive exactly.
    """
    return [
        [list(monomial), str(coeff)]
        for monomial, coeff in sorted(
            expr.terms.items(), key=lambda item: (len(item[0]), item[0])
        )
    ]


def _expr_from_json(payload: Sequence[Sequence[object]]) -> PerfExpr:
    terms: Dict[Monomial, Fraction] = {}
    for monomial, coeff in payload:
        terms[tuple(monomial)] = Fraction(str(coeff))  # type: ignore[arg-type]
    return PerfExpr(terms)


def contract_to_json(contract: PerformanceContract) -> Dict[str, object]:
    """Serialize a contract (entries, per-metric expressions, PCV registry).

    Entry order is preserved; PCVs are sorted by name.  Path conditions
    and class predicates are dropped (see the module docstring).
    """
    pcvs = [
        {
            "name": pcv.name,
            "description": pcv.description,
            "structure": pcv.structure,
            "min_value": pcv.min_value,
            "max_value": pcv.max_value,
            "unit": pcv.unit,
        }
        for pcv in sorted(contract.registry, key=lambda pcv: pcv.name)
    ]
    entries = [
        {
            "class": entry.input_class.name,
            "description": entry.input_class.description,
            "exprs": {
                str(metric): _expr_to_json(expr)
                for metric, expr in sorted(entry.exprs.items(), key=lambda item: item[0].value)
            },
        }
        for entry in contract.entries
    ]
    return {
        "schema": SCHEMA,
        "nf_name": contract.nf_name,
        "pcvs": pcvs,
        "entries": entries,
    }


def contract_from_json(payload: Mapping[str, object]) -> PerformanceContract:
    """Reconstruct a contract from :func:`contract_to_json` output.

    Raises:
        ValueError: the payload does not carry the expected schema tag.
    """
    if payload.get("schema") not in _ACCEPTED_SCHEMAS:
        raise ValueError(
            f"unsupported contract schema {payload.get('schema')!r} "
            f"(expected one of {list(_ACCEPTED_SCHEMAS)})"
        )
    pcvs = []
    for item in payload["pcvs"]:  # type: ignore[union-attr]
        raw_max = item["max_value"]
        pcvs.append(
            PCV(
                name=str(item["name"]),
                description=str(item["description"]),
                structure=item["structure"],  # type: ignore[arg-type]
                min_value=int(item["min_value"]),  # type: ignore[arg-type]
                max_value=None if raw_max is None else int(raw_max),  # type: ignore[arg-type]
                unit=str(item["unit"]),
            )
        )
    registry = PCVRegistry(pcvs)
    contract = PerformanceContract(str(payload["nf_name"]), registry=registry)
    for item in payload["entries"]:  # type: ignore[union-attr]
        exprs = {
            Metric(metric_name): _expr_from_json(terms)
            for metric_name, terms in item["exprs"].items()
        }
        contract.add_entry(
            ContractEntry(
                input_class=InputClass(str(item["class"]), str(item["description"])),
                exprs=exprs,
            )
        )
    return contract


def dump_contract(contract: PerformanceContract, path: str) -> None:
    """Write a contract to ``path`` as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(contract_to_json(contract), handle, indent=2)
        handle.write("\n")


def load_contract(path: str) -> PerformanceContract:
    """Read a contract previously written by :func:`dump_contract`."""
    with open(path, "r", encoding="utf-8") as handle:
        return contract_from_json(json.load(handle))


# --------------------------------------------------------------------------- #
# Diffing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TermDrift:
    """One monomial whose coefficient differs between golden and current."""

    metric: Metric
    monomial: Tuple[str, ...]
    golden: Fraction
    current: Fraction

    @property
    def worsened(self) -> bool:
        """True when the current bound grew (a silent regression)."""
        return self.current > self.golden

    def render(self, registry: Optional[PCVRegistry] = None) -> str:
        names = " × ".join(self.monomial) if self.monomial else "constant term"
        direction = "WORSENED" if self.worsened else "improved"
        line = (
            f"{self.metric}: {names} {self.golden} -> {self.current} ({direction})"
        )
        human = [resolve_pcv(name, registry) for name in self.monomial]
        if any(text != name for text, name in zip(human, self.monomial)):
            line += f"  [{'; '.join(human)}]"
        return line


@dataclass(frozen=True)
class ClassDrift:
    """All the drift of one input class shared by both contracts."""

    class_name: str
    terms: Tuple[TermDrift, ...]
    #: Per hardware model: derived-cycle bound delta (current − golden) at
    #: the PCV upper bounds — the hardware-level consequence of ``terms``.
    cycle_deltas: Mapping[str, Fraction] = field(default_factory=dict)

    @property
    def worsened(self) -> bool:
        return any(term.worsened for term in self.terms)

    def render(self, registry: Optional[PCVRegistry] = None) -> List[str]:
        lines = [f"class {self.class_name!r}:"]
        lines.extend(f"  {term.render(registry)}" for term in self.terms)
        for model, delta in sorted(self.cycle_deltas.items()):
            sign = "+" if delta > 0 else ""
            lines.append(f"  cycles@{model}: {sign}{delta} at PCV bounds")
        return lines


@dataclass(frozen=True)
class ContractDiff:
    """The full alignment of two contracts by input-class name."""

    golden_name: str
    current_name: str
    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    drifted: Tuple[ClassDrift, ...]
    registry: Optional[PCVRegistry] = None

    @property
    def ok(self) -> bool:
        """True when the contracts are term-for-term identical by class."""
        return not (self.added or self.removed or self.drifted)

    @property
    def worsened_classes(self) -> List[str]:
        """Classes whose bound grew (plus any added/removed class)."""
        worse = [drift.class_name for drift in self.drifted if drift.worsened]
        return sorted(set(worse) | set(self.added) | set(self.removed))

    def render(self) -> str:
        if self.ok:
            return f"{self.current_name}: no drift against {self.golden_name}"
        lines = [f"{self.current_name} drifted against golden {self.golden_name}:"]
        if self.added:
            lines.append(f"classes added (absent from golden): {sorted(self.added)}")
        if self.removed:
            lines.append(f"classes removed (golden still has them): {sorted(self.removed)}")
        for drift in self.drifted:
            lines.extend(drift.render(self.registry))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _effective_bounds(
    golden: PerformanceContract,
    current: PerformanceContract,
    bounds: Optional[Mapping[str, Number]],
) -> Dict[str, Number]:
    """PCV maxima for cycle-delta evaluation: 1 for unbounded, registry
    bounds where declared, caller overrides last (Distiller convention)."""
    effective: Dict[str, Number] = {
        name: 1 for name in golden.variables() | current.variables()
    }
    effective.update(golden.registry.default_bounds())
    effective.update(current.registry.default_bounds())
    if bounds:
        effective.update(bounds)
    return effective


def diff_contracts(
    golden: PerformanceContract,
    current: PerformanceContract,
    *,
    models: Sequence[object] = (),
    structures: Sequence[object] = (),
    bounds: Optional[Mapping[str, Number]] = None,
) -> ContractDiff:
    """Align ``current`` against ``golden`` by class name and report drift.

    Args:
        golden: the checked-in snapshot (usually :func:`load_contract`).
        current: the freshly generated contract.
        models: :class:`repro.hw.CycleModel` instances (typed loosely to
            keep ``repro.core`` import-free of :mod:`repro.hw`); for each,
            drifted classes also report the derived-cycle bound delta.
        structures: the structure instances behind the contract's PCVs —
            what the models need to price memory monomials per owner.
        bounds: PCV maxima overriding the registries' declared bounds.

    Any coefficient difference is drift — improvements too: a golden
    snapshot is an acknowledgement artifact, and a *better* bound still
    needs acknowledging (regenerate the goldens) or CI would pass on a
    tree whose goldens no longer describe it.
    """
    golden_classes = set(golden.class_names())
    current_classes = set(current.class_names())
    added = tuple(sorted(current_classes - golden_classes))
    removed = tuple(sorted(golden_classes - current_classes))

    compare_metrics = [Metric.INSTRUCTIONS, Metric.MEMORY_ACCESSES, Metric.CYCLES]
    # Tail columns join the comparison only once the golden carries them:
    # a v1 golden diffed against a tail-bearing current contract must not
    # report every tail column as drift — regenerating the goldens
    # (`contract-diff --update`) is the acknowledgement that migrates a
    # snapshot to schema v2 and arms the tail comparison.
    if any(m in entry.exprs for entry in golden.entries for m in TAIL_METRICS):
        compare_metrics.extend(TAIL_METRICS)
    effective = _effective_bounds(golden, current, bounds)
    drifted: List[ClassDrift] = []
    for class_name in current.class_names():
        if class_name not in golden_classes:
            continue
        golden_entry = golden.entry_for(class_name)
        current_entry = current.entry_for(class_name)
        terms: List[TermDrift] = []
        for metric in compare_metrics:
            golden_terms = golden_entry.expr(metric).terms
            current_terms = current_entry.expr(metric).terms
            for monomial in sorted(
                set(golden_terms) | set(current_terms), key=lambda m: (len(m), m)
            ):
                before = golden_terms.get(monomial, Fraction(0))
                after = current_terms.get(monomial, Fraction(0))
                if before != after:
                    terms.append(TermDrift(metric, monomial, before, after))
        if not terms:
            continue
        cycle_deltas: Dict[str, Fraction] = {}
        for model in models:
            derive = model.cycles_expr  # type: ignore[attr-defined]
            golden_cycles = derive(golden_entry, structures=structures)
            current_cycles = derive(current_entry, structures=structures)
            delta = current_cycles.upper_bound(effective) - golden_cycles.upper_bound(effective)
            cycle_deltas[model.name] = delta  # type: ignore[attr-defined]
        drifted.append(ClassDrift(class_name, tuple(terms), cycle_deltas))

    return ContractDiff(
        golden_name=golden.nf_name,
        current_name=current.nf_name,
        added=added,
        removed=removed,
        drifted=tuple(drifted),
        registry=current.registry,
    )
