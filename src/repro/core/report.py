"""Human-readable rendering of contracts and measured-vs-predicted tables.

Produces tables in the style of the paper's contract tables (§2.2, Table 4)
— one row per input class, one column per metric, expressions written over
PCVs — plus the aligned-table primitive (:func:`format_table`) the
evaluation harness (:mod:`repro.traffic.replayer`, ``repro.cli bench``)
uses for its measured-vs-predicted summaries (§5-style evaluation output).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.contract import Metric, PerformanceContract

__all__ = ["format_contract", "format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned text table with a dashed header rule."""
    rows = [[str(cell) for cell in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {len(headers)}")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    out = [line(list(headers)), line(["-" * width for width in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_contract(
    contract: PerformanceContract, *, multiplication_sign: str = "·"
) -> str:
    """Render a contract as an aligned text table."""
    metrics = [m for m in Metric if any(m in e.exprs for e in contract.entries)]
    if not metrics:
        metrics = list(Metric)
    headers = ["input class"] + [str(metric) for metric in metrics]
    rows: List[List[str]] = []
    for entry in contract.entries:
        row = [entry.input_class.name]
        for metric in metrics:
            row.append(entry.expr(metric).render(multiplication_sign=multiplication_sign))
        rows.append(row)

    out = [f"performance contract for {contract.nf_name}"]
    if contract.registry.names():
        descriptions = []
        for name in contract.registry.names():
            pcv = contract.registry.get(name)
            if pcv.description:
                descriptions.append(f"  {name}: {pcv.description}")
        if descriptions:
            out.append("PCVs:")
            out.extend(descriptions)
    out.append(format_table(headers, rows))
    return "\n".join(out)
