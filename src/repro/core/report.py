"""Human-readable rendering of performance contracts.

Produces tables in the style of the paper's Table 4: one row per input
class, one column per metric, expressions written over PCVs.
"""

from __future__ import annotations

from typing import List

from repro.core.contract import Metric, PerformanceContract

__all__ = ["format_contract"]


def format_contract(
    contract: PerformanceContract, *, multiplication_sign: str = "·"
) -> str:
    """Render a contract as an aligned text table."""
    metrics = [m for m in Metric if any(m in e.exprs for e in contract.entries)]
    if not metrics:
        metrics = list(Metric)
    headers = ["input class"] + [str(metric) for metric in metrics]
    rows: List[List[str]] = []
    for entry in contract.entries:
        row = [entry.input_class.name]
        for metric in metrics:
            row.append(entry.expr(metric).render(multiplication_sign=multiplication_sign))
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    out = [f"performance contract for {contract.nf_name}"]
    if contract.registry.names():
        descriptions = []
        for name in contract.registry.names():
            pcv = contract.registry.get(name)
            if pcv.description:
                descriptions.append(f"  {name}: {pcv.description}")
        if descriptions:
            out.append("PCVs:")
            out.extend(descriptions)
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in rows)
    return "\n".join(out)
