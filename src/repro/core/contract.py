"""The performance-contract construct (§2.2 of the paper).

A :class:`PerformanceContract` maps input classes to per-metric
:class:`~repro.core.perfexpr.PerfExpr` expressions over PCVs.  Each
:class:`ContractEntry` optionally keeps the symbolic paths it was merged
from, which is what lets a concrete execution be classified (find the entry
whose path condition the execution satisfies) and cross-checked against the
contract's prediction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.input_class import InputClass
from repro.core.pcv import PCVRegistry
from repro.core.perfexpr import Number, PerfExpr
from repro.sym.paths import Path

__all__ = [
    "ContractEntry",
    "Metric",
    "PerformanceContract",
    "TAIL_METRICS",
    "upper_envelope",
]


class Metric(enum.Enum):
    """Performance metrics a contract bounds.

    The paper's BOLT emits contracts for the two metrics binary
    instrumentation can count exactly: dynamic instructions and memory
    accesses (loads + stores).  ``CYCLES`` is never emitted by BOLT
    directly: a :mod:`repro.hw` cycle model derives it from the other two
    (via :meth:`~repro.hw.CycleModel.derive`), mirroring how the paper maps
    counted costs to hardware-level predictions for its x86 testbed (§5).

    ``CYCLES_P50`` / ``CYCLES_P95`` / ``CYCLES_P99`` are the tail-latency
    columns: constant (per-class) cycle envelopes at the named percentile
    of the simulated per-packet distribution over a calibration workload
    (see ``docs/CONTRACTS.md``, "Tail-latency contracts").  They bound the
    *distribution* an operator signs an SLO against, where ``CYCLES``
    bounds only the single worst case.
    """

    INSTRUCTIONS = "instructions"
    MEMORY_ACCESSES = "memory_accesses"
    CYCLES = "cycles"
    CYCLES_P50 = "cycles_p50"
    CYCLES_P95 = "cycles_p95"
    CYCLES_P99 = "cycles_p99"

    def __str__(self) -> str:
        return self.value


#: The tail-latency metric columns, in ascending percentile order.
TAIL_METRICS = (Metric.CYCLES_P50, Metric.CYCLES_P95, Metric.CYCLES_P99)


def upper_envelope(exprs: Iterable[PerfExpr]) -> PerfExpr:
    """Merge expressions by taking the monomial-wise maximum coefficient.

    For non-negative PCV values and non-negative coefficients (the only
    kind BOLT produces) the result upper-bounds every input expression,
    which is how per-path costs are merged into one per-class entry.
    """
    merged: Dict[Tuple[str, ...], Fraction] = {}
    for expr in exprs:
        for monomial, coeff in expr.terms.items():
            if coeff < 0:
                raise ValueError(
                    f"upper_envelope requires non-negative coefficients; "
                    f"term {monomial} has {coeff}"
                )
            current = merged.get(monomial)
            if current is None or coeff > current:
                merged[monomial] = coeff
    return PerfExpr(merged)


@dataclass(frozen=True)
class ContractEntry:
    """One row of a performance contract.

    Attributes:
        input_class: the class of inputs this entry covers.
        exprs: per-metric performance expression over PCVs.
        paths: the symbolic paths merged into this entry (possibly empty,
            e.g. for hand-written or composed contracts).
    """

    input_class: InputClass
    exprs: Mapping[Metric, PerfExpr] = field(default_factory=dict)
    paths: Tuple[Path, ...] = ()

    def expr(self, metric: Metric) -> PerfExpr:
        """Return the expression for ``metric`` (zero if absent)."""
        return self.exprs.get(metric, PerfExpr.zero())

    def evaluate(self, metric: Metric, bindings: Mapping[str, Number]) -> int:
        """Evaluate the entry at concrete PCV bindings (ceil to int)."""
        return self.expr(metric).evaluate_int(bindings)

    def upper_bound(self, metric: Metric, bounds: Mapping[str, Number]) -> Fraction:
        """Evaluate the entry at PCV upper bounds."""
        return self.expr(metric).upper_bound(bounds)

    def covers(self, env: Mapping[str, int]) -> bool:
        """Return True when the concrete assignment falls in this entry.

        Per-path conditions take precedence (they are exact); entries
        without paths fall back to the input-class predicate.
        """
        if self.paths:
            return any(path.covers(env) for path in self.paths)
        return self.input_class.matches(env)

    def matching_path(self, env: Mapping[str, int]) -> Optional[Path]:
        """Return the merged path the concrete assignment follows, if any."""
        for path in self.paths:
            if path.covers(env):
                return path
        return None

    def variables(self) -> set[str]:
        """Return every PCV name used by any metric expression."""
        names: set[str] = set()
        for expr in self.exprs.values():
            names.update(expr.variables())
        return names


class PerformanceContract:
    """A performance contract: input classes mapped to PCV expressions."""

    def __init__(
        self,
        nf_name: str,
        *,
        registry: Optional[PCVRegistry] = None,
        entries: Iterable[ContractEntry] = (),
    ) -> None:
        self.nf_name = nf_name
        self.registry = registry or PCVRegistry()
        self.entries: List[ContractEntry] = list(entries)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_entry(self, entry: ContractEntry) -> ContractEntry:
        """Append an entry; entry names must be unique."""
        if any(e.input_class.name == entry.input_class.name for e in self.entries):
            raise ValueError(f"duplicate contract entry for class {entry.input_class.name!r}")
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------ #
    # Lookup and classification
    # ------------------------------------------------------------------ #
    def entry_for(self, class_name: str) -> ContractEntry:
        """Return the entry for the named input class."""
        for entry in self.entries:
            if entry.input_class.name == class_name:
                return entry
        raise KeyError(f"no contract entry for class {class_name!r}")

    def class_names(self) -> List[str]:
        """Return the input class names in entry order."""
        return [entry.input_class.name for entry in self.entries]

    def classify(self, env: Mapping[str, int]) -> Optional[ContractEntry]:
        """Return the entry covering a concrete input assignment, if any."""
        for entry in self.entries:
            if entry.covers(env):
                return entry
        return None

    # ------------------------------------------------------------------ #
    # Bounding
    # ------------------------------------------------------------------ #
    def upper_bound(
        self, metric: Metric, bounds: Optional[Mapping[str, Number]] = None
    ) -> Fraction:
        """Worst case over all entries at PCV upper bounds.

        Args:
            metric: which metric to bound.
            bounds: per-PCV maxima; defaults to the bounds declared in the
                contract's PCV registry.

        Raises:
            KeyError: a PCV used by the contract has no bound.
        """
        if bounds is None:
            bounds = self.registry.default_bounds()
        worst = Fraction(0)
        for entry in self.entries:
            worst = max(worst, entry.upper_bound(metric, bounds))
        return worst

    def variables(self) -> set[str]:
        """Return every PCV name used anywhere in the contract."""
        names: set[str] = set()
        for entry in self.entries:
            names.update(entry.variables())
        return names

    # ------------------------------------------------------------------ #
    # Rendering and container protocol
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Render the contract as a human-readable table."""
        from repro.core.report import format_contract

        return format_contract(self)

    def __iter__(self) -> Iterator[ContractEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PerformanceContract {self.nf_name!r} "
            f"classes={self.class_names()!r}>"
        )
