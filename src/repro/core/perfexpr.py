"""Symbolic performance expressions over performance-critical variables.

The body of every contract entry (§2.2 of the paper): a :class:`PerfExpr`
is a multivariate polynomial with integer (or rational) coefficients over
PCV names, e.g. the bridge contract entry of Table 4::

    245·e + 144·c + 36·t + 82·e·c + 19·e·t + 882

Performance contracts map input classes to such expressions; BOLT builds
them by summing the (constant) cost of the stateless instruction trace with
the per-call contract terms of the stateful data structures.

The representation is a mapping from *monomials* (sorted tuples of PCV
names, with repetition for powers) to coefficients.  The empty monomial
``()`` is the constant term.
"""

from __future__ import annotations

import math
import re
from fractions import Fraction
from typing import Callable, Dict, Iterable, Mapping, Tuple, Union

Number = Union[int, float, Fraction]
Monomial = Tuple[str, ...]

# A PCV name: a bare identifier ("t") or an instance-qualified one
# ("fwd.t") — the form per-instance namespaced structures emit.
_TERM_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)?$")


def _as_fraction(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**9)
    raise TypeError(f"unsupported coefficient type: {type(value).__name__}")


def _normalise_monomial(monomial: Iterable[str]) -> Monomial:
    names = tuple(sorted(monomial))
    for name in names:
        if not _TERM_RE.match(name):
            raise ValueError(f"invalid PCV name in monomial: {name!r}")
    return names


class PerfExpr:
    """An immutable multivariate polynomial over PCV names.

    Construction is most convenient through the factory helpers
    :meth:`constant`, :meth:`var` and :meth:`from_terms`, and through the
    arithmetic operators (``+``, ``-``, ``*``)::

        expr = 245 * PerfExpr.var("e") + 144 * PerfExpr.var("c") + 882
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, Number] | None = None) -> None:
        normalised: Dict[Monomial, Fraction] = {}
        for monomial, coeff in (terms or {}).items():
            mono = _normalise_monomial(monomial)
            frac = _as_fraction(coeff)
            if frac == 0:
                continue
            normalised[mono] = normalised.get(mono, Fraction(0)) + frac
        self._terms: Dict[Monomial, Fraction] = {
            mono: coeff for mono, coeff in normalised.items() if coeff != 0
        }

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def constant(cls, value: Number) -> "PerfExpr":
        """Return a constant expression."""
        return cls({(): value})

    @classmethod
    def zero(cls) -> "PerfExpr":
        """Return the zero expression."""
        return cls({})

    @classmethod
    def var(cls, name: str, coefficient: Number = 1) -> "PerfExpr":
        """Return ``coefficient * name``."""
        return cls({(name,): coefficient})

    @classmethod
    def from_terms(cls, **terms: Number) -> "PerfExpr":
        """Build an expression from keyword terms.

        The key ``const`` denotes the constant term; other keys are PCV
        monomials with ``*`` separating factors, e.g. ``PerfExpr.from_terms(
        e=245, c=144, **{"e*c": 82}, const=882)``.
        """
        mapping: Dict[Monomial, Number] = {}
        for key, coeff in terms.items():
            if key == "const":
                mapping[()] = coeff
            else:
                mapping[tuple(key.split("*"))] = coeff
        return cls(mapping)

    @classmethod
    def coerce(cls, value: "PerfExpr | Number") -> "PerfExpr":
        """Coerce a number into a constant :class:`PerfExpr`."""
        if isinstance(value, PerfExpr):
            return value
        return cls.constant(value)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def terms(self) -> Dict[Monomial, Fraction]:
        """Return a copy of the term mapping."""
        return dict(self._terms)

    def variables(self) -> set[str]:
        """Return the set of PCV names appearing in the expression."""
        names: set[str] = set()
        for monomial in self._terms:
            names.update(monomial)
        return names

    def constant_term(self) -> Fraction:
        """Return the coefficient of the empty monomial."""
        return self._terms.get((), Fraction(0))

    def coefficient(self, *monomial: str) -> Fraction:
        """Return the coefficient of the given monomial (0 if absent)."""
        return self._terms.get(_normalise_monomial(monomial), Fraction(0))

    def is_constant(self) -> bool:
        """Return True when the expression has no PCV terms."""
        return all(monomial == () for monomial in self._terms)

    def degree(self) -> int:
        """Return the total degree of the polynomial (0 for constants)."""
        if not self._terms:
            return 0
        return max(len(monomial) for monomial in self._terms)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "PerfExpr | Number") -> "PerfExpr":
        other = PerfExpr.coerce(other)
        terms: Dict[Monomial, Fraction] = dict(self._terms)
        for monomial, coeff in other._terms.items():
            terms[monomial] = terms.get(monomial, Fraction(0)) + coeff
        return PerfExpr(terms)

    __radd__ = __add__

    def __neg__(self) -> "PerfExpr":
        return PerfExpr({monomial: -coeff for monomial, coeff in self._terms.items()})

    def __sub__(self, other: "PerfExpr | Number") -> "PerfExpr":
        return self + (-PerfExpr.coerce(other))

    def __rsub__(self, other: "PerfExpr | Number") -> "PerfExpr":
        return PerfExpr.coerce(other) + (-self)

    def __mul__(self, other: "PerfExpr | Number") -> "PerfExpr":
        other = PerfExpr.coerce(other)
        terms: Dict[Monomial, Fraction] = {}
        for mono_a, coeff_a in self._terms.items():
            for mono_b, coeff_b in other._terms.items():
                mono = _normalise_monomial(mono_a + mono_b)
                terms[mono] = terms.get(mono, Fraction(0)) + coeff_a * coeff_b
        return PerfExpr(terms)

    __rmul__ = __mul__

    def scaled(self, factor: Number) -> "PerfExpr":
        """Return the expression with every coefficient multiplied by ``factor``."""
        frac = _as_fraction(factor)
        return PerfExpr({mono: coeff * frac for mono, coeff in self._terms.items()})

    # ------------------------------------------------------------------ #
    # Evaluation and bounding
    # ------------------------------------------------------------------ #
    def evaluate(self, bindings: Mapping[str, Number] | None = None) -> Fraction:
        """Evaluate the expression under concrete PCV bindings.

        Raises:
            KeyError: a PCV used by the expression has no binding.
        """
        bindings = bindings or {}
        total = Fraction(0)
        for monomial, coeff in self._terms.items():
            product = coeff
            for name in monomial:
                if name not in bindings:
                    raise KeyError(f"no binding for PCV {name!r}")
                product *= _as_fraction(bindings[name])
            total += product
        return total

    def evaluate_int(self, bindings: Mapping[str, Number] | None = None) -> int:
        """Evaluate and round up to an integer (costs are counts)."""
        value = self.evaluate(bindings)
        return int(-(-value.numerator // value.denominator))  # ceil

    def denominator_lcm(self) -> int:
        """Return the LCM of all coefficient denominators (1 when empty).

        Any multiple of this value is a valid ``scale`` for
        :meth:`compile_scaled`: it clears every fraction, so the compiled
        evaluator works in exact integers.
        """
        value = 1
        for coeff in self._terms.values():
            value = math.lcm(value, coeff.denominator)
        return value

    def compile_scaled(self, scale: int) -> Callable[[Mapping[str, Number]], int]:
        """Compile into ``f(bindings) -> int`` returning ``evaluate() * scale``.

        The replay hot loop calls contract polynomials per packet;
        :meth:`evaluate` pays Fraction arithmetic and a dict-driven tree
        walk every time.  The compiled closure is a single generated
        Python expression over integer coefficients — exact, provided
        ``scale`` is a multiple of :meth:`denominator_lcm` (a
        ``ValueError`` guards this).  Divide by ``scale`` (or keep the
        scaled units) at report time only.
        """
        parts: list[str] = []
        for monomial, coeff in sorted(self._terms.items()):
            scaled = coeff * scale
            if scaled.denominator != 1:
                raise ValueError(
                    f"scale {scale} does not clear coefficient {coeff} "
                    f"(need a multiple of {self.denominator_lcm()})"
                )
            factors = [str(scaled.numerator)] + [f"b[{name!r}]" for name in monomial]
            parts.append(" * ".join(factors))
        source = "lambda b: " + (" + ".join(parts) if parts else "0")
        return eval(source, {})  # noqa: S307 - generated from our own terms

    def rename(self, mapping: Mapping[str, str]) -> "PerfExpr":
        """Return the expression with PCV names replaced per ``mapping``.

        Names absent from ``mapping`` are kept.  This is how a
        :class:`~repro.structures.base.Structure` instance turns its
        kind-level cost formulas (over local symbols like ``t``) into the
        instance-qualified form (``fwd.t``) its contract emits.

        Raises:
            ValueError: the renaming is not injective over the
                expression's variables — two previously-independent PCVs
                would silently merge (into one variable, or a power
                inside a product monomial).
        """
        targets: Dict[str, str] = {}
        for name in self.variables():
            target = mapping.get(name, name)
            if target in targets and targets[target] != name:
                raise ValueError(
                    f"renaming {dict(mapping)!r} collapses distinct PCVs "
                    f"{targets[target]!r} and {name!r} into {target!r}"
                )
            targets[target] = name
        terms: Dict[Monomial, Fraction] = {}
        for monomial, coeff in self._terms.items():
            mono = tuple(sorted(mapping.get(name, name) for name in monomial))
            terms[mono] = terms.get(mono, Fraction(0)) + coeff
        return PerfExpr(terms)

    def substitute(self, bindings: Mapping[str, Number]) -> "PerfExpr":
        """Partially substitute PCVs with concrete values.

        PCVs that do not appear in ``bindings`` remain symbolic.
        """
        terms: Dict[Monomial, Fraction] = {}
        for monomial, coeff in self._terms.items():
            remaining: list[str] = []
            factor = coeff
            for name in monomial:
                if name in bindings:
                    factor *= _as_fraction(bindings[name])
                else:
                    remaining.append(name)
            mono = tuple(sorted(remaining))
            terms[mono] = terms.get(mono, Fraction(0)) + factor
        return PerfExpr(terms)

    def upper_bound(self, bounds: Mapping[str, Number]) -> Fraction:
        """Evaluate the expression at the PCV upper bounds.

        All coefficients used in this code base are non-negative, so
        evaluating at the per-PCV maxima yields a sound upper bound; a
        ``ValueError`` is raised if a negative coefficient is present (in
        which case a sound bound would require per-PCV minima as well).
        """
        for monomial, coeff in self._terms.items():
            if monomial and coeff < 0:
                raise ValueError(
                    "upper_bound requires non-negative PCV coefficients; "
                    f"term {monomial} has coefficient {coeff}"
                )
        return self.evaluate(bounds)

    def dominant_pcv(self) -> str | None:
        """Return the PCV with the largest total coefficient mass, if any.

        Used by the developer use-case of §5.3: the contract for VigNAT has
        ``e`` dominant by an order of magnitude, which points at the expiry
        batching bug.
        """
        mass: Dict[str, Fraction] = {}
        for monomial, coeff in self._terms.items():
            for name in set(monomial):
                mass[name] = mass.get(name, Fraction(0)) + abs(coeff)
        if not mass:
            return None
        return max(sorted(mass), key=lambda name: mass[name])

    # ------------------------------------------------------------------ #
    # Comparison / rendering
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float, Fraction)):
            other = PerfExpr.constant(other)
        if not isinstance(other, PerfExpr):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __bool__(self) -> bool:
        return bool(self._terms)

    @staticmethod
    def _format_coeff(coeff: Fraction) -> str:
        if coeff.denominator == 1:
            return str(coeff.numerator)
        return f"{float(coeff):.2f}"

    def render(self, *, multiplication_sign: str = "·") -> str:
        """Render the expression in the paper's human-readable style."""
        if not self._terms:
            return "0"

        def sort_key(item: tuple[Monomial, Fraction]) -> tuple[int, Monomial]:
            monomial, _ = item
            # Variables first (by degree then name), constant last.
            return (0 if monomial else 1, (-len(monomial) if False else len(monomial),) + monomial)

        parts: list[str] = []
        # Render single-variable terms first, then cross terms, constant last,
        # mirroring the layout of the paper's tables.
        singles = sorted(
            (item for item in self._terms.items() if len(item[0]) == 1),
            key=lambda item: item[0],
        )
        crosses = sorted(
            (item for item in self._terms.items() if len(item[0]) > 1),
            key=lambda item: (len(item[0]), item[0]),
        )
        for monomial, coeff in singles + crosses:
            var_part = multiplication_sign.join(monomial)
            if coeff == 1:
                parts.append(var_part)
            else:
                parts.append(f"{self._format_coeff(coeff)}{multiplication_sign}{var_part}")
        const = self.constant_term()
        if const != 0 or not parts:
            parts.append(self._format_coeff(const))
        return " + ".join(parts)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"PerfExpr({self.render()!r})"
