"""Core of the reproduction: performance contracts and the BOLT tool-chain.

The sub-modules mirror the structure of the paper:

* :mod:`repro.core.pcv` — performance-critical variables (PCVs), §2.3.
* :mod:`repro.core.perfexpr` — symbolic performance expressions over PCVs.
* :mod:`repro.core.contract` — the performance-contract construct, §2.2.
* :mod:`repro.core.input_class` — input (packet) class specifications.
* :mod:`repro.core.bolt` — the BOLT contract generator, §3 (Algorithm 2).
* :mod:`repro.core.composition` — contracts for chains of NFs, §3.4.
* :mod:`repro.core.distiller` — the BOLT Distiller, §4.
* :mod:`repro.core.diff` — contract serialization and golden diffing.
* :mod:`repro.core.report` — human-readable rendering of contracts.
"""

from repro.core.pcv import PCV, PCVRegistry, qualify_name, split_name
from repro.core.perfexpr import PerfExpr
from repro.core.contract import (
    ContractEntry,
    Metric,
    PerformanceContract,
    TAIL_METRICS,
    upper_envelope,
)
from repro.core.input_class import InputClass
from repro.core.bolt import Bolt, BoltConfig
from repro.core.composition import (
    compose_contracts,
    compose_graph_contracts,
    naive_add_contracts,
    route_class_name,
)
from repro.core.distiller import Distiller, DistillerReport, explain_term, resolve_pcv
from repro.core.diff import (
    ContractDiff,
    contract_from_json,
    contract_to_json,
    diff_contracts,
    dump_contract,
    load_contract,
)
from repro.core.report import format_contract, format_table

__all__ = [
    "Bolt",
    "BoltConfig",
    "ContractDiff",
    "ContractEntry",
    "Distiller",
    "DistillerReport",
    "InputClass",
    "Metric",
    "PCV",
    "PCVRegistry",
    "PerfExpr",
    "PerformanceContract",
    "TAIL_METRICS",
    "compose_contracts",
    "compose_graph_contracts",
    "contract_from_json",
    "contract_to_json",
    "diff_contracts",
    "dump_contract",
    "explain_term",
    "format_contract",
    "format_table",
    "load_contract",
    "naive_add_contracts",
    "resolve_pcv",
    "qualify_name",
    "split_name",
    "upper_envelope",
]
