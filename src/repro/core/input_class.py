"""Input (packet) class specifications.

A performance contract maps *input classes* to performance expressions
(§2.2): "packet with known destination MAC", "packet that triggers
learning", and so on.  An input class is a name plus an optional symbolic
predicate over the input symbols (packet bytes, parameters, extern model
outputs), which lets a concrete input be classified by evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.sym.expr import BV, evaluate, render

__all__ = ["InputClass"]


@dataclass(frozen=True)
class InputClass:
    """One class of inputs a contract entry covers.

    Attributes:
        name: short identifier ("hit", "miss", "short", ...).
        description: human-readable meaning, rendered in contract reports.
        predicate: optional width-1 symbolic expression over input symbols;
            when present, :meth:`matches` classifies concrete inputs by
            evaluating it.  When absent, classification falls back to the
            per-path conditions the contract entry carries.
    """

    name: str
    description: str = ""
    predicate: Optional[BV] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("input class name must not be empty")
        if self.predicate is not None and self.predicate.width != 1:
            raise ValueError(f"input class {self.name!r}: predicate must have width 1")

    def matches(self, env: Mapping[str, int]) -> bool:
        """Return True when the concrete assignment belongs to this class.

        Classes without a predicate match everything (the caller is expected
        to use per-path conditions for precise classification).
        """
        if self.predicate is None:
            return True
        return evaluate(self.predicate, env) == 1

    def __str__(self) -> str:
        if self.predicate is not None:
            return f"{self.name}: {render(self.predicate)}"
        if self.description:
            return f"{self.name}: {self.description}"
        return self.name
