"""The BOLT Distiller (§4 of the paper).

Raw contracts are exact but noisy: dozens of terms, many contributing a
negligible share of the total.  The Distiller turns a contract into the
human-readable form the paper's tables use by

* dropping terms whose worst-case contribution falls below a relative
  threshold of the entry's worst-case total,
* naming the dominant PCV of each entry — the paper's §5.3 developer
  use-case, where a dominant ``e`` term in VigNAT's contract pointed
  straight at the expiry-batching bug, and
* resolving PCVs into **human-level terms** (:func:`resolve_pcv` /
  :meth:`Distiller.explain`): ``fwd.t`` is rendered not as an opaque
  symbol but as "hash-chain links traversed (collision-driven)", the
  way the paper's tables talk about occupancy, collision probability
  and fill iterations rather than raw variable names.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.contract import Metric, PerformanceContract
from repro.core.pcv import PCVRegistry, split_name
from repro.core.perfexpr import Number, PerfExpr

__all__ = [
    "HUMAN_TERMS",
    "DistilledEntry",
    "Distiller",
    "DistillerReport",
    "explain_term",
    "resolve_pcv",
]

#: Human-level reading of the paper's conventional PCV symbols, used when
#: a registry carries no (or an empty) description for a PCV.  Keyed by
#: *local* symbol: ``fwd.t`` and ``rev.t`` both resolve through ``t``.
HUMAN_TERMS: Dict[str, str] = {
    "t": "hash-chain links traversed (collision-driven)",
    "c": "hash collisions encountered",
    "o": "hash-table occupancy (stored entries)",
    "e": "entries expired by one sweep",
    "w": "time-wheel slots advanced by one sweep",
    "d": "trie nodes visited (matched-prefix depth)",
    "f": "Maglev fill iterations of one table repopulation",
    "l": "matched IP prefix length",
    "n": "IP options carried by the packet",
    "r": "hash-ring bucket traversals",
}


def resolve_pcv(name: str, registry: Optional[PCVRegistry] = None) -> str:
    """Resolve one PCV name into its human-level meaning.

    Resolution order: the registry's description for the exact name, then
    the conventional :data:`HUMAN_TERMS` meaning of its local symbol, then
    the name itself.  Instance-qualified names keep their instance as a
    prefix so ``fwd.t`` and ``rev.t`` stay distinguishable in prose.
    """
    instance, symbol = split_name(name)
    description = ""
    if registry is not None:
        pcv = registry.maybe_get(name)
        if pcv is not None:
            description = pcv.description
    if not description:
        description = HUMAN_TERMS.get(symbol, "")
    if not description:
        return name
    if instance is None:
        return description
    return f"{instance}: {description}"


def explain_term(
    monomial: Tuple[str, ...],
    coeff: Fraction,
    registry: Optional[PCVRegistry] = None,
) -> str:
    """Render one contract term in human-level language.

    ``((), 882)`` becomes ``"882 (constant)"``; ``(("fwd.t",), 12)``
    becomes ``"12 × fwd.t — fwd: chain links inspected …"``.
    """
    coeff_text = str(coeff.numerator) if coeff.denominator == 1 else f"{float(coeff):.2f}"
    if not monomial:
        return f"{coeff_text} (constant)"
    names = " × ".join(monomial)
    meanings = "; ".join(resolve_pcv(name, registry) for name in dict.fromkeys(monomial))
    return f"{coeff_text} × {names} — {meanings}"


@dataclass(frozen=True)
class DistilledEntry:
    """The distilled form of one contract entry."""

    class_name: str
    original: PerfExpr
    simplified: PerfExpr
    dropped_share: Fraction
    dominant_pcv: Optional[str]

    def render(self) -> str:
        parts = [f"{self.class_name}: {self.simplified.render()}"]
        if self.dropped_share > 0:
            parts.append(f"(+ <{float(self.dropped_share) * 100:.1f}% dropped)")
        if self.dominant_pcv is not None:
            parts.append(f"[dominant: {self.dominant_pcv}]")
        return " ".join(parts)


@dataclass(frozen=True)
class DistillerReport:
    """Distilled view of one contract for one metric."""

    nf_name: str
    metric: Metric
    entries: Tuple[DistilledEntry, ...]

    def entry_for(self, class_name: str) -> DistilledEntry:
        for entry in self.entries:
            if entry.class_name == class_name:
                return entry
        raise KeyError(f"no distilled entry for class {class_name!r}")

    def render(self) -> str:
        lines = [f"distilled contract for {self.nf_name} ({self.metric})"]
        lines.extend(f"  {entry.render()}" for entry in self.entries)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class Distiller:
    """Distils a performance contract into its human-readable form."""

    def __init__(self, contract: PerformanceContract) -> None:
        self.contract = contract

    def distill(
        self,
        metric: Metric = Metric.INSTRUCTIONS,
        *,
        relative_threshold: float = 0.05,
        bounds: Optional[Mapping[str, Number]] = None,
    ) -> DistillerReport:
        """Produce the distilled report for one metric.

        Args:
            metric: which metric column to distil.
            relative_threshold: a term is kept iff its worst-case
                contribution is at least this share of the entry's
                worst-case total.
            bounds: per-PCV maxima used to judge worst-case contributions;
                defaults to the registry bounds, with 1 for unbounded PCVs
                (so unbounded terms are judged by their coefficient).
        """
        if not 0 <= relative_threshold < 1:
            raise ValueError("relative_threshold must be in [0, 1)")
        effective = self._effective_bounds(bounds)
        entries: List[DistilledEntry] = []
        for entry in self.contract.entries:
            expr = entry.expr(metric)
            simplified, dropped_share = self._simplify(expr, relative_threshold, effective)
            entries.append(
                DistilledEntry(
                    class_name=entry.input_class.name,
                    original=expr,
                    simplified=simplified,
                    dropped_share=dropped_share,
                    dominant_pcv=expr.dominant_pcv(),
                )
            )
        return DistillerReport(nf_name=self.contract.nf_name, metric=metric, entries=tuple(entries))

    def distill_cycles(
        self,
        model,
        *,
        structures=(),
        relative_threshold: float = 0.05,
        bounds: Optional[Mapping[str, Number]] = None,
    ) -> DistillerReport:
        """Distil the cycle expressions a hardware model derives (§5).

        ``model`` is a :class:`repro.hw.CycleModel` (typed loosely to keep
        ``repro.core`` import-free of the higher :mod:`repro.hw` layer):
        the contract is first run through ``model.derive`` and the
        resulting ``cycles`` column distilled like any counted metric.
        """
        derived = model.derive(self.contract, structures=structures)  # type: ignore[attr-defined]
        return Distiller(derived).distill(
            Metric.CYCLES, relative_threshold=relative_threshold, bounds=bounds
        )

    def explain(
        self,
        metric: Metric = Metric.INSTRUCTIONS,
        *,
        relative_threshold: float = 0.05,
        bounds: Optional[Mapping[str, Number]] = None,
    ) -> str:
        """Distil, then resolve every surviving term into human-level prose.

        The deepened §4 story: instead of the symbol soup of the raw
        polynomial, each kept term is rendered through
        :func:`explain_term` with its worst-case share of the entry's
        total, so a developer reads "84% of the worst case is chain
        links traversed (collision-driven) in ``fwd``" straight off the
        report.
        """
        report = self.distill(metric, relative_threshold=relative_threshold, bounds=bounds)
        effective = self._effective_bounds(bounds)
        registry = self.contract.registry
        lines = [f"distilled terms for {self.contract.nf_name} ({metric}):"]
        for entry in report.entries:
            lines.append(f"  {entry.class_name}:")
            contributions = {
                monomial: PerfExpr({monomial: coeff}).upper_bound(effective)
                for monomial, coeff in entry.original.terms.items()
            }
            total = sum(contributions.values(), Fraction(0))
            for monomial, coeff in sorted(
                entry.simplified.terms.items(),
                key=lambda item: -contributions[item[0]],
            ):
                share = (
                    f" ({float(contributions[monomial] / total) * 100:.0f}% of worst case)"
                    if total > 0
                    else ""
                )
                lines.append(f"    {explain_term(monomial, coeff, registry)}{share}")
            if entry.dropped_share > 0:
                lines.append(f"    (+ <{float(entry.dropped_share) * 100:.1f}% dropped as noise)")
            if entry.dominant_pcv is not None:
                lines.append(
                    f"    dominant: {entry.dominant_pcv} — "
                    f"{resolve_pcv(entry.dominant_pcv, registry)}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _effective_bounds(
        self, bounds: Optional[Mapping[str, Number]]
    ) -> Dict[str, Number]:
        effective: Dict[str, Number] = {name: 1 for name in self.contract.variables()}
        effective.update(self.contract.registry.default_bounds())
        if bounds:
            effective.update(bounds)
        return effective

    @staticmethod
    def _simplify(
        expr: PerfExpr,
        relative_threshold: float,
        bounds: Mapping[str, Number],
    ) -> Tuple[PerfExpr, Fraction]:
        terms = expr.terms
        if not terms:
            return expr, Fraction(0)
        contributions: Dict[Tuple[str, ...], Fraction] = {}
        for monomial, coeff in terms.items():
            contributions[monomial] = PerfExpr({monomial: coeff}).upper_bound(bounds)
        total = sum(contributions.values(), Fraction(0))
        if total <= 0:
            return expr, Fraction(0)
        threshold = total * Fraction(relative_threshold).limit_denominator(10**6)
        kept = {
            monomial: coeff
            for monomial, coeff in terms.items()
            if contributions[monomial] >= threshold
        }
        if not kept:  # keep at least the largest term
            largest = max(contributions, key=lambda m: contributions[m])
            kept = {largest: terms[largest]}
        dropped = sum((contributions[m] for m in terms if m not in kept), Fraction(0))
        return PerfExpr(kept), dropped / total
