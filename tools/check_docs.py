#!/usr/bin/env python
"""Docs-consistency check: the documentation must track the registries.

Run by the CI ``docs-check`` job (and directly: ``python
tools/check_docs.py``).  Two guarantees:

1. **Coverage** — every NF in :data:`repro.cli.NF_MATRIX` and every
   structure class in :func:`repro.cli.smoke_structures` (i.e. everything
   the CLI smoke output lists) has a section in ``docs/CONTRACTS.md``,
   and every NF appears in ``docs/ARCHITECTURE.md``'s module map.
2. **Hardware** — every bench cycle model is discussed in
   ``docs/CONTRACTS.md``; the cache-simulator backend additionally keeps
   the tail-latency section (with every ``cycles_p*`` column) and the
   ``repro.hw.cachesim`` module-map row alive.
3. **Graphs** — every service graph in :data:`repro.cli.GRAPH_MATRIX`
   has a section in ``docs/SERVICE_GRAPHS.md`` naming each of its hop
   NFs, and the authoring guides cross-link each other so the layering
   story stays navigable.
4. **CLI** — every subcommand registered in :data:`repro.cli.SUBCOMMANDS`
   (``smoke``, ``bench``, ``graph``, ``contract-diff``, ``ct-audit``, …)
   has a README line naming it in backticks together with backticked
   exit codes, so the exit-code semantics CI scripts rely on stay
   documented.
5. **Quickstart** — the fenced ``python`` code blocks of the README run
   verbatim, in order, in one shared namespace (they build on each
   other), so the copy-pasteable quickstart cannot rot.

Exits non-zero with one line per failure.
"""

from __future__ import annotations

import io
import re
import sys
from contextlib import redirect_stdout
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cli import (  # noqa: E402
    GRAPH_MATRIX,
    NF_MATRIX,
    SUBCOMMANDS,
    _bench_models,
    smoke_structures,
)
from repro.core.contract import TAIL_METRICS  # noqa: E402


def python_blocks(markdown: str) -> list[str]:
    """Extract the contents of ```python fenced blocks, in order."""
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


def check_contract_docs(failures: list[str]) -> None:
    contracts = (REPO / "docs" / "CONTRACTS.md").read_text(encoding="utf-8")
    architecture = (REPO / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    for structure in smoke_structures():
        cls = type(structure).__name__
        if f"`{cls}`" not in contracts:
            failures.append(
                f"docs/CONTRACTS.md: no section for structure {cls} "
                "(smoke validates it; document its cost table)"
            )
    for spec in NF_MATRIX:
        # Every NF needs a contract discussion and a module-map presence.
        if not re.search(rf"\b{re.escape(spec.name)}\b", contracts, flags=re.IGNORECASE):
            failures.append(
                f"docs/CONTRACTS.md: no section for NF {spec.name!r} "
                "(the bench runs it; document its contract)"
            )
        # The module map lists NF modules as `repro.nf.bridge` / `router`
        # / `nat` / `lb`; normalise the backtick-slash styling away.
        flat = architecture.replace("`", "").replace(" / ", " ")
        if f"repro.nf.{spec.name}" not in flat and f" {spec.name} " not in flat:
            failures.append(
                f"docs/ARCHITECTURE.md: NF {spec.name!r} missing from the module map"
            )
        missing = [
            name for name in sorted(spec.expected_classes) if f"`{name}`" not in contracts
        ]
        if missing:
            failures.append(
                f"docs/CONTRACTS.md: NF {spec.name!r} input classes never "
                f"mentioned: {missing}"
            )


def check_hw_docs(failures: list[str]) -> None:
    """The hardware-model registry drives the docs like the NF one does.

    Every bench cycle model must be discussed in ``docs/CONTRACTS.md``;
    as long as an access-stream-driven model (the cache-simulator
    backend) is registered, the tail-latency section and every tail
    metric column must be documented there too, and the simulator module
    must appear in ``docs/ARCHITECTURE.md``'s module map.
    """
    contracts = (REPO / "docs" / "CONTRACTS.md").read_text(encoding="utf-8")
    architecture = (REPO / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    models = _bench_models()
    for model in models:
        if not re.search(rf"\b{re.escape(model.name)}\b", contracts, flags=re.IGNORECASE):
            failures.append(
                f"docs/CONTRACTS.md: hardware model {model.name!r} never discussed "
                "(the bench prices with it; document its assumptions)"
            )
    if any(model.requires_access_stream for model in models):
        if "Tail-latency contracts" not in contracts:
            failures.append(
                "docs/CONTRACTS.md: no 'Tail-latency contracts' section "
                "(the simulated backend emits tail columns; document them)"
            )
        missing = [str(metric) for metric in TAIL_METRICS if f"`{metric}`" not in contracts]
        if missing:
            failures.append(
                f"docs/CONTRACTS.md: tail metric columns never mentioned: {missing}"
            )
        if "repro.hw.cachesim" not in architecture.replace("`", ""):
            failures.append(
                "docs/ARCHITECTURE.md: repro.hw.cachesim missing from the module map "
                "(it backs the simulated model and the tail calibration)"
            )


def check_graph_docs(failures: list[str]) -> None:
    guide = (REPO / "docs" / "SERVICE_GRAPHS.md").read_text(encoding="utf-8")
    for spec in GRAPH_MATRIX:
        if f"`{spec.name}`" not in guide:
            failures.append(
                f"docs/SERVICE_GRAPHS.md: no section for graph {spec.name!r} "
                "(the bench runs it; document its topology)"
            )
            continue
        # The guide must name every hop NF the graph deploys — the
        # workload factory carries the authoritative topology.
        graph = spec.bench_workloads(0, 1)[0].graph
        missing = [name for name in graph.hop_names() if f"`{name}`" not in guide]
        if missing:
            failures.append(
                f"docs/SERVICE_GRAPHS.md: graph {spec.name!r} hop NFs never "
                f"mentioned: {missing}"
            )
    # The authoring guides must cross-link: graph authors arrive from the
    # NF and structure guides, and vice versa.
    for doc in ("NF_AUTHORING.md", "STRUCTURES.md"):
        text = (REPO / "docs" / doc).read_text(encoding="utf-8")
        if "SERVICE_GRAPHS.md" not in text:
            failures.append(f"docs/{doc}: missing cross-link to SERVICE_GRAPHS.md")
    for doc in ("NF_AUTHORING.md", "STRUCTURES.md"):
        if doc not in guide:
            failures.append(f"docs/SERVICE_GRAPHS.md: missing cross-link to {doc}")


def check_cli_docs(failures: list[str]) -> None:
    """Every CLI subcommand needs a README row with exit-code semantics.

    A row qualifies when one README line carries the backticked
    subcommand name *and* at least one backticked exit code digit
    (``0``/``1``/``2``) — the table format the "CLI subcommands" section
    uses.  Registering a subcommand in ``repro.cli.SUBCOMMANDS`` without
    documenting it fails this check.
    """
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    lines = readme.splitlines()
    for name, _semantics in SUBCOMMANDS:
        documented = any(
            f"`{name}`" in line and re.search(r"`[0-2]`", line) for line in lines
        )
        if not documented:
            failures.append(
                f"README.md: no line documents subcommand `{name}` with its "
                "backticked exit codes (see the CLI subcommands table)"
            )


def check_readme_quickstart(failures: list[str]) -> None:
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    blocks = python_blocks(readme)
    if not blocks:
        failures.append("README.md: no fenced python quickstart blocks found")
        return
    namespace: dict = {}
    for index, block in enumerate(blocks):
        sink = io.StringIO()
        try:
            with redirect_stdout(sink):
                exec(compile(block, f"README.md#python-block-{index}", "exec"), namespace)
        except Exception as error:  # noqa: BLE001 - report and keep checking
            failures.append(f"README.md python block {index} failed: {error!r}")
            return  # later blocks build on this namespace; stop here
    print(f"README quickstart: {len(blocks)} python blocks ran verbatim")


def main() -> int:
    failures: list[str] = []
    check_contract_docs(failures)
    check_hw_docs(failures)
    check_graph_docs(failures)
    check_cli_docs(failures)
    check_readme_quickstart(failures)
    structures = ", ".join(sorted({type(s).__name__ for s in smoke_structures()}))
    models = ", ".join(model.name for model in _bench_models())
    print(f"checked hardware models: {models}")
    nfs = ", ".join(spec.name for spec in NF_MATRIX)
    graphs = ", ".join(spec.name for spec in GRAPH_MATRIX)
    subcommands = ", ".join(name for name, _ in SUBCOMMANDS)
    print(f"checked structures: {structures}")
    print(f"checked NFs: {nfs}")
    print(f"checked graphs: {graphs}")
    print(f"checked subcommands: {subcommands}")
    for failure in failures:
        print(f"FAIL: {failure}")
    print("DOCS CHECK FAILED" if failures else "DOCS CHECK OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
