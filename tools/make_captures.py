#!/usr/bin/env python3
"""Regenerate the checked-in capture fixtures from their builders.

The fixtures under ``src/repro/net/captures/`` are binary, so they are
generated — never hand-edited — from the deterministic builders in
:mod:`repro.net.workloads` and committed.  ``tests/test_pcap.py``
regenerates them in memory and asserts byte-identity against the checked-
in files; when a builder changes deliberately, run this script and commit
the refreshed fixture alongside it.

Usage::

    PYTHONPATH=src python tools/make_captures.py
"""

from __future__ import annotations

import io
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.net.workloads import GRAPH_FIXTURE, graph_mix_capture  # noqa: E402
from repro.traffic.pcap import write_pcap  # noqa: E402

#: fixture filename -> builder returning its Capture.
FIXTURES = {
    GRAPH_FIXTURE: graph_mix_capture,
}


def fixture_bytes(name: str) -> bytes:
    """The exact bytes fixture ``name`` must contain (for tests too)."""
    buffer = io.BytesIO()
    write_pcap(buffer, FIXTURES[name]())
    return buffer.getvalue()


def main() -> int:
    captures_dir = os.path.join(
        os.path.dirname(__file__), "..", "src", "repro", "net", "captures"
    )
    for name in sorted(FIXTURES):
        path = os.path.normpath(os.path.join(captures_dir, name))
        blob = fixture_bytes(name)
        with open(path, "wb") as handle:
            handle.write(blob)
        print(f"wrote {path} ({len(blob)} bytes, {len(FIXTURES[name]())} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
